# Developer entry points. `make verify` is the local/CI gate: lint (reprolint
# + ruff) and typecheck plus the fast smoke suite (slow-marked tests
# excluded). `make test` is tier-1.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint reprolint graphlint lint-changed typecheck smoke test sanitize-smoke sparse-smoke store-smoke kernels-smoke serving-smoke scale-smoke train-parallel-smoke

verify: lint graphlint typecheck smoke sparse-smoke store-smoke kernels-smoke serving-smoke scale-smoke train-parallel-smoke

lint: reprolint
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	elif $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "warning: ruff not installed; skipping ruff lint"; \
	fi

reprolint:
	$(PYTHON) -m repro.cli lint src

# Interprocedural graph rules (RPL011-RPL014) over the whole tree; the
# content-hash summary cache makes repeat runs incremental. The baseline
# ratchet file is kept empty on purpose: new findings fail immediately.
graphlint:
	$(PYTHON) -m repro.cli lint --graph --select RPL011,RPL012,RPL013,RPL014 src

# Lexical + graph rules, reported only for files changed vs main (plus
# untracked files). Graph analysis still sees the whole tree — summaries for
# unchanged files come from the warm cache, so this stays fast.
lint-changed:
	$(PYTHON) -m repro.cli lint --graph --changed-since main src

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	elif $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "warning: mypy not installed; skipping typecheck"; \
	fi

smoke:
	$(PYTHON) -m pytest -q -m "not slow"

# Fast sparse-vs-dense gradient equivalence gate (skips the 50k-entity
# timing run; `make -C . test` and the benchmarks cover the speedup gate).
sparse-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_bench_sparse_grads.py -k "not speedup"

# Artifact-store correctness gate at small scale (the 5x warm-vs-cold
# speedup gate needs full-scale builds; benchmarks cover it).
store-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_bench_store.py -k "smoke"

# Fused-kernel gradcheck/parity gate (the 2x epoch speedup gate needs the
# full table-2 scale run; benchmarks/test_bench_kernels.py covers it).
kernels-smoke:
	$(PYTHON) -m pytest -q tests/test_kernels.py

# Serving correctness gate: index freeze/load, batched == single bit-identity,
# fold-in, HTTP round trips (the 500 rps / p99 throughput gate needs full
# scale; benchmarks/test_bench_serving.py covers it).
serving-smoke:
	$(PYTHON) -m pytest -q tests/test_serving.py tests/test_serving_server.py

# Out-of-core pipeline gate at 3e4 users in a subprocess: peak-RSS ceiling,
# warm-rerun bit-safety (the 1e6-user run with the 10^7-interaction floor
# lives in benchmarks/test_bench_scale.py at full scale).
scale-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_bench_scale.py -k "smoke"

# Data-parallel training gate on any core count: fork-vs-inline loss
# identity plus distributed-vs-serial gradient agreement, emitting
# BENCH_parallel.json (the 2x epoch speedup gate needs >= 4 cores;
# benchmarks/test_bench_parallel.py covers it).
train-parallel-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_bench_parallel.py -k "not speedup"

sanitize-smoke:
	REPRO_SANITIZE=1 $(PYTHON) -m repro.cli sanitize-run BPRMF ooi --epochs 2

test:
	$(PYTHON) -m pytest -x -q
