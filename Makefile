# Developer entry points. `make verify` is the local/CI gate: lint plus the
# fast smoke suite (slow-marked tests excluded). `make test` is tier-1.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint smoke test

verify: lint smoke

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	elif $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "warning: ruff not installed; skipping lint"; \
	fi

smoke:
	$(PYTHON) -m pytest -q -m "not slow"

test:
	$(PYTHON) -m pytest -x -q
