"""Cache-blocked NumPy implementations of the fused kernels.

Every function here operates on **raw ndarrays** — no autograd Tensors, no
tape.  The differentiable wrappers in :mod:`repro.kernels.dispatch` call
these for both directions of each fused op; the optional numba backend
(:mod:`repro.kernels.numba_backend`) mirrors the same signatures, so the
dispatch layer can swap implementations without touching callers.

Blocking strategy
-----------------
The per-op oracle chains materialize ``(E, d)`` / ``(E, k)`` temporaries at
every step of the attention and propagation pipelines (gathered endpoint
embeddings, projected embeddings, tanh outputs, weighted messages, …).  The
kernels below stream over edges in blocks sized so the working set — one
gathered block plus one projected block — stays in cache
(:func:`edge_block`), writing each result directly into its preallocated
destination.  Matmul FLOPs are unchanged; what disappears is the allocator
traffic and the extra full-array passes between the fine-grained ops.

Segment reductions reuse the ``np.add.reduceat`` discipline of
:func:`repro.autograd.functional.segment_sum`: reduce only the non-empty
segments intersecting the current block and accumulate with ``+=`` so a
segment spanning a block boundary sums its partial results in block order.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "edge_block",
    "edge_attention_forward",
    "edge_attention_backward",
    "transr_energy_forward",
    "transr_energy_backward",
    "weighted_neighbor_sum",
    "weighted_incoming_sum",
    "weighted_edge_grad",
    "weighted_backward_fused",
    "segment_sum_rows",
    "masked_topk",
    "PureCSR",
    "build_pure_csr",
]

#: Target bytes for one gathered edge block (values chosen so two float64
#: blocks — gather + projection — fit comfortably in a 256 KiB+ L2 cache).
_BLOCK_TARGET_BYTES = 1 << 20


def edge_block(dim: int, target_bytes: int = _BLOCK_TARGET_BYTES) -> int:
    """Edges per block so a ``(block, dim)`` float64 scratch is ~``target_bytes``."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    return max(512, target_bytes // (8 * dim))


def _block_segments(
    offsets: np.ndarray, e0: int, e1: int
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Segment geometry of the edge range ``[e0, e1)``.

    Returns ``(first_segment, local_starts, nonempty)`` where ``local_starts``
    are the block-relative start offsets of every segment intersecting the
    range (one per segment, clipped to the range) and ``nonempty`` masks the
    segments that actually own edges inside it.
    """
    first = int(np.searchsorted(offsets, e0, side="right")) - 1
    last = int(np.searchsorted(offsets, e1 - 1, side="right")) - 1
    local = np.clip(offsets[first : last + 2] - e0, 0, e1 - e0)
    lengths = np.diff(local)
    return first, local[:-1], lengths > 0


# ------------------------------------------------------------ edge attention
def edge_attention_forward(
    ent: np.ndarray,
    rel: np.ndarray,
    proj: np.ndarray,
    heads_r: np.ndarray,
    tails_r: np.ndarray,
    bounds: np.ndarray,
    block: Optional[int] = None,
    th_out: Optional[np.ndarray] = None,
    pt_out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unnormalized attention scores ``(W_r e_t)ᵀ tanh(W_r e_h + e_r)``.

    Inputs are in **relation-grouped order**: ``heads_r``/``tails_r`` are the
    edge endpoints permuted so equal relations are contiguous, ``bounds``
    delimits each relation's run.  Returns ``(scores, th, pt)`` where ``th``
    (the tanh activations) and ``pt`` (the projected tails) are saved for the
    backward pass — two ``(E, k)`` arrays instead of the oracle's eight-odd
    intermediates.  ``th_out``/``pt_out`` let the caller recycle those
    activations across steps (27 MB of fresh page faults per call otherwise).
    """
    num_edges = len(heads_r)
    num_entities = ent.shape[0]
    k = rel.shape[1]
    d = ent.shape[1]
    if block is None:
        block = edge_block(max(k, d))
    scores = np.empty(num_edges, dtype=np.float64)
    th = th_out if th_out is not None else np.empty((num_edges, k), dtype=np.float64)
    pt = pt_out if pt_out is not None else np.empty((num_edges, k), dtype=np.float64)
    gather = np.empty((min(block, num_edges) or 1, d), dtype=np.float64)
    table: Optional[np.ndarray] = None
    for r in range(len(bounds) - 1):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if hi == lo:
            continue
        w_t = proj[r].T  # (d, k), one view per relation
        r_vec = rel[r]
        if num_entities <= hi - lo:
            if table is None:
                table = np.empty((num_entities, k), dtype=np.float64)
            # Project-once: every entity's ``e W_r`` in one (N, d)·(d, k)
            # matmul, then gather projected rows per edge endpoint — N·k·d
            # FLOPs instead of 2·(hi-lo)·k·d when the group has more edges
            # than there are entities (the dense-graph regime).
            np.matmul(ent, w_t, out=table)
            np.take(table, heads_r[lo:hi], axis=0, out=th[lo:hi])
            th[lo:hi] += r_vec
            np.tanh(th[lo:hi], out=th[lo:hi])
            np.take(table, tails_r[lo:hi], axis=0, out=pt[lo:hi])
            np.einsum("ij,ij->i", pt[lo:hi], th[lo:hi], out=scores[lo:hi])
            continue
        for b0 in range(lo, hi, block):
            b1 = min(b0 + block, hi)
            th_b = th[b0:b1]
            pt_b = pt[b0:b1]
            gat = gather[: b1 - b0]
            np.take(ent, heads_r[b0:b1], axis=0, out=gat)
            np.matmul(gat, w_t, out=th_b)
            th_b += r_vec
            np.tanh(th_b, out=th_b)
            np.take(ent, tails_r[b0:b1], axis=0, out=gat)
            np.matmul(gat, w_t, out=pt_b)
            np.einsum("ij,ij->i", pt_b, th_b, out=scores[b0:b1])
    return scores, th, pt


def edge_attention_backward(
    grad_scores: np.ndarray,
    ent: np.ndarray,
    rel: np.ndarray,
    proj: np.ndarray,
    bounds: np.ndarray,
    th: np.ndarray,
    pt: np.ndarray,
    head_offsets: np.ndarray,
    head_rows: np.ndarray,
    head_bounds: np.ndarray,
    tail_perm: np.ndarray,
    tail_offsets: np.ndarray,
    tail_rows: np.ndarray,
    tail_bounds: np.ndarray,
    block: Optional[int] = None,
    gp_buf: Optional[np.ndarray] = None,
    gu_buf: Optional[np.ndarray] = None,
    node_out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of :func:`edge_attention_forward`, reduced before the matmuls.

    ``grad_scores`` is the score gradient in relation-grouped order.  The
    chain rule factors every output through the per-edge ``(E, k)``
    gradients ``gu = g·pt·(1−th²)`` and ``gp = g·th``; because ``W_r`` and
    ``e_r`` are constant within a relation group, and every edge sharing a
    head (tail) also shares its entity row, those can be segment-summed to
    one row per touched *(entity, relation)* pair **first** (the head/tail
    run structure comes precomputed from
    :meth:`~repro.kg.adjacency.CSRAdjacency.attention_grad_groups`):

    - ``d e_h`` rows: ``GU_runs @ W_r`` — runs·k·d FLOPs instead of E·k·d;
    - ``d e_t`` rows: ``GP_runs @ W_r`` likewise;
    - ``d W_r = GU_runsᵀ @ ent[head_rows] + GP_runsᵀ @ ent[tail_rows]`` —
      gathering one entity row per run instead of one per edge;
    - ``d e_r = Σ GU_runs``.

    Returns ``(node_vals, grad_rel, grad_proj)`` where ``node_vals`` stacks
    the per-head-run gradients (first ``len(head_rows)`` rows) over the
    per-tail-run gradients, ready for the final coalesce to unique entities
    (``segment_sum_rows`` with the cached ``perm``/``offsets``).
    ``gp_buf``/``gu_buf`` recycle the two ``(E, k)`` scratches and
    ``node_out`` the result buffer.
    """
    num_edges = len(grad_scores)
    k = rel.shape[1]
    d = ent.shape[1]
    num_head_runs = len(head_rows)
    num_tail_runs = len(tail_rows)
    grad_rel = np.zeros_like(rel)
    grad_proj = np.zeros_like(proj)
    node_vals = (
        node_out
        if node_out is not None
        else np.empty((num_head_runs + num_tail_runs, d), dtype=np.float64)
    )
    if num_edges == 0:
        return node_vals[:0], grad_rel, grad_proj
    if block is None:
        block = edge_block(max(k, d))
    gp = gp_buf if gp_buf is not None else np.empty((num_edges, k), dtype=np.float64)
    gu = gu_buf if gu_buf is not None else np.empty((num_edges, k), dtype=np.float64)
    # d scores / d pt = th ; d scores / d th = pt ; d th / d u = 1 - th².
    g = grad_scores[:, None]
    np.multiply(g, th, out=gp)
    np.multiply(g, pt, out=gu)
    damp = np.empty((min(block, num_edges), k), dtype=np.float64)
    for b0 in range(0, num_edges, block):
        b1 = min(b0 + block, num_edges)
        dp = damp[: b1 - b0]
        np.multiply(th[b0:b1], th[b0:b1], out=dp)
        np.subtract(1.0, dp, out=dp)
        gu[b0:b1] *= dp
    # Head runs are contiguous in relation-grouped order (stable sort of the
    # CSR layout), so GU reduces in place; tail runs need the cached
    # within-group sort.
    gu_runs = np.add.reduceat(gu, head_offsets[:-1], axis=0)
    gp_runs = segment_sum_rows(gp, tail_perm, tail_offsets, block=block)
    for r in range(len(bounds) - 1):
        hs, he = int(head_bounds[r]), int(head_bounds[r + 1])
        ts, te = int(tail_bounds[r]), int(tail_bounds[r + 1])
        if he == hs and te == ts:
            continue
        w_r = proj[r]  # (k, d)
        gu_r = gu_runs[hs:he]
        gp_r = gp_runs[ts:te]
        np.matmul(gu_r, w_r, out=node_vals[hs:he])  # d e_h per head run
        np.matmul(gp_r, w_r, out=node_vals[num_head_runs + ts : num_head_runs + te])
        grad_proj[r] += gu_r.T @ ent[head_rows[hs:he]]
        grad_proj[r] += gp_r.T @ ent[tail_rows[ts:te]]
        grad_rel[r] += gu_r.sum(axis=0)
    return node_vals, grad_rel, grad_proj


# ------------------------------------------------------------ TransR energy
def transr_energy_forward(
    ent: np.ndarray,
    rel: np.ndarray,
    proj: np.ndarray,
    heads_g: np.ndarray,
    tails_g: np.ndarray,
    bounds: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """TransR plausibility ``‖W_r e_h + e_r − W_r e_t‖²`` (Eq. 1), fused.

    Inputs are in relation-grouped order (``bounds`` delimits each
    relation's run in the batch).  Returns ``(scores, diff)`` where ``diff``
    holds the per-triple translation residuals ``W_r e_h + e_r − W_r e_t``
    saved for the backward pass.  Batches are optimizer-step sized (a few
    thousand triples), so each relation group is one matmul — the win over
    the per-op chain is collapsing its ~8 tape nodes per relation group
    (gathers, reshapes, transposes, concat, inverse scatter) into one.
    """
    n = len(heads_g)
    k = rel.shape[1]
    scores = np.empty(n, dtype=np.float64)
    diff = np.empty((n, k), dtype=np.float64)
    for r in range(len(bounds) - 1):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if hi == lo:
            continue
        w_t = proj[r].T  # (d, k)
        d_b = diff[lo:hi]
        np.matmul(ent[heads_g[lo:hi]], w_t, out=d_b)
        d_b += rel[r]
        d_b -= ent[tails_g[lo:hi]] @ w_t
        np.einsum("ij,ij->i", d_b, d_b, out=scores[lo:hi])
    return scores, diff


def transr_energy_backward(
    grad_scores: np.ndarray,
    ent: np.ndarray,
    rel: np.ndarray,
    proj: np.ndarray,
    heads_g: np.ndarray,
    tails_g: np.ndarray,
    bounds: np.ndarray,
    diff: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of :func:`transr_energy_forward`.

    Returns ``(ent_rows, grad_rel, grad_proj)``: ``ent_rows`` stacks the
    per-triple head gradients (first B rows) over the tail gradients (last B
    rows, the negation), indexed by ``concat(heads_g, tails_g)``; the
    relation-table and projection-tensor gradients are dense ``(R, k)`` /
    ``(R, k, d)`` accumulators the caller restricts to the relations present.
    """
    n = len(heads_g)
    d = ent.shape[1]
    ent_rows = np.empty((2 * n, d), dtype=np.float64)
    grad_rel = np.zeros_like(rel)
    grad_proj = np.zeros_like(proj)
    for r in range(len(bounds) - 1):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if hi == lo:
            continue
        # d score / d diff = 2 g diff ; diff = W_r e_h + e_r − W_r e_t.
        gd = 2.0 * grad_scores[lo:hi, None] * diff[lo:hi]  # (m, k)
        w_r = proj[r]  # (k, d)
        np.matmul(gd, w_r, out=ent_rows[lo:hi])
        np.negative(ent_rows[lo:hi], out=ent_rows[n + lo : n + hi])
        grad_rel[r] += gd.sum(axis=0)
        grad_proj[r] += gd.T @ ent[heads_g[lo:hi]]
        grad_proj[r] -= gd.T @ ent[tails_g[lo:hi]]
    return ent_rows, grad_rel, grad_proj


# -------------------------------------------------------- fused propagation
def weighted_neighbor_sum(
    emb: np.ndarray,
    weights: np.ndarray,
    tails: np.ndarray,
    offsets: np.ndarray,
    block: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``out[h] = Σ_{e ∈ segment(h)} weights[e] · emb[tails[e]]`` (Eq. 8).

    Edges are sorted by head (CSR layout, ``offsets`` delimiting segments).
    The gather → weight → segment-reduce chain runs block-by-block through a
    reused ``(block, d)`` scratch, so the ``(E, d)`` weighted-messages
    temporary of the per-op chain is never materialized.
    """
    num_segments = len(offsets) - 1
    d = emb.shape[1]
    num_edges = len(tails)
    if block is None:
        block = edge_block(d)
    if out is None:
        out = np.zeros((num_segments, d), dtype=np.float64)
    else:
        out[:] = 0.0
    if num_edges == 0:
        return out
    scratch = np.empty((min(block, num_edges), d), dtype=np.float64)
    for e0 in range(0, num_edges, block):
        e1 = min(e0 + block, num_edges)
        sb = scratch[: e1 - e0]
        np.take(emb, tails[e0:e1], axis=0, out=sb)
        sb *= weights[e0:e1, None]
        first, starts, nonempty = _block_segments(offsets, e0, e1)
        reduced = np.add.reduceat(sb, starts[nonempty], axis=0)
        out[first : first + len(starts)][nonempty] += reduced
    return out


def weighted_backward_fused(
    grad_out: np.ndarray,
    emb: np.ndarray,
    w_in: np.ndarray,
    heads_in: np.ndarray,
    tails_in: np.ndarray,
    in_offsets: np.ndarray,
    block: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Both :func:`weighted_neighbor_sum` gradients in one edge pass.

    In the tail-grouped (transpose) layout, the embedding gradient
    ``g_emb[t] = Σ w_e · grad_out[heads[e]]`` and the per-edge weight
    gradient ``gw[e] = grad_out[heads[e]] · emb[tails[e]]`` read the *same*
    gathered ``grad_out`` rows — running them separately gathers that
    ``(E, d)`` block twice.  Here each block is gathered once, dotted
    against the tail rows for ``gw`` (bit-identical to
    :func:`weighted_edge_grad`: the per-edge dot is order-independent
    across edges), then scaled by ``w_in`` and segment-reduced for
    ``g_emb``.  ``gw`` comes back in tail-sorted order; the caller scatters
    it with the inverse of the tail permutation.
    """
    num_edges = len(heads_in)
    num_segments = len(in_offsets) - 1
    d = emb.shape[1]
    g_emb = np.zeros((num_segments, d), dtype=np.float64)
    gw_sorted = np.empty(num_edges, dtype=np.float64)
    if num_edges == 0:
        return g_emb, gw_sorted
    if block is None:
        block = edge_block(d)
    bmax = min(block, num_edges)
    g_gat = np.empty((bmax, d), dtype=np.float64)
    e_gat = np.empty((bmax, d), dtype=np.float64)
    for e0 in range(0, num_edges, block):
        e1 = min(e0 + block, num_edges)
        n = e1 - e0
        gb = g_gat[:n]
        eb = e_gat[:n]
        np.take(grad_out, heads_in[e0:e1], axis=0, out=gb)
        np.take(emb, tails_in[e0:e1], axis=0, out=eb)
        np.einsum("ij,ij->i", gb, eb, out=gw_sorted[e0:e1])
        gb *= w_in[e0:e1, None]
        first, starts, nonempty = _block_segments(in_offsets, e0, e1)
        reduced = np.add.reduceat(gb, starts[nonempty], axis=0)
        g_emb[first : first + len(starts)][nonempty] += reduced
    return g_emb, gw_sorted


def weighted_incoming_sum(
    grad_out: np.ndarray,
    weights: np.ndarray,
    heads_in: np.ndarray,
    weights_order: np.ndarray,
    in_offsets: np.ndarray,
    block: Optional[int] = None,
) -> np.ndarray:
    """Transpose of :func:`weighted_neighbor_sum` for the backward pass.

    ``grad_emb[t] = Σ_{e: tails[e]=t} weights[e] · grad_out[heads[e]]`` —
    identical segment-reduction shape, but over the tail-grouped (transpose)
    edge layout: ``heads_in`` are the head endpoints permuted by
    ``weights_order`` (the tail-sort permutation) and ``in_offsets`` delimits
    each tail's block.
    """
    return weighted_neighbor_sum(
        grad_out, weights[weights_order], heads_in, in_offsets, block=block
    )


def segment_sum_rows(
    values: np.ndarray,
    gather_idx: np.ndarray,
    run_offsets: np.ndarray,
    block: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``out[s] = Σ_{p ∈ run s} values[gather_idx[p]]`` — blocked coalesce.

    The gradient-coalescing primitive: ``gather_idx`` permutes ``values`` rows
    so rows belonging to the same output segment are contiguous, and
    ``run_offsets`` (length ``num_runs + 1``) delimits each run.  Identical
    segment-reduction shape to :func:`weighted_neighbor_sum` minus the weight
    pass; a plain ``np.add.reduceat(values[gather_idx], ...)`` materializes
    the full permuted copy and runs ~2x slower than this blocked stream.
    """
    num_runs = len(run_offsets) - 1
    num_rows = len(gather_idx)
    d = values.shape[1]
    if block is None:
        block = edge_block(d)
    if out is None:
        out = np.zeros((num_runs, d), dtype=np.float64)
    else:
        out[:] = 0.0
    if num_rows == 0:
        return out
    scratch = np.empty((min(block, num_rows), d), dtype=np.float64)
    for e0 in range(0, num_rows, block):
        e1 = min(e0 + block, num_rows)
        sb = scratch[: e1 - e0]
        np.take(values, gather_idx[e0:e1], axis=0, out=sb)
        first, starts, nonempty = _block_segments(run_offsets, e0, e1)
        reduced = np.add.reduceat(sb, starts[nonempty], axis=0)
        out[first : first + len(starts)][nonempty] += reduced
    return out


def weighted_edge_grad(
    grad_out: np.ndarray,
    emb: np.ndarray,
    heads: np.ndarray,
    tails: np.ndarray,
    block: Optional[int] = None,
) -> np.ndarray:
    """Per-edge weight gradient ``gw[e] = grad_out[heads[e]] · emb[tails[e]]``."""
    num_edges = len(tails)
    d = emb.shape[1]
    if block is None:
        block = edge_block(d)
    gw = np.empty(num_edges, dtype=np.float64)
    if num_edges == 0:
        return gw
    bmax = min(block, num_edges)
    g_gat = np.empty((bmax, d), dtype=np.float64)
    e_gat = np.empty((bmax, d), dtype=np.float64)
    for e0 in range(0, num_edges, block):
        e1 = min(e0 + block, num_edges)
        n = e1 - e0
        np.take(grad_out, heads[e0:e1], axis=0, out=g_gat[:n])
        np.take(emb, tails[e0:e1], axis=0, out=e_gat[:n])
        np.einsum("ij,ij->i", g_gat[:n], e_gat[:n], out=gw[e0:e1])
    return gw


# ---------------------------------------------------------- fused evaluation
def masked_topk(
    user_vecs: np.ndarray,
    item_vecs: np.ndarray,
    k: int,
    neg_buf: np.ndarray,
    train_indptr: np.ndarray,
    train_indices: np.ndarray,
    batch: np.ndarray,
    valid_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused score → negate → train-mask → top-k over one user batch.

    Writes ``-(user_vecs @ item_vecsᵀ)`` straight into the caller's reusable
    ``neg_buf`` rows (negating the small ``(B, dim)`` factor once instead of
    copy-negating the ``(B, N)`` score matrix), masks each user's training
    positives to ``+inf`` with one flat fancy-index, and returns the row-wise
    top-``k`` item ids, best first, stable under ties — the exact ranking the
    per-op evaluator chain produces.

    When ``k`` exceeds a row's unmasked-candidate count the selection
    necessarily includes masked (``+inf``) columns; the stable sort pushes
    them past every real candidate, so each row is always a valid prefix of
    real recommendations followed by masked filler.  ``valid_out`` (int64,
    length ≥ rows) receives each row's real-candidate count so callers that
    must never surface a masked id — the serving layer — can clamp per row,
    mirroring the single-user clamp in ``Recommender.recommend``.  A row
    whose every candidate is masked reports 0.
    """
    rows = user_vecs.shape[0]
    n_items = item_vecs.shape[0]
    if not 0 < k <= n_items:
        raise ValueError(f"k must be in [1, {n_items}] (num_items), got {k}")
    buf = neg_buf[:rows]
    if buf.dtype == user_vecs.dtype == item_vecs.dtype:
        # Negation of the (B, dim) factor is exact in IEEE arithmetic, so the
        # blocked product equals -(U @ Vᵀ) bit-for-bit.
        np.matmul(-user_vecs, item_vecs.T, out=buf)
    else:
        # Mixed precision (e.g. float32 score buffer over float64 factors):
        # compute the product at factor precision and downcast on the copy-
        # negate — the exact sequence of the per-op evaluator chain.
        np.multiply(user_vecs @ item_vecs.T, -1.0, out=buf, casting="unsafe")
    deg = train_indptr[batch + 1] - train_indptr[batch]
    total = int(deg.sum())
    if total:
        row_ids = np.repeat(np.arange(rows, dtype=np.int64), deg)
        run_starts = np.zeros(rows, dtype=np.int64)
        np.cumsum(deg[:-1], out=run_starts[1:])
        flat = np.repeat(train_indptr[batch] - run_starts, deg) + np.arange(
            total, dtype=np.int64
        )
        buf[row_ids, train_indices[flat]] = np.inf
    top = np.argpartition(buf, k - 1, axis=1)[:, :k]
    row_idx = np.arange(rows, dtype=np.int64)[:, None]
    order = np.argsort(buf[row_idx, top], axis=1, kind="stable")
    result = top[row_idx, order]
    if valid_out is not None:
        if valid_out.shape[0] < rows:
            raise ValueError(
                f"valid_out has {valid_out.shape[0]} rows, batch has {rows}"
            )
        np.sum(buf[row_idx, result] < np.inf, axis=1, out=valid_out[:rows])
    return result


# ----------------------------------------------- scipy-free sparse fallback
class PureCSR:
    """Minimal CSR matrix supporting ``A @ x`` and ``A.T.tocsr()``.

    Drop-in for the ``scipy.sparse.csr_matrix`` the frozen-attention fast
    path builds when scipy is absent: matvec products route through the
    cache-blocked :func:`weighted_neighbor_sum` kernel, and the transpose
    (needed by :func:`repro.autograd.functional.spmm` backward) is derived
    once and cached.  Rows are duplicate-free by construction
    (:func:`build_pure_csr` coalesces parallel edges).
    """

    def __init__(
        self, data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, shape
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = tuple(shape)
        self._transpose: Optional["PureCSR"] = None

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.shape[1]:
            raise ValueError(
                f"cannot multiply {self.shape} CSR by array of shape {x.shape}"
            )
        return weighted_neighbor_sum(x, self.data, self.indices, self.indptr)

    dot = __matmul__

    @property
    def T(self) -> "PureCSR":
        if self._transpose is None:
            rows = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
            self._transpose = build_pure_csr(
                self.indices, rows, self.data, (self.shape[1], self.shape[0])
            )
        return self._transpose

    def tocsr(self) -> "PureCSR":
        return self

    @property
    def nnz(self) -> int:
        return len(self.data)

    def toarray(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        out[rows, self.indices] = self.data
        return out

    def __repr__(self) -> str:
        return f"PureCSR(shape={self.shape}, nnz={self.nnz})"


def build_pure_csr(rows, cols, values, shape) -> PureCSR:
    """Coalesced CSR from COO triplets (duplicate entries are summed).

    Mirrors ``scipy.sparse.csr_matrix((values, (rows, cols)))`` +
    ``sum_duplicates()``: entries are stably sorted by (row, col) and equal
    coordinates merged with a segment reduction, so the result is
    deterministic and summation order matches the scipy construction for the
    duplicate-free case.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if len(rows):
        key = rows * np.int64(n_cols) + cols
        order = np.argsort(key, kind="stable")
        key = key[order]
        starts = np.flatnonzero(np.r_[True, key[1:] != key[:-1]])
        data = np.add.reduceat(values[order], starts)
        uniq = key[starts]
        out_rows = uniq // n_cols
        out_cols = uniq % n_cols
    else:
        data = np.zeros(0, dtype=np.float64)
        out_rows = np.zeros(0, dtype=np.int64)
        out_cols = np.zeros(0, dtype=np.int64)
    counts = np.bincount(out_rows, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return PureCSR(data, out_cols, indptr, (n_rows, n_cols))
