"""Fused cache-blocked kernels for the CKAT hot loops.

Layout:

- :mod:`repro.kernels.numpy_backend` — raw-ndarray cache-blocked kernels
  (always available).
- :mod:`repro.kernels.numba_backend` — optional jitted mirrors, auto-detected
  and self-checked at import; never required.
- :mod:`repro.kernels.dispatch` — backend selection plus the differentiable
  Tensor-level wrappers.  **The only module models/eval code may import**
  (reprolint RPL010).
"""

__all__ = ["dispatch", "numpy_backend", "numba_backend"]
