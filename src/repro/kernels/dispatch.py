"""Backend dispatch for the fused kernels — the single sanctioned entry point.

Models and evaluators call the fused ops **only** through this module
(reprolint RPL010 enforces the funnel); the raw cache-blocked implementations
live in :mod:`repro.kernels.numpy_backend` and, when numba is importable and
passes its import-time self-check, :mod:`repro.kernels.numba_backend`.

Backends
--------
``numpy``
    Always available: cache-blocked NumPy kernels.
``numba``
    Auto-detected, never required.  Only the gather/reduce-bound edge loops
    route here; BLAS-bound pieces (attention backward matmuls, evaluation
    scoring) stay on NumPy where a tuned GEMM wins.
``oracle``
    Fusion disabled: callers fall back to their original per-op autograd
    chains, which remain the parity oracle for every fused kernel (the PR 1
    legacy-loop pattern).  Select it to benchmark against or to bisect a
    suspected kernel bug out of a run.

Selection: ``REPRO_KERNELS`` environment variable (``auto``/``numpy``/
``numba``/``oracle``; unset means ``auto``) read once at first use, then
:func:`set_backend` / the :func:`kernel_backend` context manager.

The differentiable wrappers (:func:`edge_attention_scores`,
:func:`weighted_neighbor_sum`) build ordinary tape nodes, so ``Tensor``,
``backward`` and checkpointing are untouched: a fused op is just one fat node
where the oracle chain records eight thin ones.  Gradients for leaf embedding
tables are emitted as :class:`~repro.autograd.sparse.SparseRowGrad`, matching
the oracle's gather backward.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Union

import numpy as np

from repro.autograd.functional import _make
from repro.autograd.sparse import SparseRowGrad, sparse_grads_enabled
from repro.autograd.tensor import Tensor
from repro.kernels import numba_backend, numpy_backend

__all__ = [
    "ENV_VAR",
    "BACKENDS",
    "TENSOR_OPS",
    "available_backends",
    "get_backend",
    "set_backend",
    "kernel_backend",
    "fused_enabled",
    "edge_attention_scores",
    "transr_energy",
    "weighted_neighbor_sum",
    "masked_topk",
    "build_weighted_csr",
]

ENV_VAR = "REPRO_KERNELS"
BACKENDS = ("numba", "numpy", "oracle")

#: Dispatch ops that return Tensors — instrumented by the numeric sanitizer
#: and the op-timer profiler exactly like the ``repro.autograd.functional``
#: public surface.
TENSOR_OPS = ("edge_attention_scores", "weighted_neighbor_sum", "transr_energy")

_backend: Optional[str] = None


class _BufferPool:
    """Recycle the large per-call arrays of the fused attention op.

    The op saves two ``(E, k)`` activations for backward and scratches a
    ``(2E, d)`` gradient block — ~40 MB of fresh page faults per training
    step if allocated anew.  Buffers are handed out by shape and returned
    once consumed; an unreturned buffer (e.g. a forward whose graph is
    discarded without backward) is simply garbage-collected and the pool
    re-allocates, so reuse is an optimization, never a correctness issue.
    """

    _MAX_FREE = 4  # per shape — bounds worst-case retention

    def __init__(self) -> None:
        self._free: dict = {}

    def take(self, shape) -> np.ndarray:
        stack = self._free.get(shape)
        if stack:
            return stack.pop()
        return np.empty(shape, dtype=np.float64)

    def give(self, *arrays: np.ndarray) -> None:
        for arr in arrays:
            stack = self._free.setdefault(arr.shape, [])
            if len(stack) < self._MAX_FREE:
                stack.append(arr)


_pool = _BufferPool()


def available_backends() -> tuple:
    """Backends usable on this machine (``numba`` only when it self-checks)."""
    names = ["numpy", "oracle"]
    if numba_backend.AVAILABLE:
        names.insert(0, "numba")
    return tuple(names)


def _resolve_from_env() -> str:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("", "auto"):
        return "numba" if numba_backend.AVAILABLE else "numpy"
    if value in ("off", "oracle"):
        return "oracle"
    if value in ("numpy", "numba"):
        return _validate(value)
    raise ValueError(
        f"unrecognized {ENV_VAR}={value!r}; expected auto, numpy, numba, oracle or off"
    )


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; expected one of {BACKENDS}")
    if name == "numba" and not numba_backend.AVAILABLE:
        raise ValueError(
            "numba backend requested but numba is not installed (or failed its "
            "import self-check); use REPRO_KERNELS=auto to fall back silently"
        )
    return name


def get_backend() -> str:
    """The active backend name, resolving ``REPRO_KERNELS`` on first use."""
    global _backend
    if _backend is None:
        _backend = _resolve_from_env()
    return _backend


def set_backend(name: str) -> None:
    """Select the kernel backend for subsequent fused-op calls."""
    global _backend
    _backend = _validate(name)


@contextlib.contextmanager
def kernel_backend(name: str) -> Iterator[None]:
    """Temporarily switch backends (benchmarks pit ``oracle`` against fused)."""
    global _backend
    prev = _backend
    set_backend(name)
    try:
        yield
    finally:
        _backend = prev


def fused_enabled() -> bool:
    """Whether callers should take the fused path (False under ``oracle``)."""
    return get_backend() != "oracle"


# ----------------------------------------------------------- fused attention
def edge_attention_scores(
    entity_emb: Tensor, relation_emb: Tensor, proj: Tensor, adj
) -> Tensor:
    """Unnormalized knowledge-aware attention scores, shape ``(num_edges,)``.

    One tape node for the per-relation ``gather → project → tanh → dot``
    chain of Eq. 4, in head-sorted edge order, ready for
    :func:`~repro.autograd.functional.segment_softmax`.  The relation
    grouping, its inverse scatter permutation and the grouped endpoints all
    come precomputed from the adjacency caches.
    """
    order, bounds = adj.relation_edge_groups()
    inverse = adj.relation_scatter_index()
    heads_r, tails_r = adj.relation_edge_endpoints()
    ent, rel, prj = entity_emb.data, relation_emb.data, proj.data
    num_edges = adj.num_edges
    k = rel.shape[1]
    if get_backend() == "numba" and numba_backend.AVAILABLE:
        scores_r, th, pt = numba_backend.edge_attention_scores(
            ent, rel, prj, heads_r, tails_r, bounds
        )
    else:
        scores_r, th, pt = numpy_backend.edge_attention_forward(
            ent,
            rel,
            prj,
            heads_r,
            tails_r,
            bounds,
            th_out=_pool.take((num_edges, k)),
            pt_out=_pool.take((num_edges, k)),
        )
    out = scores_r[inverse]
    released = False

    def backward(grad: np.ndarray) -> None:
        nonlocal released
        groups = adj.attention_grad_groups()
        num_runs = len(groups.head_rows) + len(groups.tail_rows)
        gp_buf = _pool.take((num_edges, k))
        gu_buf = _pool.take((num_edges, k))
        node_scratch = _pool.take((num_runs, ent.shape[1]))
        node_vals, grad_rel, grad_proj = numpy_backend.edge_attention_backward(
            np.asarray(grad)[order],
            ent,
            rel,
            prj,
            bounds,
            th,
            pt,
            groups.head_offsets,
            groups.head_rows,
            groups.head_bounds,
            groups.tail_perm,
            groups.tail_offsets,
            groups.tail_rows,
            groups.tail_bounds,
            gp_buf=gp_buf,
            gu_buf=gu_buf,
            node_out=node_scratch,
        )
        if entity_emb.requires_grad:
            # Coalesce the per-(entity, relation) partial rows to the
            # touched entities with the adjacency's cached grouping: the
            # sparse merge and the optimizer then handle at most
            # num_entities rows, and the reduction never materializes
            # per-edge gradient rows at all.
            values = numpy_backend.segment_sum_rows(
                node_vals, groups.perm, groups.offsets
            )
            g = SparseRowGrad(ent.shape, groups.rows, values, coalesced=True)
            if sparse_grads_enabled() and not entity_emb._parents:
                entity_emb.accumulate_grad(g)
            else:
                entity_emb.accumulate_grad(g.to_dense(), owned=True)
        _pool.give(gp_buf, gu_buf, node_scratch)
        if not released:
            released = True
            _pool.give(th, pt)
        if relation_emb.requires_grad:
            relation_emb.accumulate_grad(grad_rel, owned=True)
        if proj.requires_grad:
            proj.accumulate_grad(grad_proj, owned=True)

    node = _make(out, (entity_emb, relation_emb, proj), backward)
    if node._backward is None:
        # Inference path: the graph recorded no backward, so the saved
        # activations can be recycled immediately.
        _pool.give(th, pt)
    return node


# ------------------------------------------------------------- TransR energy
def transr_energy(
    entity_emb: Tensor,
    relation_emb: Tensor,
    proj: Tensor,
    heads: np.ndarray,
    rels: np.ndarray,
    tails: np.ndarray,
) -> Tensor:
    """Fused TransR plausibility scores ``‖W_r e_h + e_r − W_r e_t‖²`` (Eq. 1).

    One tape node for the grouped gather → project → translate → norm chain
    of :meth:`repro.models.embeddings.TransR.energy`, shape ``(B,)``.
    Always NumPy: triple batches are optimizer-step sized, so each relation
    group is a single BLAS call either way — the fusion removes the per-group
    tape nodes, not arithmetic.
    """
    heads = np.asarray(heads, dtype=np.int64)
    rels = np.asarray(rels, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    ent, rel, prj = entity_emb.data, relation_emb.data, proj.data
    num_relations = rel.shape[0]
    order = np.argsort(rels, kind="stable")
    heads_g, tails_g = heads[order], tails[order]
    counts = np.bincount(rels[order], minlength=num_relations)
    bounds = np.zeros(num_relations + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    scores_g, diff = numpy_backend.transr_energy_forward(
        ent, rel, prj, heads_g, tails_g, bounds
    )
    out = np.empty(len(rels), dtype=np.float64)
    out[order] = scores_g

    def backward(grad: np.ndarray) -> None:
        ent_rows, grad_rel, grad_proj = numpy_backend.transr_energy_backward(
            np.asarray(grad)[order], ent, rel, prj, heads_g, tails_g, bounds, diff
        )
        if entity_emb.requires_grad:
            idx = np.concatenate([heads_g, tails_g])
            g = SparseRowGrad(ent.shape, idx, ent_rows)
            if sparse_grads_enabled() and not entity_emb._parents:
                entity_emb.accumulate_grad(g)
            else:
                entity_emb.accumulate_grad(g.to_dense(), owned=True)
        present = np.flatnonzero(counts > 0)
        if relation_emb.requires_grad:
            # Restrict to the relations present so the lazy optimizer touches
            # the same row set as the oracle chain's gather backward.
            _accumulate_rows(relation_emb, grad_rel, present)
        if proj.requires_grad:
            _accumulate_rows(proj, grad_proj, present)

    return _make(out, (entity_emb, relation_emb, proj), backward)


def _accumulate_rows(param: Tensor, dense_grad: np.ndarray, rows: np.ndarray) -> None:
    """Accumulate ``dense_grad`` restricted to ``rows`` as a sparse row grad."""
    g = SparseRowGrad(
        dense_grad.shape, rows, dense_grad[rows], coalesced=True
    )
    if sparse_grads_enabled() and not param._parents:
        param.accumulate_grad(g)
    else:
        param.accumulate_grad(g.to_dense(), owned=True)


# --------------------------------------------------------- fused propagation
def weighted_neighbor_sum(
    embeddings: Tensor, edge_weights: Union[Tensor, np.ndarray], adj
) -> Tensor:
    """Fused ``gather(tails) → scale → segment-sum`` propagation step (Eq. 8).

    ``edge_weights`` may be a Tensor (differentiable attention, the exact
    Eq. 4–5 path) or a constant array (frozen attention / uniform weights);
    either way the ``(E, d)`` weighted-messages temporary of the per-op chain
    is never materialized.  Returns the per-entity neighborhood aggregate,
    shape ``(num_entities, d)``.
    """
    weights_tensor = edge_weights if isinstance(edge_weights, Tensor) else None
    w = (
        weights_tensor.data
        if weights_tensor is not None
        else np.asarray(edge_weights, dtype=np.float64)
    )
    emb = embeddings.data
    backend = (
        numba_backend
        if get_backend() == "numba" and numba_backend.AVAILABLE
        else numpy_backend
    )
    out = backend.weighted_neighbor_sum(emb, w, adj.tails, adj.offsets)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        needs_gw = weights_tensor is not None and weights_tensor.requires_grad
        gw: Optional[np.ndarray] = None
        if embeddings.requires_grad:
            in_order, in_offsets, heads_in, tails_in = adj.incoming_edge_groups()
            if needs_gw:
                # One edge pass for both gradients: the weight grad reads
                # the same gathered grad_out rows as the embedding grad
                # (numpy reference only — the jitted mirror keeps the two
                # single-purpose kernels).
                g_emb, gw_sorted = numpy_backend.weighted_backward_fused(
                    grad, emb, w[in_order], heads_in, tails_in, in_offsets
                )
                gw = np.empty(adj.num_edges, dtype=np.float64)
                gw[in_order] = gw_sorted
            else:
                g_emb = backend.weighted_neighbor_sum(
                    grad, w[in_order], heads_in, in_offsets
                )
            if sparse_grads_enabled() and not embeddings._parents:
                # Leaf table: restrict to rows with incoming edges so the
                # lazy optimizer touches the same row set as the oracle's
                # gather backward.
                touched = np.flatnonzero(np.diff(in_offsets) > 0)
                embeddings.accumulate_grad(
                    SparseRowGrad(
                        emb.shape, touched, g_emb[touched], coalesced=True
                    )
                )
            else:
                embeddings.accumulate_grad(g_emb, owned=True)
        if needs_gw:
            if gw is None:
                gw = backend.weighted_edge_grad(grad, emb, adj.heads, adj.tails)
            weights_tensor.accumulate_grad(gw, owned=True)

    parents = (embeddings,) if weights_tensor is None else (embeddings, weights_tensor)
    return _make(out, parents, backward)


# ---------------------------------------------------------- fused evaluation
def masked_topk(
    user_vecs: np.ndarray,
    item_vecs: np.ndarray,
    k: int,
    neg_buf: np.ndarray,
    train_indptr: np.ndarray,
    train_indices: np.ndarray,
    batch: np.ndarray,
    valid_out: "np.ndarray | None" = None,
) -> np.ndarray:
    """Fused score → negate → train-mask → top-k for one evaluation batch.

    Always NumPy: the product is one BLAS call into the caller's reusable
    buffer, which no jitted loop improves on.  Ranking (including tie
    behavior) is identical to the evaluator's per-op chain.  ``valid_out``
    receives per-row real-candidate counts (see the backend docstring) so
    serving callers can truncate masked filler from short rows.
    """
    return numpy_backend.masked_topk(
        user_vecs,
        item_vecs,
        k,
        neg_buf,
        train_indptr,
        train_indices,
        batch,
        valid_out=valid_out,
    )


# ------------------------------------------------- frozen-attention adjacency
def build_weighted_csr(adj, edge_weights: np.ndarray):
    """CSR matrix ``A[h, t] = Σ attention(h, r, t)`` over parallel edges.

    The frozen-attention fast path computes propagation as ``A @ embeddings``
    (:func:`~repro.autograd.functional.spmm`).  Uses ``scipy.sparse`` when
    importable; otherwise degrades to the pure-NumPy
    :class:`~repro.kernels.numpy_backend.PureCSR`, whose matvec routes
    through the cache-blocked fused kernel — same interface, no hard scipy
    dependency.
    """
    weights = np.asarray(edge_weights, dtype=np.float64)
    try:
        import scipy.sparse as sp
    except ImportError:
        return numpy_backend.build_pure_csr(
            adj.heads, adj.tails, weights, (adj.num_entities, adj.num_entities)
        )
    matrix = sp.csr_matrix(
        (weights, (adj.heads, adj.tails)),
        shape=(adj.num_entities, adj.num_entities),
    )
    matrix.sum_duplicates()
    return matrix
