"""Optional numba-jitted fused kernels (auto-detected, never required).

This module mirrors the raw-array kernel signatures of
:mod:`repro.kernels.numpy_backend` for the gather/reduce-bound ops where a
compiled per-edge loop beats blocked NumPy: attention scores and the two
propagation reductions.  The BLAS-bound pieces (projection matmuls inside the
attention backward, evaluation scoring) stay on the NumPy backend — a jitted
triple loop cannot beat a tuned GEMM, so :mod:`repro.kernels.dispatch` only
routes the edge-loop kernels here.

Availability contract
---------------------
``AVAILABLE`` is True only when (a) numba imports and (b) every jitted kernel
reproduces the NumPy reference on a small self-check fixture at import time.
A numba installation that miscompiles (or a future signature drift) therefore
degrades to the NumPy backend instead of silently corrupting training — the
same "never required" posture as the scipy fallback.  Nothing in this module
raises at import: all failures fold into ``AVAILABLE = False``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AVAILABLE",
    "edge_attention_scores",
    "weighted_neighbor_sum",
    "weighted_edge_grad",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    _HAVE_NUMBA = True
except Exception:  # ImportError, or a broken install
    numba = None
    _HAVE_NUMBA = False

AVAILABLE = False


def _unavailable(name: str):
    def stub(*args, **kwargs):
        raise RuntimeError(
            f"repro.kernels.numba_backend.{name} called but the numba backend "
            "is unavailable (AVAILABLE is False); route through "
            "repro.kernels.dispatch, which only selects backends that exist"
        )

    stub.__name__ = name
    stub.__doc__ = f"Unavailable stub for the jitted ``{name}`` (numba not usable here)."
    return stub


edge_attention_scores = _unavailable("edge_attention_scores")
weighted_neighbor_sum = _unavailable("weighted_neighbor_sum")
weighted_edge_grad = _unavailable("weighted_edge_grad")

if _HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True, fastmath=False)
    def _edge_attention_scores(ent, rel, proj, heads_r, tails_r, bounds, scores, th, pt):
        """Fill ``scores``/``th``/``pt`` (relation-grouped order) in one pass."""
        k = rel.shape[1]
        d = ent.shape[1]
        for r in range(len(bounds) - 1):
            lo, hi = bounds[r], bounds[r + 1]
            for e in range(lo, hi):
                h = heads_r[e]
                t = tails_r[e]
                s = 0.0
                for j in range(k):
                    u = rel[r, j]
                    p = 0.0
                    for c in range(d):
                        w = proj[r, j, c]
                        u += w * ent[h, c]
                        p += w * ent[t, c]
                    u = np.tanh(u)
                    th[e, j] = u
                    pt[e, j] = p
                    s += p * u
                scores[e] = s

    @numba.njit(cache=True, fastmath=False)
    def _weighted_neighbor_sum(emb, weights, tails, offsets, out):
        """``out[h] = Σ weights[e] · emb[tails[e]]`` over each head segment."""
        d = emb.shape[1]
        for h in range(len(offsets) - 1):
            for e in range(offsets[h], offsets[h + 1]):
                w = weights[e]
                t = tails[e]
                for c in range(d):
                    out[h, c] += w * emb[t, c]

    @numba.njit(cache=True, fastmath=False)
    def _weighted_edge_grad(grad_out, emb, heads, tails, gw):
        """``gw[e] = grad_out[heads[e]] · emb[tails[e]]``."""
        d = emb.shape[1]
        for e in range(len(tails)):
            h = heads[e]
            t = tails[e]
            s = 0.0
            for c in range(d):
                s += grad_out[h, c] * emb[t, c]
            gw[e] = s

    def edge_attention_scores(ent, rel, proj, heads_r, tails_r, bounds):
        """Jitted mirror of :func:`repro.kernels.numpy_backend.edge_attention_forward`."""
        num_edges = len(heads_r)
        k = rel.shape[1]
        scores = np.empty(num_edges, dtype=np.float64)
        th = np.empty((num_edges, k), dtype=np.float64)
        pt = np.empty((num_edges, k), dtype=np.float64)
        _edge_attention_scores(
            np.ascontiguousarray(ent),
            np.ascontiguousarray(rel),
            np.ascontiguousarray(proj),
            heads_r,
            tails_r,
            bounds,
            scores,
            th,
            pt,
        )
        return scores, th, pt

    def weighted_neighbor_sum(emb, weights, tails, offsets, block=None, out=None):
        """Jitted mirror of :func:`repro.kernels.numpy_backend.weighted_neighbor_sum`."""
        if out is None:
            out = np.zeros((len(offsets) - 1, emb.shape[1]), dtype=np.float64)
        else:
            out[:] = 0.0
        if len(tails):
            _weighted_neighbor_sum(
                np.ascontiguousarray(emb),
                np.ascontiguousarray(weights, dtype=np.float64)
                if weights.dtype != np.float64
                else weights,
                tails,
                offsets,
                out,
            )
        return out

    def weighted_edge_grad(grad_out, emb, heads, tails, block=None):
        """Jitted mirror of :func:`repro.kernels.numpy_backend.weighted_edge_grad`."""
        gw = np.empty(len(tails), dtype=np.float64)
        if len(tails):
            _weighted_edge_grad(
                np.ascontiguousarray(grad_out), np.ascontiguousarray(emb), heads, tails, gw
            )
        return gw

    def _self_check() -> bool:
        """Compare every jitted kernel against the NumPy reference once."""
        from repro.kernels import numpy_backend as ref

        # Import-time check needs a deterministic fixture; there is no caller
        # to thread a generator through.
        rng = np.random.default_rng(0)  # reprolint: disable=RPL002
        n_ent, n_rel, d, k, n_edges = 7, 3, 5, 4, 11
        ent = rng.standard_normal((n_ent, d))
        rel = rng.standard_normal((n_rel, k))
        proj = rng.standard_normal((n_rel, k, d))
        rels = np.sort(rng.integers(0, n_rel, n_edges)).astype(np.int64)
        heads_r = rng.integers(0, n_ent, n_edges).astype(np.int64)
        tails_r = rng.integers(0, n_ent, n_edges).astype(np.int64)
        bounds = np.zeros(n_rel + 1, dtype=np.int64)
        np.cumsum(np.bincount(rels, minlength=n_rel), out=bounds[1:])
        try:
            s_j, th_j, pt_j = edge_attention_scores(ent, rel, proj, heads_r, tails_r, bounds)
            s_n, th_n, pt_n = ref.edge_attention_forward(
                ent, rel, proj, heads_r, tails_r, bounds
            )
            if not (
                np.allclose(s_j, s_n, rtol=1e-12, atol=1e-12)
                and np.allclose(th_j, th_n, rtol=1e-12, atol=1e-12)
                and np.allclose(pt_j, pt_n, rtol=1e-12, atol=1e-12)
            ):
                return False
            heads = np.sort(rng.integers(0, n_ent, n_edges)).astype(np.int64)
            offsets = np.zeros(n_ent + 1, dtype=np.int64)
            np.cumsum(np.bincount(heads, minlength=n_ent), out=offsets[1:])
            w = rng.standard_normal(n_edges)
            agg_j = weighted_neighbor_sum(ent, w, tails_r, offsets)
            agg_n = ref.weighted_neighbor_sum(ent, w, tails_r, offsets)
            if not np.allclose(agg_j, agg_n, rtol=1e-12, atol=1e-12):
                return False
            g = rng.standard_normal((n_ent, d))
            gw_j = weighted_edge_grad(g, ent, heads, tails_r)
            gw_n = ref.weighted_edge_grad(g, ent, heads, tails_r)
            return bool(np.allclose(gw_j, gw_n, rtol=1e-12, atol=1e-12))
        except Exception:
            return False

    AVAILABLE = _self_check()
