"""Persistence: save/load traces, interaction datasets, and model weights.

Everything serializes to NumPy ``.npz`` archives — no pickle, so files are
portable, inspectable, and safe to load from untrusted sources.
"""

from repro.io.checkpoints import (
    TrainingCheckpoint,
    load_parameters,
    load_training_checkpoint,
    normalize_checkpoint_path,
    save_parameters,
    save_training_checkpoint,
)
from repro.io.datasets import (
    load_interactions,
    load_trace,
    save_interactions,
    save_trace,
)

__all__ = [
    "save_trace",
    "load_trace",
    "save_interactions",
    "load_interactions",
    "save_parameters",
    "load_parameters",
    "normalize_checkpoint_path",
    "TrainingCheckpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
]
