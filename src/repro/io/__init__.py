"""Persistence: save/load traces, interaction datasets, and model weights.

Everything serializes to NumPy ``.npz`` archives — no pickle, so files are
portable, inspectable, and safe to load from untrusted sources.
"""

from repro.io.checkpoints import load_parameters, save_parameters
from repro.io.datasets import (
    load_interactions,
    load_trace,
    save_interactions,
    save_trace,
)

__all__ = [
    "save_trace",
    "load_trace",
    "save_interactions",
    "load_interactions",
    "save_parameters",
    "load_parameters",
]
