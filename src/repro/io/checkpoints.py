"""Model checkpointing: parameter snapshots and full training state.

Two formats, both plain ``.npz`` (no pickle — portable, inspectable, safe to
load from untrusted sources):

- :func:`save_parameters` / :func:`load_parameters` — weights only, keyed by
  parameter ``name`` (falling back to positional keys), shape-validated on
  load.  This is what :class:`~repro.eval.sharded.SnapshotScorer` ships to
  worker processes.
- :class:`TrainingCheckpoint` — everything a killed training run needs to
  resume **bit-identically**: parameters, Adam/SGD/AdaGrad slot buffers and
  step count, the training RNG's ``bit_generator`` state, the epoch counter,
  loss/eval history, and the best-epoch snapshot.  Non-array state travels
  as one JSON blob inside the archive (Python ints are arbitrary precision,
  so the 128-bit PCG64 state round-trips exactly; JSON floats round-trip
  float64 exactly via shortest-repr).

``np.savez_compressed`` silently appends ``.npz`` when the suffix is absent,
so every save/load here normalizes the path the same way and the save
functions return the path actually written — a ``save("m.ckpt")`` followed by
``load("m.ckpt")`` works instead of raising ``FileNotFoundError``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Union

import numpy as np

from repro.autograd.tensor import Parameter, no_grad

__all__ = [
    "save_parameters",
    "load_parameters",
    "parameter_keys",
    "normalize_checkpoint_path",
    "TrainingCheckpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "executor_fingerprint",
    "check_executor_compatible",
]

PathLike = Union[str, pathlib.Path]

_FORMAT = "repro.checkpoint"
_TRAINING_FORMAT = "repro.training_checkpoint"
_TRAINING_VERSION = 1


def normalize_checkpoint_path(path: PathLike) -> pathlib.Path:
    """Return ``path`` with the ``.npz`` suffix ``np.savez`` will enforce.

    ``np.savez_compressed("m.ckpt")`` writes ``m.ckpt.npz``; normalizing in
    both save and load keeps round-trips working for suffix-less paths.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def parameter_keys(params: List[Parameter]) -> List[str]:
    """Stable unique keys for a parameter list (name, disambiguated)."""
    keys: List[str] = []
    seen: Dict[str, int] = {}
    for i, p in enumerate(params):
        base = p.name or f"param{i}"
        count = seen.get(base, 0)
        seen[base] = count + 1
        keys.append(base if count == 0 else f"{base}#{count}")
    return keys


def save_parameters(path: PathLike, model) -> pathlib.Path:
    """Save ``model.parameters()`` as compressed npz; returns the path written."""
    path = normalize_checkpoint_path(path)
    params = model.parameters()
    arrays = {f"p.{key}": p.data for key, p in zip(parameter_keys(params), params)}
    np.savez_compressed(path, format=np.array(_FORMAT), **arrays)
    return path


def load_parameters(path: PathLike, model) -> None:
    """Load a checkpoint into ``model`` (in place).

    Raises ``ValueError`` on missing/extra parameters or shape mismatches —
    a checkpoint only loads into the architecture that produced it.
    """
    path = normalize_checkpoint_path(path)
    params = model.parameters()
    keys = parameter_keys(params)
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data or str(data["format"]) != _FORMAT:
            raise ValueError(f"{path}: not a repro checkpoint")
        stored = {k[2:] for k in data.files if k.startswith("p.")}
        expected = set(keys)
        if stored != expected:
            missing = expected - stored
            extra = stored - expected
            raise ValueError(
                f"{path}: parameter set mismatch (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        with no_grad():
            for key, p in zip(keys, params):
                arr = data[f"p.{key}"]
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"{path}: shape mismatch for {key}: file {arr.shape} vs model {p.data.shape}"
                    )
                p.data[...] = arr


_SERIAL_EXECUTOR_FINGERPRINT = {"kind": "serial"}


def executor_fingerprint(config: dict) -> dict:
    """The executor/shard layout recorded in a checkpoint's config dict.

    Checkpoints written before the training-engine refactor carry no
    ``executor`` entry; they all came from the serial in-process loop, so
    the absent key reads back as the serial fingerprint.
    """
    fp = config.get("executor")
    return dict(fp) if fp else dict(_SERIAL_EXECUTOR_FINGERPRINT)


def check_executor_compatible(saved_config: dict, current: Optional[dict]) -> None:
    """Fail loudly when a checkpoint's executor layout differs from the run's.

    Optimizer slots — and, for sharded runs, the worker-resident lazy-Adam
    ``row_steps`` — only load into the executor layout that produced them.
    A serial checkpoint resumed under ``--workers N`` (or a sharded one
    resumed serially, or under a different worker count / shard size) would
    silently reshape that state into the wrong owners; this check turns the
    silent corruption into an actionable error.
    """
    saved = executor_fingerprint(saved_config)
    now = dict(current) if current else dict(_SERIAL_EXECUTOR_FINGERPRINT)
    if saved != now:
        raise ValueError(
            f"cannot resume: checkpoint was written by executor {saved} but this run "
            f"uses {now}; optimizer slots and worker shard state only load into the "
            "layout that produced them — resume with the matching executor settings "
            "(same --workers and shard size) or start a fresh run"
        )


# ------------------------------------------------------------ training state
@dataclasses.dataclass
class TrainingCheckpoint:
    """Full training state at an epoch boundary.

    ``epoch`` counts *completed* epochs; a run resumed from this checkpoint
    starts at epoch ``epoch`` (0-based) and, given the same config and data,
    finishes bit-identical to an uninterrupted run.
    """

    epoch: int
    params: Dict[str, np.ndarray]
    optimizer_state: dict
    rng_state: dict
    losses: List[float]
    extra_losses: List[float]
    eval_history: List[dict]
    best_score: float
    best_snapshot: Optional[Dict[str, np.ndarray]]
    seconds: float
    config: dict
    extra_rng_state: Optional[dict] = None
    """Model-owned generator states beyond the training-loop RNG (e.g. the
    dropout generators CKAT and NFM seed at construction), keyed by the
    model's own labels.  ``None`` for models without private generators and
    in pre-PR-4 checkpoints — the loader treats both the same."""


def save_training_checkpoint(path: PathLike, ckpt: TrainingCheckpoint) -> pathlib.Path:
    """Write a :class:`TrainingCheckpoint` as npz; returns the path written.

    The file is written to a temporary sibling first and atomically renamed,
    so a crash mid-write never corrupts the previous checkpoint.
    """
    path = normalize_checkpoint_path(path)
    slots = ckpt.optimizer_state.get("slots", {})
    arrays: Dict[str, np.ndarray] = {}
    for key, arr in ckpt.params.items():
        arrays[f"p.{key}"] = arr
    if ckpt.best_snapshot is not None:
        for key, arr in ckpt.best_snapshot.items():
            arrays[f"best.{key}"] = arr
    for slot_name, buf in slots.items():
        for idx, arr in buf.items():
            arrays[f"opt.{slot_name}.{int(idx)}"] = arr
    meta = {
        "version": _TRAINING_VERSION,
        "epoch": int(ckpt.epoch),
        "param_keys": list(ckpt.params),
        "optimizer": {k: v for k, v in ckpt.optimizer_state.items() if k != "slots"},
        "optimizer_slot_names": sorted(slots),
        "rng_state": ckpt.rng_state,
        "extra_rng_state": ckpt.extra_rng_state,
        "losses": [float(x) for x in ckpt.losses],
        "extra_losses": [float(x) for x in ckpt.extra_losses],
        "eval_history": ckpt.eval_history,
        "best_score": ckpt.best_score,
        "has_best_snapshot": ckpt.best_snapshot is not None,
        "seconds": float(ckpt.seconds),
        "config": ckpt.config,
    }
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez_compressed(
        tmp, format=np.array(_TRAINING_FORMAT), meta=np.array(json.dumps(meta)), **arrays
    )
    tmp.replace(path)
    return path


def load_training_checkpoint(path: PathLike) -> TrainingCheckpoint:
    """Read a :func:`save_training_checkpoint` archive back into memory."""
    path = normalize_checkpoint_path(path)
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data or str(data["format"]) != _TRAINING_FORMAT:
            raise ValueError(f"{path}: not a repro training checkpoint")
        meta = json.loads(str(data["meta"]))
        if meta.get("version") != _TRAINING_VERSION:
            raise ValueError(f"{path}: unsupported checkpoint version {meta.get('version')!r}")
        param_keys = list(meta["param_keys"])
        params = {key: data[f"p.{key}"] for key in param_keys}
        best_snapshot = None
        if meta["has_best_snapshot"]:
            best_snapshot = {key: data[f"best.{key}"] for key in param_keys}
        slots: Dict[str, Dict[int, np.ndarray]] = {}
        for slot_name in meta["optimizer_slot_names"]:
            prefix = f"opt.{slot_name}."
            slots[slot_name] = {
                int(name[len(prefix) :]): data[name]
                for name in data.files
                if name.startswith(prefix)
            }
        optimizer_state = dict(meta["optimizer"])
        optimizer_state["slots"] = slots
        return TrainingCheckpoint(
            epoch=int(meta["epoch"]),
            params=params,
            optimizer_state=optimizer_state,
            rng_state=meta["rng_state"],
            extra_rng_state=meta.get("extra_rng_state"),
            losses=list(meta["losses"]),
            extra_losses=list(meta["extra_losses"]),
            eval_history=list(meta["eval_history"]),
            best_score=None if meta["best_score"] is None else float(meta["best_score"]),
            best_snapshot=best_snapshot,
            seconds=float(meta["seconds"]),
            config=dict(meta["config"]),
        )
