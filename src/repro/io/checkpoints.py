"""Model checkpointing: named-parameter save/load as ``.npz``.

Works with any model exposing ``parameters()`` returning
:class:`~repro.autograd.tensor.Parameter` objects.  Parameters are keyed by
their ``name`` attribute (falling back to positional keys), so loading
validates both the parameter set and every shape.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Union

import numpy as np

from repro.autograd.tensor import Parameter

__all__ = ["save_parameters", "load_parameters", "parameter_keys"]

PathLike = Union[str, pathlib.Path]

_FORMAT = "repro.checkpoint"


def parameter_keys(params: List[Parameter]) -> List[str]:
    """Stable unique keys for a parameter list (name, disambiguated)."""
    keys: List[str] = []
    seen: Dict[str, int] = {}
    for i, p in enumerate(params):
        base = p.name or f"param{i}"
        count = seen.get(base, 0)
        seen[base] = count + 1
        keys.append(base if count == 0 else f"{base}#{count}")
    return keys


def save_parameters(path: PathLike, model) -> None:
    """Save ``model.parameters()`` to ``path`` as compressed npz."""
    params = model.parameters()
    arrays = {f"p.{key}": p.data for key, p in zip(parameter_keys(params), params)}
    np.savez_compressed(path, format=np.array(_FORMAT), **arrays)


def load_parameters(path: PathLike, model) -> None:
    """Load a checkpoint into ``model`` (in place).

    Raises ``ValueError`` on missing/extra parameters or shape mismatches —
    a checkpoint only loads into the architecture that produced it.
    """
    params = model.parameters()
    keys = parameter_keys(params)
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data or str(data["format"]) != _FORMAT:
            raise ValueError(f"{path}: not a repro checkpoint")
        stored = {k[2:] for k in data.files if k.startswith("p.")}
        expected = set(keys)
        if stored != expected:
            missing = expected - stored
            extra = stored - expected
            raise ValueError(
                f"{path}: parameter set mismatch (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        for key, p in zip(keys, params):
            arr = data[f"p.{key}"]
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"{path}: shape mismatch for {key}: file {arr.shape} vs model {p.data.shape}"
                )
            p.data[...] = arr
