"""NPZ serialization for query traces and interaction datasets.

Facility catalogs are cheap to regenerate from a seed, so only the derived
artifacts that carry entropy — traces and interaction splits — get I/O.
Format: plain ``.npz`` with a ``format`` marker and a version field, so
readers can fail loudly on foreign files.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.facility.trace import QueryTrace

__all__ = ["save_trace", "load_trace", "save_interactions", "load_interactions"]

PathLike = Union[str, pathlib.Path]

_TRACE_FORMAT = "repro.trace"
_INTERACTIONS_FORMAT = "repro.interactions"
_VERSION = 1


def save_trace(path: PathLike, trace: QueryTrace) -> None:
    """Write a :class:`~repro.facility.trace.QueryTrace` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        format=np.array(_TRACE_FORMAT),
        version=np.array(_VERSION),
        user_ids=trace.user_ids,
        object_ids=trace.object_ids,
        timestamps=trace.timestamps,
        num_users=np.array(trace.num_users),
        num_objects=np.array(trace.num_objects),
    )


def load_trace(path: PathLike) -> QueryTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, _TRACE_FORMAT, path)
        return QueryTrace(
            user_ids=data["user_ids"],
            object_ids=data["object_ids"],
            timestamps=data["timestamps"],
            num_users=int(data["num_users"]),
            num_objects=int(data["num_objects"]),
        )


def save_interactions(path: PathLike, data: InteractionDataset) -> None:
    """Write an :class:`~repro.data.interactions.InteractionDataset` (.npz)."""
    np.savez_compressed(
        path,
        format=np.array(_INTERACTIONS_FORMAT),
        version=np.array(_VERSION),
        user_ids=data.user_ids,
        item_ids=data.item_ids,
        num_users=np.array(data.num_users),
        num_items=np.array(data.num_items),
    )


def load_interactions(path: PathLike) -> InteractionDataset:
    """Read interactions written by :func:`save_interactions`."""
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, _INTERACTIONS_FORMAT, path)
        return InteractionDataset(
            user_ids=data["user_ids"],
            item_ids=data["item_ids"],
            num_users=int(data["num_users"]),
            num_items=int(data["num_items"]),
        )


def _check_format(data, expected: str, path: PathLike) -> None:
    if "format" not in data or str(data["format"]) != expected:
        found = str(data["format"]) if "format" in data else "<missing>"
        raise ValueError(f"{path}: expected format {expected!r}, found {found!r}")
    version = int(data["version"]) if "version" in data else -1
    if version > _VERSION:
        raise ValueError(f"{path}: file version {version} newer than supported {_VERSION}")
