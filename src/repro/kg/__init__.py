"""Knowledge-graph construction (Section IV of the paper).

Pipeline: the three subgraphs — user–item (UIG), user–user (UUG), and
item–attribute (IAG, carrying LOC / DKG / MD knowledge sources) — are built
from a trace + catalog + population, then merged via entity alignment into a
:class:`~repro.kg.ckg.CollaborativeKnowledgeGraph` with a unified entity id
space and an ``Interact`` relation.

Modules
-------
- :mod:`~repro.kg.triples` — relation registry and triple store (SoA int64
  arrays, deduplication, inverse-relation augmentation);
- :mod:`~repro.kg.subgraphs` — UIG / UUG / IAG builders and the
  :class:`~repro.kg.subgraphs.KnowledgeSources` toggle set used by the
  Table-III ablation;
- :mod:`~repro.kg.ckg` — entity alignment and the CKG container;
- :mod:`~repro.kg.adjacency` — CSR edge layout sorted by head entity (for
  segment ops) and fixed-size neighbor sampling (for KGCN/RippleNet);
- :mod:`~repro.kg.stats` — Table-I statistics.
"""

from repro.kg.adjacency import CSRAdjacency, sample_fixed_neighbors
from repro.kg.ckg import CollaborativeKnowledgeGraph, build_ckg
from repro.kg.graph_analysis import (
    connectivity_summary,
    hop_reachability,
    item_distance_histogram,
    to_networkx,
)
from repro.kg.multi import MultiFacilityIndex, build_cross_facility_ckg
from repro.kg.paths import RelationPath, explain_recommendation, find_paths
from repro.kg.prepared import PreparedGraph
from repro.kg.stats import CKGStats, compute_stats
from repro.kg.subgraphs import KnowledgeSources, build_iag, build_uig, build_uug
from repro.kg.triples import RelationRegistry, TripleStore

__all__ = [
    "RelationRegistry",
    "TripleStore",
    "KnowledgeSources",
    "build_uig",
    "build_uug",
    "build_iag",
    "CollaborativeKnowledgeGraph",
    "build_ckg",
    "CSRAdjacency",
    "PreparedGraph",
    "sample_fixed_neighbors",
    "CKGStats",
    "compute_stats",
    "MultiFacilityIndex",
    "build_cross_facility_ckg",
    "RelationPath",
    "find_paths",
    "explain_recommendation",
    "to_networkx",
    "connectivity_summary",
    "hop_reachability",
    "item_distance_histogram",
]
