"""CSR edge layout and neighbor sampling for graph models.

CKAT's propagation layer needs, for every entity, the set of triples in
which it is the head (``N_h`` in Eq. 3).  :class:`CSRAdjacency` sorts the
edge arrays by head once and exposes ``offsets`` delimiting each head's
contiguous segment — exactly the layout
:func:`repro.autograd.functional.segment_softmax` consumes, so attention
normalization is two ``reduceat`` calls instead of a Python loop.

KGCN and RippleNet instead sample *fixed-size* neighborhoods;
:func:`sample_fixed_neighbors` materializes an (num_entities, k) neighbor
table with replacement, padding isolated entities with a self-loop
sentinel.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.kg.triples import TripleStore
from repro.utils.rng import ensure_rng

__all__ = ["CSRAdjacency", "sample_fixed_neighbors"]


class CSRAdjacency:
    """Edges sorted by head entity with per-head segment offsets.

    Attributes
    ----------
    heads, rels, tails:
        int64 edge arrays sorted by ``heads`` (stable, so relative edge
        order within a head is deterministic).
    offsets:
        int64 array of length ``num_entities + 1``; the edges of entity
        ``h`` are ``slice(offsets[h], offsets[h+1])``.
    """

    def __init__(self, store: TripleStore):
        order = np.argsort(store.heads, kind="stable")
        self._init_from_sorted(
            store.heads[order],
            store.rels[order],
            store.tails[order],
            store.num_entities,
            store.num_relations,
        )

    def _init_from_sorted(self, heads, rels, tails, num_entities, num_relations) -> None:
        self.heads = heads
        self.rels = rels
        self.tails = tails
        self.num_entities = num_entities
        self.num_relations = num_relations
        counts = np.bincount(self.heads, minlength=self.num_entities)
        self.offsets = np.zeros(self.num_entities + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        # Per-edge head index replicated for segment ops that need it.
        self.edge_head = self.heads  # alias; already sorted by head
        self._relation_groups: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def from_arrays(
        cls,
        heads: np.ndarray,
        rels: np.ndarray,
        tails: np.ndarray,
        num_entities: int,
        num_relations: int,
        relation_groups: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "CSRAdjacency":
        """Rehydrate an adjacency from already-head-sorted edge arrays.

        This is the artifact-store load path: the arrays come straight from
        a :class:`~repro.store.ArtifactStore` memory map, so construction
        must not re-sort (the stored order *is* the canonical order — a
        re-sort could only agree, and would force a copy of every page).
        ``relation_groups`` optionally pre-seeds the
        :meth:`relation_edge_groups` cache with stored arrays.
        """
        if not (len(heads) == len(rels) == len(tails)):
            raise ValueError("edge arrays must have equal length")
        if len(heads) and np.any(np.diff(heads) < 0):
            raise ValueError("heads must be sorted ascending")
        self = cls.__new__(cls)
        self._init_from_sorted(heads, rels, tails, int(num_entities), int(num_relations))
        if relation_groups is not None:
            order, bounds = relation_groups
            self._relation_groups = (order, bounds)
        return self

    @property
    def num_edges(self) -> int:
        return len(self.heads)

    def degree(self) -> np.ndarray:
        """Out-degree per entity."""
        return np.diff(self.offsets)

    def neighbors_of(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """(relations, tails) of the triples headed at ``entity``."""
        lo, hi = self.offsets[entity], self.offsets[entity + 1]
        return self.rels[lo:hi], self.tails[lo:hi]

    def relation_edge_groups(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edge indices grouped by relation.

        Returns ``(order, bounds)`` where ``order`` permutes edges so equal
        relations are contiguous and ``bounds`` (length num_relations+1)
        delimits each relation's block.  CKAT applies the per-relation
        transform ``W_r`` with one batched matmul per relation using this
        grouping.

        The grouping is a pure function of the edge arrays (stable argsort),
        so it is deterministic across processes and cached after the first
        call — every consumer of a shared adjacency sees the same arrays.
        """
        if self._relation_groups is None:
            order = np.argsort(self.rels, kind="stable")
            counts = np.bincount(self.rels, minlength=self.num_relations)
            bounds = np.zeros(self.num_relations + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            self._relation_groups = (order, bounds)
        return self._relation_groups


def sample_fixed_neighbors(
    store: Union[TripleStore, CSRAdjacency],
    k: int,
    seed=0,
    num_entities: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a fixed-size neighbor table (KGCN receptive fields).

    For every entity, draw ``k`` of its outgoing triples with replacement
    (uniformly).  Entities with no outgoing triples get self-loops with
    relation 0 — a benign sentinel: their aggregated neighborhood then
    equals their own embedding.

    ``store`` may be a raw :class:`~repro.kg.triples.TripleStore` or an
    already-built :class:`CSRAdjacency` (the shared-graph path: a
    :class:`~repro.kg.prepared.PreparedGraph` hands the same adjacency to
    every consumer instead of each rebuilding it).  Both spellings draw the
    same table for the same seed, because sampling only consumes the sorted
    edge layout.

    Returns
    -------
    neighbor_entities, neighbor_relations:
        int64 arrays of shape (num_entities, k).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    rng = ensure_rng(seed)
    adj = store if isinstance(store, CSRAdjacency) else CSRAdjacency(store)
    n = num_entities if num_entities is not None else adj.num_entities
    degrees = adj.degree()
    neighbor_entities = np.tile(np.arange(n, dtype=np.int64)[:, None], (1, k))
    neighbor_relations = np.zeros((n, k), dtype=np.int64)
    connected = np.flatnonzero(degrees > 0)
    if connected.size:
        # Vectorized sampling: random position within each entity's segment.
        pos = rng.random((connected.size, k))
        starts = adj.offsets[connected][:, None]
        widths = degrees[connected][:, None]
        edge_idx = (starts + (pos * widths).astype(np.int64)).clip(max=adj.num_edges - 1)
        neighbor_entities[connected] = adj.tails[edge_idx]
        neighbor_relations[connected] = adj.rels[edge_idx]
    return neighbor_entities, neighbor_relations
