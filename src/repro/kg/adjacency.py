"""CSR edge layout and neighbor sampling for graph models.

CKAT's propagation layer needs, for every entity, the set of triples in
which it is the head (``N_h`` in Eq. 3).  :class:`CSRAdjacency` sorts the
edge arrays by head once and exposes ``offsets`` delimiting each head's
contiguous segment — exactly the layout
:func:`repro.autograd.functional.segment_softmax` consumes, so attention
normalization is two ``reduceat`` calls instead of a Python loop.

KGCN and RippleNet instead sample *fixed-size* neighborhoods;
:func:`sample_fixed_neighbors` materializes an (num_entities, k) neighbor
table with replacement, padding isolated entities with a self-loop
sentinel.
"""

from __future__ import annotations

from typing import Callable, Iterable, NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.kg.triples import TripleStore
from repro.utils.rng import ensure_rng

__all__ = ["AttentionGradGroups", "CSRAdjacency", "sample_fixed_neighbors"]


class AttentionGradGroups(NamedTuple):
    """Cached segment-reduction structure for the fused attention backward.

    All indices refer to **relation-grouped** edge order (the order the
    fused kernels compute in).  ``head_offsets``/``head_rows`` delimit and
    name the runs of equal heads (contiguous by construction: the relation
    grouping is a stable sort of the CSR head-sorted edges);
    ``tail_perm``/``tail_offsets``/``tail_rows`` are the mirrored structure
    for tails, via a within-group stable sort.  ``head_bounds``/
    ``tail_bounds`` (length ``num_relations + 1``) slice the runs per
    relation.  ``perm``/``offsets``/``rows`` coalesce the concatenated
    ``(head_rows, tail_rows)`` partials to the sorted unique touched
    entities.
    """

    head_offsets: np.ndarray
    head_rows: np.ndarray
    head_bounds: np.ndarray
    tail_perm: np.ndarray
    tail_offsets: np.ndarray
    tail_rows: np.ndarray
    tail_bounds: np.ndarray
    perm: np.ndarray
    offsets: np.ndarray
    rows: np.ndarray


class CSRAdjacency:
    """Edges sorted by head entity with per-head segment offsets.

    Attributes
    ----------
    heads, rels, tails:
        int64 edge arrays sorted by ``heads`` (stable, so relative edge
        order within a head is deterministic).
    offsets:
        int64 array of length ``num_entities + 1``; the edges of entity
        ``h`` are ``slice(offsets[h], offsets[h+1])``.
    """

    def __init__(self, store: TripleStore):
        order = np.argsort(store.heads, kind="stable")
        self._init_from_sorted(
            store.heads[order],
            store.rels[order],
            store.tails[order],
            store.num_entities,
            store.num_relations,
        )

    def _init_from_sorted(self, heads, rels, tails, num_entities, num_relations) -> None:
        self.heads = heads
        self.rels = rels
        self.tails = tails
        self.num_entities = num_entities
        self.num_relations = num_relations
        counts = np.bincount(self.heads, minlength=self.num_entities)
        self.offsets = np.zeros(self.num_entities + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        # Per-edge head index replicated for segment ops that need it.
        self.edge_head = self.heads  # alias; already sorted by head
        self._relation_groups: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._relation_scatter: Optional[np.ndarray] = None
        self._relation_endpoints: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._incoming_groups: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._attention_grad_groups: Optional[AttentionGradGroups] = None

    @classmethod
    def from_arrays(
        cls,
        heads: np.ndarray,
        rels: np.ndarray,
        tails: np.ndarray,
        num_entities: int,
        num_relations: int,
        relation_groups: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "CSRAdjacency":
        """Rehydrate an adjacency from already-head-sorted edge arrays.

        This is the artifact-store load path: the arrays come straight from
        a :class:`~repro.store.ArtifactStore` memory map, so construction
        must not re-sort (the stored order *is* the canonical order — a
        re-sort could only agree, and would force a copy of every page).
        ``relation_groups`` optionally pre-seeds the
        :meth:`relation_edge_groups` cache with stored arrays.
        """
        if not (len(heads) == len(rels) == len(tails)):
            raise ValueError("edge arrays must have equal length")
        if len(heads) and np.any(np.diff(heads) < 0):
            raise ValueError("heads must be sorted ascending")
        self = cls.__new__(cls)
        self._init_from_sorted(heads, rels, tails, int(num_entities), int(num_relations))
        if relation_groups is not None:
            order, bounds = relation_groups
            self._relation_groups = (order, bounds)
        return self

    @classmethod
    def from_edge_chunks(
        cls,
        chunks: Callable[[], Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]]],
        num_entities: int,
        num_relations: int,
    ) -> "CSRAdjacency":
        """Two-pass (count, then fill) CSR construction from edge chunks.

        ``chunks`` is a callable returning a *fresh* iterator of equal-length
        ``(heads, rels, tails)`` arrays; it is consumed twice and must yield
        the same edges both times.  Pass one accumulates per-head degree
        counts into the offset table; pass two stable-sorts each chunk by
        head and writes its runs at per-head cursors.  Scratch memory is one
        chunk plus the degree vector — never the concatenated edge list plus
        its argsort, which is what ``CSRAdjacency(store)`` allocates.

        Bit-identical to ``CSRAdjacency`` built from the concatenated
        chunks: a stable sort keeps equal heads in input order, and the
        cursors append each chunk's runs in chunk order, which is the same
        order.
        """
        num_entities = int(num_entities)
        num_relations = int(num_relations)
        counts = np.zeros(num_entities, dtype=np.int64)
        total = 0
        for h, r, t in chunks():
            h = np.asarray(h, dtype=np.int64)
            if not (len(h) == len(r) == len(t)):
                raise ValueError("edge chunk arrays must have equal length")
            if len(h):
                if h.min() < 0 or h.max() >= num_entities:
                    raise ValueError("head entity id out of range")
                counts += np.bincount(h, minlength=num_entities)
                total += len(h)
        offsets = np.zeros(num_entities + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        heads = np.empty(total, dtype=np.int64)
        rels = np.empty(total, dtype=np.int64)
        tails = np.empty(total, dtype=np.int64)
        cursor = offsets[:-1].copy()
        filled = 0
        for h, r, t in chunks():
            h = np.asarray(h, dtype=np.int64)
            r = np.asarray(r, dtype=np.int64)
            t = np.asarray(t, dtype=np.int64)
            if len(h) == 0:
                continue
            if len(t) and (t.min() < 0 or t.max() >= num_entities):
                raise ValueError("tail entity id out of range")
            if len(r) and (r.min() < 0 or r.max() >= num_relations):
                raise ValueError("relation id out of range")
            order = np.argsort(h, kind="stable")
            hs = h[order]
            run_starts = np.flatnonzero(np.r_[True, hs[1:] != hs[:-1]])
            run_lens = np.diff(np.r_[run_starts, len(hs)])
            within = np.arange(len(hs), dtype=np.int64) - np.repeat(run_starts, run_lens)
            pos = cursor[hs] + within
            heads[pos] = hs
            rels[pos] = r[order]
            tails[pos] = t[order]
            cursor[hs[run_starts]] += run_lens
            filled += len(hs)
        if filled != total:
            raise ValueError(
                f"edge chunks changed between passes: counted {total} edges, "
                f"filled {filled}"
            )
        self = cls.__new__(cls)
        self._init_from_sorted(heads, rels, tails, num_entities, num_relations)
        return self

    @property
    def num_edges(self) -> int:
        return len(self.heads)

    def degree(self) -> np.ndarray:
        """Out-degree per entity."""
        return np.diff(self.offsets)

    def neighbors_of(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """(relations, tails) of the triples headed at ``entity``."""
        lo, hi = self.offsets[entity], self.offsets[entity + 1]
        return self.rels[lo:hi], self.tails[lo:hi]

    def relation_edge_groups(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edge indices grouped by relation.

        Returns ``(order, bounds)`` where ``order`` permutes edges so equal
        relations are contiguous and ``bounds`` (length num_relations+1)
        delimits each relation's block.  CKAT applies the per-relation
        transform ``W_r`` with one batched matmul per relation using this
        grouping.

        The grouping is a pure function of the edge arrays (stable argsort),
        so it is deterministic across processes and cached after the first
        call — every consumer of a shared adjacency sees the same arrays.
        """
        if self._relation_groups is None:
            order = np.argsort(self.rels, kind="stable")
            counts = np.bincount(self.rels, minlength=self.num_relations)
            bounds = np.zeros(self.num_relations + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            self._relation_groups = (order, bounds)
        return self._relation_groups

    def relation_scatter_index(self) -> np.ndarray:
        """Inverse of the :meth:`relation_edge_groups` permutation.

        ``inverse[order] == arange(num_edges)``: a vector computed in
        relation-grouped order scatters back to head-sorted edge order with
        one fancy index.  The graph is static across training, so this O(E)
        array is derived once and cached (it used to be rebuilt on every
        attention forward).
        """
        if self._relation_scatter is None:
            order, _ = self.relation_edge_groups()
            inverse = np.empty(self.num_edges, dtype=np.int64)
            inverse[order] = np.arange(self.num_edges, dtype=np.int64)
            self._relation_scatter = inverse
        return self._relation_scatter

    def relation_edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(heads, tails)`` gathered into relation-grouped order, cached.

        The fused attention kernel indexes the embedding table with these on
        every forward; materializing the two int64 gathers once trades O(E)
        memory for an O(E) fancy-index per call.
        """
        if self._relation_endpoints is None:
            order, _ = self.relation_edge_groups()
            self._relation_endpoints = (self.heads[order], self.tails[order])
        return self._relation_endpoints

    def incoming_edge_groups(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Edge indices grouped by *tail* entity (the transpose layout).

        Returns ``(order, offsets, heads, tails)``: ``order`` permutes edges
        so equal tails are contiguous (stable, so relative edge order within
        a tail is deterministic), ``offsets`` (length num_entities+1)
        delimits each tail's block, and ``heads``/``tails`` are
        ``self.heads[order]``/``self.tails[order]`` — the gather indices the
        transposed reductions read from.  Propagation backward scatters edge
        messages into tail rows; with this layout the scatter becomes a
        contiguous segment reduction, mirroring how ``offsets`` serves the
        forward direction, and the fused backward reads both endpoint
        gathers in one pass.
        """
        if self._incoming_groups is None:
            order = np.argsort(self.tails, kind="stable")
            counts = np.bincount(self.tails, minlength=self.num_entities)
            offsets = np.zeros(self.num_entities + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            self._incoming_groups = (
                order,
                offsets,
                self.heads[order],
                self.tails[order],
            )
        return self._incoming_groups

    def warm_kernel_caches(self) -> "CSRAdjacency":
        """Materialize every derived layout the fused kernels read.

        All five caches are pure functions of the edge arrays; warming them
        at graph-preparation time moves the one-off argsorts out of the
        first training step and lets every consumer of a shared adjacency
        hit the same arrays.  Returns ``self`` for chaining.
        """
        self.relation_edge_groups()
        self.relation_scatter_index()
        self.relation_edge_endpoints()
        self.incoming_edge_groups()
        self.attention_grad_groups()
        return self

    def attention_grad_groups(self) -> "AttentionGradGroups":
        """Static reduction structure for the fused attention backward, cached.

        The backward's entity/projection gradients factor through per-
        ``(entity, relation)`` sums of the ``(E, k)`` score gradients — the
        projection ``W_r`` is constant within a relation group, so summing
        *before* the ``@ W_r`` matmul shrinks it from E edge rows to one row
        per touched (entity, relation) pair (see DESIGN.md §10).  Everything
        needed for those segment reductions is a pure function of the edge
        arrays, derived once here:

        - **head runs**: within each relation group the edges keep CSR
          (head-sorted) order, so equal heads are already contiguous;
          ``head_offsets`` delimits the runs in relation-grouped edge order,
          ``head_rows`` names each run's entity and ``head_bounds`` slices
          the runs per relation.
        - **tail runs**: the mirrored structure for tails, via ``tail_perm``
          (a within-group stable sort by tail, so the reduction order is
          deterministic).
        - **coalesce**: ``perm``/``offsets`` over ``concat(head_rows,
          tail_rows)`` fold the per-(entity, relation) partials down to
          ``rows`` — the sorted unique touched entities, the exact row set
          the per-op oracle's sparse gradient touches.
        """
        if self._attention_grad_groups is None:
            heads_r, tails_r = self.relation_edge_endpoints()
            _, bounds = self.relation_edge_groups()
            num_rel = self.num_relations
            empty = np.zeros(0, dtype=np.int64)
            if heads_r.size == 0:
                zero = np.zeros(1, dtype=np.int64)
                self._attention_grad_groups = AttentionGradGroups(
                    head_offsets=zero,
                    head_rows=empty,
                    head_bounds=np.zeros(num_rel + 1, dtype=np.int64),
                    tail_perm=empty,
                    tail_offsets=zero,
                    tail_rows=empty,
                    tail_bounds=np.zeros(num_rel + 1, dtype=np.int64),
                    perm=empty,
                    offsets=zero,
                    rows=empty,
                )
                return self._attention_grad_groups
            h_starts, h_rows, h_counts = [], [], np.zeros(num_rel, dtype=np.int64)
            t_starts, t_rows, t_counts = [], [], np.zeros(num_rel, dtype=np.int64)
            tail_perm = np.empty(heads_r.size, dtype=np.int64)
            for r in range(num_rel):
                lo, hi = int(bounds[r]), int(bounds[r + 1])
                if hi == lo:
                    continue
                h = heads_r[lo:hi]
                s = np.flatnonzero(np.r_[True, h[1:] != h[:-1]])
                h_starts.append(s + lo)
                h_rows.append(h[s])
                h_counts[r] = len(s)
                t = tails_r[lo:hi]
                p = np.argsort(t, kind="stable")
                tail_perm[lo:hi] = p + lo
                ts = t[p]
                s2 = np.flatnonzero(np.r_[True, ts[1:] != ts[:-1]])
                t_starts.append(s2 + lo)
                t_rows.append(ts[s2])
                t_counts[r] = len(s2)
            head_rows = np.concatenate(h_rows).astype(np.int64)
            tail_rows = np.concatenate(t_rows).astype(np.int64)
            head_bounds = np.zeros(num_rel + 1, dtype=np.int64)
            np.cumsum(h_counts, out=head_bounds[1:])
            tail_bounds = np.zeros(num_rel + 1, dtype=np.int64)
            np.cumsum(t_counts, out=tail_bounds[1:])
            partial_rows = np.concatenate([head_rows, tail_rows])
            perm = np.argsort(partial_rows, kind="stable")
            sorted_rows = partial_rows[perm]
            starts = np.flatnonzero(np.r_[True, sorted_rows[1:] != sorted_rows[:-1]])
            self._attention_grad_groups = AttentionGradGroups(
                head_offsets=np.r_[np.concatenate(h_starts), heads_r.size].astype(
                    np.int64
                ),
                head_rows=head_rows,
                head_bounds=head_bounds,
                tail_perm=tail_perm,
                tail_offsets=np.r_[np.concatenate(t_starts), tails_r.size].astype(
                    np.int64
                ),
                tail_rows=tail_rows,
                tail_bounds=tail_bounds,
                perm=perm,
                offsets=np.r_[starts, partial_rows.size].astype(np.int64),
                rows=sorted_rows[starts],
            )
        return self._attention_grad_groups


def sample_fixed_neighbors(
    store: Union[TripleStore, CSRAdjacency],
    k: int,
    seed=0,
    num_entities: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a fixed-size neighbor table (KGCN receptive fields).

    For every entity, draw ``k`` of its outgoing triples with replacement
    (uniformly).  Entities with no outgoing triples get self-loops with
    relation 0 — a benign sentinel: their aggregated neighborhood then
    equals their own embedding.

    ``store`` may be a raw :class:`~repro.kg.triples.TripleStore` or an
    already-built :class:`CSRAdjacency` (the shared-graph path: a
    :class:`~repro.kg.prepared.PreparedGraph` hands the same adjacency to
    every consumer instead of each rebuilding it).  Both spellings draw the
    same table for the same seed, because sampling only consumes the sorted
    edge layout.

    Returns
    -------
    neighbor_entities, neighbor_relations:
        int64 arrays of shape (num_entities, k).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    rng = ensure_rng(seed)
    adj = store if isinstance(store, CSRAdjacency) else CSRAdjacency(store)
    n = num_entities if num_entities is not None else adj.num_entities
    degrees = adj.degree()
    neighbor_entities = np.tile(np.arange(n, dtype=np.int64)[:, None], (1, k))
    neighbor_relations = np.zeros((n, k), dtype=np.int64)
    connected = np.flatnonzero(degrees > 0)
    if connected.size:
        # Vectorized sampling: random position within each entity's segment.
        pos = rng.random((connected.size, k))
        starts = adj.offsets[connected][:, None]
        widths = degrees[connected][:, None]
        edge_idx = (starts + (pos * widths).astype(np.int64)).clip(max=adj.num_edges - 1)
        neighbor_entities[connected] = adj.tails[edge_idx]
        neighbor_relations[connected] = adj.rels[edge_idx]
    return neighbor_entities, neighbor_relations
