"""Structural analysis of the collaborative knowledge graph (networkx bridge).

Section II-C argues that "capturing high-order connectivity is essential":
related data objects can sit several hops apart in the CKG.  This module
quantifies that claim on our graphs:

- :func:`to_networkx` — export the CKG as a ``networkx.MultiDiGraph`` for
  ad-hoc analysis;
- :func:`connectivity_summary` — connected components, degree statistics,
  and the entity-block mix;
- :func:`hop_reachability` — how many items a user can reach within k hops
  (the quantity that decides whether depth-L propagation has anything to
  propagate);
- :func:`item_distance_histogram` — pairwise item BFS distances, the
  direct measurement behind "two related data objects may be far from each
  other in the graph".
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import networkx as nx
import numpy as np

from repro.kg.adjacency import CSRAdjacency
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "to_networkx",
    "connectivity_summary",
    "hop_reachability",
    "item_distance_histogram",
]


def to_networkx(ckg: CollaborativeKnowledgeGraph, use_inverses: bool = False) -> nx.MultiDiGraph:
    """Export the CKG as a ``networkx.MultiDiGraph``.

    Nodes carry a ``block`` attribute (user/item/site/…); edges carry
    ``relation`` names.  ``use_inverses`` exports the propagation store
    (both edge directions) instead of the canonical triples.
    """
    store = ckg.propagation_store if use_inverses else ckg.store
    graph = nx.MultiDiGraph()
    for block in ckg.space.block_names:
        offset, size = ckg.space.block(block)
        graph.add_nodes_from(
            ((offset + i, {"block": block}) for i in range(size))
        )
    names = store.relations
    for h, r, t in zip(store.heads, store.rels, store.tails):
        graph.add_edge(int(h), int(t), relation=names.name_of(int(r)))
    return graph


def connectivity_summary(ckg: CollaborativeKnowledgeGraph) -> Dict[str, float]:
    """Key structural statistics of the undirected CKG."""
    graph = nx.Graph()
    graph.add_nodes_from(range(ckg.num_entities))
    graph.add_edges_from(zip(ckg.store.heads.tolist(), ckg.store.tails.tolist()))
    components = list(nx.connected_components(graph))
    giant = max(components, key=len) if components else set()
    degrees = np.array([d for _, d in graph.degree()], dtype=np.float64)
    return {
        "num_nodes": float(graph.number_of_nodes()),
        "num_edges": float(graph.number_of_edges()),
        "num_components": float(len(components)),
        "giant_component_fraction": len(giant) / max(graph.number_of_nodes(), 1),
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
        "max_degree": float(degrees.max()) if degrees.size else 0.0,
        "isolated_nodes": float((degrees == 0).sum()),
    }


def hop_reachability(
    ckg: CollaborativeKnowledgeGraph,
    users: Optional[Sequence[int]] = None,
    max_hops: int = 3,
    sample: int = 50,
    seed=0,
) -> Dict[int, float]:
    """Mean fraction of the item catalog reachable from a user within k hops.

    For each hop count k = 1..max_hops, BFS over the inverse-augmented graph
    from (a sample of) user entities and measure what share of items lies
    within distance k.  Depth-L propagation can only carry signal between a
    user and the items inside this frontier — the paper's justification for
    stacking layers, quantified.
    """
    if max_hops <= 0:
        raise ValueError(f"max_hops must be positive, got {max_hops}")
    rng = ensure_rng(seed)
    adj = CSRAdjacency(ckg.propagation_store)
    user_entities = ckg.all_user_entities()
    if users is not None:
        starts = ckg.user_entity_ids(np.asarray(users, dtype=np.int64))
    elif len(user_entities) > sample:
        starts = rng.choice(user_entities, size=sample, replace=False)
    else:
        starts = user_entities
    item_off, item_size = ckg.space.block("item")
    fractions = {k: [] for k in range(1, max_hops + 1)}
    for start in starts:
        distances = _bfs_distances(adj, int(start), max_hops)
        for k in range(1, max_hops + 1):
            in_k = np.flatnonzero((distances >= 0) & (distances <= k))
            items_in_k = ((in_k >= item_off) & (in_k < item_off + item_size)).sum()
            fractions[k].append(items_in_k / max(item_size, 1))
    return {k: float(np.mean(v)) for k, v in fractions.items()}


def item_distance_histogram(
    ckg: CollaborativeKnowledgeGraph,
    num_pairs: int = 200,
    max_hops: int = 6,
    seed=0,
) -> Dict[str, float]:
    """BFS distance distribution between random item pairs.

    Returns mean/median distance over connected pairs plus the fraction of
    pairs farther than 2 hops — items that first-order methods cannot relate
    but depth-3 propagation can.
    """
    if num_pairs <= 0:
        raise ValueError(f"num_pairs must be positive, got {num_pairs}")
    rng = ensure_rng(seed)
    adj = CSRAdjacency(ckg.propagation_store)
    items = ckg.all_item_entities()
    distances = []
    for _ in range(num_pairs):
        a, b = rng.choice(items, size=2, replace=False)
        d = _bfs_distances(adj, int(a), max_hops)
        db = d[int(b)]
        distances.append(int(db) if db >= 0 else max_hops + 1)
    arr = np.array(distances, dtype=np.float64)
    connected = arr[arr <= max_hops]
    return {
        "mean_distance": float(connected.mean()) if connected.size else float("inf"),
        "median_distance": float(np.median(connected)) if connected.size else float("inf"),
        "fraction_beyond_2_hops": float((arr > 2).mean()),
        "fraction_unreachable": float((arr > max_hops).mean()),
    }


def _bfs_distances(adj: CSRAdjacency, start: int, max_hops: int) -> np.ndarray:
    """Vectorized frontier BFS; -1 marks nodes beyond ``max_hops``."""
    distances = np.full(adj.num_entities, -1, dtype=np.int64)
    distances[start] = 0
    frontier = np.array([start], dtype=np.int64)
    for depth in range(1, max_hops + 1):
        if frontier.size == 0:
            break
        # Gather all neighbors of the frontier in one slice-concatenate.
        spans = [
            adj.tails[adj.offsets[v] : adj.offsets[v + 1]] for v in frontier
        ]
        neighbors = np.unique(np.concatenate(spans)) if spans else np.zeros(0, dtype=np.int64)
        fresh = neighbors[distances[neighbors] < 0]
        distances[fresh] = depth
        frontier = fresh
    return distances
