"""CKG statistics — the quantities of the paper's Table I.

Table I reports, per facility: ``# entities``, ``# relationships``,
``# KG triplets`` and ``link-avg`` (average links per item).  We compute the
same over our synthetic CKGs so the Table-I bench can print paper-vs-measured
rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.subgraphs import INTERACT
from repro.utils.tables import TextTable

__all__ = ["CKGStats", "compute_stats", "PAPER_TABLE1", "render_table1"]

# The published Table I values for reference printing.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "OOI": {"entities": 1342, "relationships": 8, "kg_triples": 5554, "link_avg": 6},
    "GAGE": {"entities": 4754, "relationships": 7, "kg_triples": 20314, "link_avg": 10},
}


@dataclasses.dataclass(frozen=True)
class CKGStats:
    """Structural statistics of one collaborative knowledge graph."""

    entities: int
    relationships: int
    kg_triples: int
    interaction_triples: int
    total_triples: int
    link_avg: float
    per_relation: Dict[str, int]

    def row(self) -> list:
        """Values in Table-I column order."""
        return [self.entities, self.relationships, self.kg_triples, round(self.link_avg, 1)]


def compute_stats(ckg: CollaborativeKnowledgeGraph) -> CKGStats:
    """Compute Table-I statistics for ``ckg``.

    ``kg_triples`` counts canonical knowledge triples (IAG); ``link_avg`` is
    the average number of knowledge links incident to an item — heads *or*
    tails, since attribute triples touch items from the head side only.
    """
    counts = ckg.store.relation_counts()
    kg_triples = sum(c for name, c in counts.items() if name != INTERACT)
    interaction = counts.get(INTERACT, 0)
    item_off, item_size = ckg.space.block("item")
    is_item_head = (ckg.store.heads >= item_off) & (ckg.store.heads < item_off + item_size)
    is_item_tail = (ckg.store.tails >= item_off) & (ckg.store.tails < item_off + item_size)
    not_interact = ckg.store.rels != (
        ckg.store.relations.id_of(INTERACT) if INTERACT in ckg.store.relations else -1
    )
    item_links = int(((is_item_head | is_item_tail) & not_interact).sum())
    link_avg = item_links / item_size if item_size else 0.0
    return CKGStats(
        entities=ckg.num_entities,
        relationships=ckg.num_relations,
        kg_triples=kg_triples,
        interaction_triples=interaction,
        total_triples=len(ckg.store),
        link_avg=link_avg,
        per_relation={k: int(v) for k, v in counts.items()},
    )


def render_table1(ooi_stats: CKGStats, gage_stats: CKGStats) -> str:
    """Render the Table-I comparison (paper vs measured) as text."""
    table = TextTable(
        ["statistic", "OOI paper", "OOI measured", "GAGE paper", "GAGE measured"],
        title="Table I: CKG statistics (paper vs this reproduction)",
        float_digits=1,
    )
    rows = [
        ("# entities", "entities"),
        ("# relationships", "relationships"),
        ("# KG triplets", "kg_triples"),
        ("# link-avg", "link_avg"),
    ]
    for label, attr in rows:
        table.add_row(
            [
                label,
                PAPER_TABLE1["OOI"][attr if attr != "link_avg" else "link_avg"],
                getattr(ooi_stats, attr),
                PAPER_TABLE1["GAGE"][attr if attr != "link_avg" else "link_avg"],
                getattr(gage_stats, attr),
            ]
        )
    return table.render()
