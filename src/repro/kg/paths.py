"""High-order connectivity paths and recommendation explanations.

The paper's Fig. 1 and Section II-C motivate the whole design with
*connectivity paths*: two data objects relate through chains like

    Object#1 —dataType→ Pressure —dataDiscipline→ Physical
            ←dataDiscipline— Density ←dataType— Object#2

and CKAT's propagation embeds exactly these paths.  This module makes them
first-class: :func:`find_paths` enumerates bounded-length relation paths
between any two entities of a CKG, and :func:`explain_recommendation`
renders the shortest user→item paths as human-readable strings — the
"why was this recommended" surface a facility data portal would show.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.kg.adjacency import CSRAdjacency
from repro.kg.ckg import CollaborativeKnowledgeGraph

__all__ = ["RelationPath", "find_paths", "explain_recommendation", "entity_label"]


@dataclasses.dataclass(frozen=True)
class RelationPath:
    """One path: entities e0 —r0→ e1 —r1→ … —r(k-1)→ ek."""

    entities: Tuple[int, ...]
    relations: Tuple[int, ...]

    def __post_init__(self):
        if len(self.entities) != len(self.relations) + 1:
            raise ValueError("a path over k relations visits k+1 entities")

    @property
    def length(self) -> int:
        return len(self.relations)

    def render(self, ckg: CollaborativeKnowledgeGraph) -> str:
        """Human-readable rendering using block-aware entity labels."""
        names = ckg.propagation_store.relations
        parts = [entity_label(ckg, self.entities[0])]
        for rel, ent in zip(self.relations, self.entities[1:]):
            parts.append(f"—{names.name_of(int(rel))}→ {entity_label(ckg, ent)}")
        return " ".join(parts)


def entity_label(ckg: CollaborativeKnowledgeGraph, entity: int) -> str:
    """Label a global entity id by its block and local index, e.g. ``item#12``."""
    block = ckg.space.owner_of(int(entity))
    offset, _ = ckg.space.block(block)
    return f"{block}#{int(entity) - offset}"


def find_paths(
    ckg: CollaborativeKnowledgeGraph,
    source: int,
    target: int,
    max_length: int = 3,
    max_paths: int = 10,
    adjacency: Optional[CSRAdjacency] = None,
) -> List[RelationPath]:
    """Enumerate simple paths from ``source`` to ``target`` up to ``max_length``.

    Breadth-first over the inverse-augmented propagation graph (so paths may
    traverse any edge in either direction, exactly like CKAT messages).
    Paths are simple (no repeated entity) and returned shortest-first, at
    most ``max_paths`` of them.

    Complexity is bounded by the branching factor; for explanation use
    (max_length ≤ 3–4) this is interactive even on the GAGE-scale CKG.
    """
    if max_length <= 0:
        raise ValueError(f"max_length must be positive, got {max_length}")
    if max_paths <= 0:
        raise ValueError(f"max_paths must be positive, got {max_paths}")
    n = ckg.num_entities
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("source/target entity out of range")
    adj = adjacency if adjacency is not None else CSRAdjacency(ckg.propagation_store)
    found: List[RelationPath] = []
    # BFS layer by layer so results come shortest-first.
    frontier: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [((source,), ())]
    for _depth in range(max_length):
        next_frontier: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        for entities, relations in frontier:
            head = entities[-1]
            rels, tails = adj.neighbors_of(int(head))
            for r, t in zip(rels, tails):
                if int(t) in entities:
                    continue  # keep paths simple
                path_e = entities + (int(t),)
                path_r = relations + (int(r),)
                if int(t) == target:
                    found.append(RelationPath(path_e, path_r))
                    if len(found) >= max_paths:
                        return found
                else:
                    next_frontier.append((path_e, path_r))
        # Bound frontier growth: keep a deterministic prefix.  Explanations
        # need a handful of short paths, not exhaustive enumeration.
        if len(next_frontier) > 20_000:
            next_frontier = next_frontier[:20_000]
        frontier = next_frontier
    return found


def explain_recommendation(
    ckg: CollaborativeKnowledgeGraph,
    user: int,
    item: int,
    max_length: int = 3,
    max_paths: int = 5,
    adjacency: Optional[CSRAdjacency] = None,
) -> List[str]:
    """Render the shortest CKG paths connecting ``user`` to ``item``.

    Returns human-readable strings like::

        user#3 —interact→ item#17 —hasDataType→ dtype#4 —inv_hasDataType→ item#52

    An empty list means the pair is not connected within ``max_length`` hops
    — such a recommendation rests purely on embedding geometry, which is
    itself useful to surface.
    """
    source = int(ckg.user_entity_ids(np.array([user]))[0])
    target = int(ckg.item_entity_ids(np.array([item]))[0])
    paths = find_paths(
        ckg, source, target, max_length=max_length, max_paths=max_paths, adjacency=adjacency
    )
    return [p.render(ckg) for p in paths]
