"""The shared graph runtime: one :class:`PreparedGraph` per CKG.

Every KG-aware model used to privately re-derive the same structures from
the CKG at construction time — CKAT a :class:`~repro.kg.adjacency.CSRAdjacency`
over the inverse-augmented store, KGCN and RippleNet another one over the
knowledge-only (``interact``-free) subset, CKE a filtered canonical triple
store.  :class:`PreparedGraph` derives each of them once, so

- a table harness training eight models over one dataset builds the
  adjacency once instead of five times;
- the artifact pipeline (:mod:`repro.pipeline`) can persist the derived
  arrays and memory-map them into worker processes, skipping the derivation
  entirely on a warm cache.

Derivations are lazy: a model that only needs the propagation adjacency
never pays for the ripple-side structures.  All derivations are pure,
deterministic functions of the CKG's triple arrays, so an injected graph is
bit-identical to the one a model would have built for itself — the property
``tests/test_prepared_graph.py`` locks down.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kg.adjacency import CSRAdjacency
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.subgraphs import INTERACT
from repro.kg.triples import TripleStore

__all__ = ["PreparedGraph"]

#: Bumped whenever the serialized array layout changes (see DESIGN.md §9).
GRAPH_SCHEMA_VERSION = 1


def _knowledge_filter(store: TripleStore) -> TripleStore:
    """The non-``interact`` subset every knowledge-only consumer uses."""
    return store.filter_relations([n for n in store.relations.names if n != INTERACT])


class PreparedGraph:
    """Reusable graph structures derived once from a CKG.

    Attributes (lazily derived, or rehydrated from the artifact store):

    ``propagation``
        :class:`CSRAdjacency` over the inverse-augmented propagation store —
        CKAT's message-passing layout (with its per-relation edge grouping
        pre-warmed).
    ``knowledge``
        :class:`CSRAdjacency` over the knowledge-only (no ``interact``)
        subset of the propagation store — RippleNet's ripple frontier and
        the pool KGCN samples its fixed-size neighbor tables from.
    ``canonical_kg``
        Knowledge-only subset of the *canonical* (no-inverse) store, in
        original triple order — what CKE's TransR phase samples from.
    """

    def __init__(self, ckg: Optional[CollaborativeKnowledgeGraph]):
        self._ckg = ckg
        self._propagation: Optional[CSRAdjacency] = None
        self._knowledge: Optional[CSRAdjacency] = None
        self._canonical_kg: Optional[TripleStore] = None
        if ckg is not None:
            self.num_entities = ckg.num_entities
            self.num_propagation_relations = ckg.propagation_store.num_relations

    # ------------------------------------------------------------ construction
    @classmethod
    def from_ckg(cls, ckg: CollaborativeKnowledgeGraph) -> "PreparedGraph":
        """Wrap a CKG; structures derive lazily on first access."""
        return cls(ckg)

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray], meta: dict) -> "PreparedGraph":
        """Rehydrate from artifact-store arrays (typically memory maps)."""
        self = cls(None)
        self.num_entities = int(meta["num_entities"])
        self.num_propagation_relations = int(meta["num_propagation_relations"])
        self._propagation = CSRAdjacency.from_arrays(
            arrays["prop_heads"],
            arrays["prop_rels"],
            arrays["prop_tails"],
            self.num_entities,
            self.num_propagation_relations,
            relation_groups=(arrays["prop_rel_order"], arrays["prop_rel_bounds"]),
        )
        self._propagation.warm_kernel_caches()
        self._knowledge = CSRAdjacency.from_arrays(
            arrays["know_heads"],
            arrays["know_rels"],
            arrays["know_tails"],
            self.num_entities,
            self.num_propagation_relations,
        )
        canon = TripleStore(self.num_entities)
        for name in meta["canonical_relation_names"]:
            canon.relations.add(name)
        canon.heads = np.asarray(arrays["canon_heads"])
        canon.rels = np.asarray(arrays["canon_rels"])
        canon.tails = np.asarray(arrays["canon_tails"])
        self._canonical_kg = canon
        return self

    def to_arrays(self) -> Tuple[Dict[str, np.ndarray], dict]:
        """Serialize every derived structure for the artifact store."""
        prop = self.propagation
        know = self.knowledge
        canon = self.canonical_kg
        order, bounds = prop.relation_edge_groups()
        arrays = {
            "prop_heads": prop.heads,
            "prop_rels": prop.rels,
            "prop_tails": prop.tails,
            "prop_rel_order": order,
            "prop_rel_bounds": bounds,
            "know_heads": know.heads,
            "know_rels": know.rels,
            "know_tails": know.tails,
            "canon_heads": canon.heads,
            "canon_rels": canon.rels,
            "canon_tails": canon.tails,
        }
        meta = {
            "num_entities": self.num_entities,
            "num_propagation_relations": self.num_propagation_relations,
            "canonical_relation_names": list(canon.relations.names),
        }
        return arrays, meta

    # ------------------------------------------------------------- structures
    @property
    def propagation(self) -> CSRAdjacency:
        if self._propagation is None:
            self._propagation = CSRAdjacency(self._ckg.propagation_store)
            self._propagation.warm_kernel_caches()  # warm the shared caches
        return self._propagation

    @property
    def knowledge(self) -> CSRAdjacency:
        if self._knowledge is None:
            self._knowledge = CSRAdjacency(_knowledge_filter(self._ckg.propagation_store))
        return self._knowledge

    @property
    def canonical_kg(self) -> TripleStore:
        if self._canonical_kg is None:
            self._canonical_kg = _knowledge_filter(self._ckg.store)
        return self._canonical_kg

    # -------------------------------------------------------------- validation
    def check_compatible(self, ckg: CollaborativeKnowledgeGraph) -> "PreparedGraph":
        """Guard against injecting a graph prepared for a different CKG.

        Cheap structural checks only (entity/relation counts) — content
        equality holds by construction because both sides are pure functions
        of the same build config; a size mismatch means the caller wired a
        graph from another dataset, sources combination, or schema, which
        would otherwise surface as silent index garbage deep in training.
        """
        if self.num_entities != ckg.num_entities:
            raise ValueError(
                f"PreparedGraph has {self.num_entities} entities but the CKG has "
                f"{ckg.num_entities}; it was prepared for a different graph"
            )
        if self.num_propagation_relations != ckg.propagation_store.num_relations:
            raise ValueError(
                f"PreparedGraph has {self.num_propagation_relations} propagation "
                f"relations but the CKG has {ckg.propagation_store.num_relations}; "
                "it was prepared for a different source combination"
            )
        return self

    def __repr__(self) -> str:
        parts = []
        if self._propagation is not None:
            parts.append(f"propagation={self._propagation.num_edges} edges")
        if self._knowledge is not None:
            parts.append(f"knowledge={self._knowledge.num_edges} edges")
        if self._canonical_kg is not None:
            parts.append(f"canonical_kg={len(self._canonical_kg)} triples")
        state = ", ".join(parts) if parts else "lazy"
        return f"PreparedGraph({self.num_entities} entities, {state})"
