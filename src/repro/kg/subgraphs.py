"""Builders for the three CKG subgraphs and the knowledge-source toggles.

Section IV defines:

- **UIG** (user–item bipartite graph): ``(u, interact, v)`` for every observed
  query pair — built from *training* interactions only, so the test split
  never leaks into the graph;
- **UUG** (user–user bipartite graph): ``(u_i, interact, u_j)`` for users in
  the same location (city);
- **IAG** (item–attribute KG): facility metadata triples, partitioned into
  the knowledge sources of Table III — instrument location (**LOC**),
  data-domain knowledge (**DKG**), and additional instrument metadata
  (**MD**, the deliberate noise source).

Relation-to-source mapping (see DESIGN.md):

========== ========================================== =========================
source      OOI-like relations                         GAGE-like relations
========== ========================================== =========================
LOC         locatedAt, memberOfArray                   locatedAt, siteInCity, cityInState
DKG         hasDataType, hasDiscipline, generatedBy    hasDataType, hasDiscipline
MD          deliveryMethod, inGroup, processingLevel   inNetwork, deliveryMethod
========== ========================================== =========================

giving the paper's 8 relations for OOI and 7 for GAGE.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.users import UserPopulation
from repro.kg.triples import TripleStore
from repro.utils.rng import ensure_rng

__all__ = [
    "KnowledgeSources",
    "EntitySpace",
    "INTERACT",
    "build_uig",
    "build_uug",
    "build_iag",
    "relation_source_map",
]

INTERACT = "interact"


@dataclasses.dataclass(frozen=True)
class KnowledgeSources:
    """Which knowledge sources enter the CKG — the Table-III toggle set.

    ``uug`` controls the user–user subgraph; ``loc``/``dkg``/``md`` select
    IAG relation groups.  The UIG is always present (without it there is no
    recommendation signal at all).
    """

    uug: bool = True
    loc: bool = True
    dkg: bool = True
    md: bool = False

    @classmethod
    def all_sources(cls) -> "KnowledgeSources":
        """UIG+UUG+LOC+DKG+MD (the '+noise' row of Table III)."""
        return cls(uug=True, loc=True, dkg=True, md=True)

    @classmethod
    def best(cls) -> "KnowledgeSources":
        """UIG+UUG+LOC+DKG — the paper's best combination (Table III)."""
        return cls(uug=True, loc=True, dkg=True, md=False)

    def label(self) -> str:
        """The Table-III row label, e.g. ``"UIG+UUG+LOC+DKG"``."""
        parts = ["UIG"]
        if self.uug:
            parts.append("UUG")
        if self.loc:
            parts.append("LOC")
        if self.dkg:
            parts.append("DKG")
        if self.md:
            parts.append("MD")
        return "+".join(parts)


class EntitySpace:
    """Allocates named contiguous id blocks in the unified CKG entity space.

    Entity alignment (Section IV) is implemented by construction: each
    conceptual entity set (users, items, sites, …) receives one block, and
    subgraph builders translate local ids through :meth:`global_ids`.
    """

    def __init__(self):
        self._blocks: Dict[str, Tuple[int, int]] = {}
        self._total = 0

    def add_block(self, name: str, size: int) -> int:
        """Reserve ``size`` ids under ``name``; returns the block offset."""
        if name in self._blocks:
            raise ValueError(f"block {name!r} already allocated")
        if size < 0:
            raise ValueError(f"block size must be nonnegative, got {size}")
        offset = self._total
        self._blocks[name] = (offset, size)
        self._total += size
        return offset

    def block(self, name: str) -> Tuple[int, int]:
        """(offset, size) of a named block."""
        return self._blocks[name]

    def global_ids(self, name: str, local_ids: np.ndarray) -> np.ndarray:
        """Translate block-local ids to global entity ids (bounds-checked)."""
        offset, size = self._blocks[name]
        local = np.asarray(local_ids, dtype=np.int64)
        if local.size and (local.min() < 0 or local.max() >= size):
            raise ValueError(f"local id out of range for block {name!r} of size {size}")
        return local + offset

    def blocks(self) -> List[Tuple[str, int]]:
        """(name, size) of every block in allocation order.

        Allocation order determines every offset, so this listing is a
        complete serialization of the space — the artifact pipeline stores
        it and rebuilds an identical space with :meth:`add_block` calls.
        """
        return [(name, size) for name, (_, size) in self._blocks.items()]

    def owner_of(self, global_id: int) -> str:
        """Name of the block containing ``global_id``."""
        for name, (offset, size) in self._blocks.items():
            if offset <= global_id < offset + size:
                return name
        raise ValueError(f"global id {global_id} outside entity space of size {self._total}")

    @property
    def num_entities(self) -> int:
        return self._total

    @property
    def block_names(self) -> Tuple[str, ...]:
        return tuple(self._blocks)


def build_uig(
    space: EntitySpace, user_ids: np.ndarray, item_ids: np.ndarray
) -> TripleStore:
    """User–item interaction triples ``(u, interact, v)`` (deduplicated)."""
    store = TripleStore(space.num_entities)
    store.add_triples(
        INTERACT, space.global_ids("user", user_ids), space.global_ids("item", item_ids)
    )
    return store.deduplicated()


def build_uug(
    space: EntitySpace,
    population: UserPopulation,
    max_neighbors: int = 10,
    seed=0,
) -> TripleStore:
    """User–user association triples for same-city users.

    The paper links users in the same location (``y_uu = 1``).  A full
    same-city clique grows quadratically in city population, so each user is
    linked to at most ``max_neighbors`` same-city peers (sampled without
    replacement); with the symmetric closure applied later this preserves the
    locality signal at bounded degree.
    """
    if max_neighbors <= 0:
        raise ValueError(f"max_neighbors must be positive, got {max_neighbors}")
    rng = ensure_rng(seed)
    store = TripleStore(space.num_entities)
    heads: List[np.ndarray] = []
    tails: List[np.ndarray] = []
    for city in range(population.num_cities):
        members = population.users_of_city(city)
        if len(members) < 2:
            continue
        for u in members:
            peers = members[members != u]
            if len(peers) > max_neighbors:
                peers = rng.choice(peers, size=max_neighbors, replace=False)
            heads.append(np.full(len(peers), u, dtype=np.int64))
            tails.append(peers.astype(np.int64))
    if heads:
        h = space.global_ids("user", np.concatenate(heads))
        t = space.global_ids("user", np.concatenate(tails))
        # Canonicalize each undirected pair as (min, max) before dedup; the
        # symmetric closure is added by TripleStore.with_inverses later.
        lo, hi = np.minimum(h, t), np.maximum(h, t)
        store.add_triples(INTERACT, lo, hi)
    return store.deduplicated()


def build_iag(
    space: EntitySpace, catalog: FacilityCatalog, sources: KnowledgeSources
) -> TripleStore:
    """Item–attribute triples for the enabled knowledge sources.

    Dispatches on catalog structure: catalogs whose sites carry city/state
    fields (GAGE-like) get the locatedAt→city→state hierarchy; otherwise
    (OOI-like) the locatedAt→array hierarchy plus instrument-class domain
    knowledge.
    """
    store = TripleStore(space.num_entities)
    items = np.arange(catalog.num_objects, dtype=np.int64)
    gage_like = _is_city_catalog(catalog)

    if sources.loc:
        # Items link to their location at every granularity the facility
        # publishes (the real portals tag products with site AND region),
        # all under one ``locatedAt`` relation; the hierarchy triples connect
        # the granularities to each other.
        store.add_triples(
            "locatedAt",
            space.global_ids("item", items),
            space.global_ids("site", catalog.object_site),
        )
        if gage_like:
            site_city = _site_city_codes(catalog)
            store.add_triples(
                "locatedAt",
                space.global_ids("item", items),
                space.global_ids("city", site_city[catalog.object_site]),
            )
            store.add_triples(
                "locatedAt",
                space.global_ids("item", items),
                space.global_ids("region", catalog.object_region),
            )
            sites = np.arange(catalog.num_sites, dtype=np.int64)
            store.add_triples(
                "siteInCity",
                space.global_ids("site", sites),
                space.global_ids("city", site_city),
            )
            city_state = _city_state_codes(catalog)
            cities = np.arange(len(city_state), dtype=np.int64)
            store.add_triples(
                "cityInState",
                space.global_ids("city", cities),
                space.global_ids("region", city_state),
            )
        else:
            store.add_triples(
                "locatedAt",
                space.global_ids("item", items),
                space.global_ids("region", catalog.object_region),
            )
            sites = np.arange(catalog.num_sites, dtype=np.int64)
            store.add_triples(
                "memberOfArray",
                space.global_ids("site", sites),
                space.global_ids("region", catalog.site_region),
            )

    if sources.dkg:
        store.add_triples(
            "hasDataType",
            space.global_ids("item", items),
            space.global_ids("dtype", catalog.object_dtype),
        )
        dtypes = np.arange(catalog.num_data_types, dtype=np.int64)
        store.add_triples(
            "hasDiscipline",
            space.global_ids("dtype", dtypes),
            space.global_ids("discipline", catalog.dtype_discipline),
        )
        if gage_like:
            # Portal products are tagged with their discipline directly.
            store.add_triples(
                "hasDiscipline",
                space.global_ids("item", items),
                space.global_ids("discipline", catalog.object_discipline),
            )
        else:
            store.add_triples(
                "generatedBy",
                space.global_ids("item", items),
                space.global_ids("class", catalog.object_class),
            )

    if sources.md:
        store.add_triples(
            "deliveryMethod",
            space.global_ids("item", items),
            space.global_ids("delivery", catalog.object_delivery),
        )
        group_codes = _class_group_codes(catalog)
        if gage_like:
            # GAGE stations host exactly one instrument whose class encodes
            # the network; both the station and each of its products carry
            # the network tag.
            site_class = np.full(catalog.num_sites, -1, dtype=np.int64)
            site_class[catalog.instrument_site] = catalog.instrument_class
            sites = np.arange(catalog.num_sites, dtype=np.int64)
            store.add_triples(
                "inNetwork",
                space.global_ids("site", sites),
                space.global_ids("group", group_codes[site_class]),
            )
            store.add_triples(
                "inNetwork",
                space.global_ids("item", items),
                space.global_ids("group", group_codes[site_class][catalog.object_site]),
            )
        else:
            classes = np.arange(catalog.num_instrument_classes, dtype=np.int64)
            store.add_triples(
                "inGroup",
                space.global_ids("class", classes),
                space.global_ids("group", group_codes),
            )
            has_level = catalog.object_level >= 0
            if has_level.any():
                store.add_triples(
                    "processingLevel",
                    space.global_ids("item", items[has_level]),
                    space.global_ids("level", catalog.object_level[has_level]),
                )
    return store.deduplicated()


def relation_source_map(catalog: FacilityCatalog) -> Dict[str, str]:
    """Map each IAG relation name to its knowledge source ('loc'/'dkg'/'md')."""
    if _is_city_catalog(catalog):
        return {
            "locatedAt": "loc",
            "siteInCity": "loc",
            "cityInState": "loc",
            "hasDataType": "dkg",
            "hasDiscipline": "dkg",
            "inNetwork": "md",
            "deliveryMethod": "md",
        }
    return {
        "locatedAt": "loc",
        "memberOfArray": "loc",
        "hasDataType": "dkg",
        "hasDiscipline": "dkg",
        "generatedBy": "dkg",
        "deliveryMethod": "md",
        "inGroup": "md",
        "processingLevel": "md",
    }


# ----------------------------------------------------------- catalog coding
def _is_city_catalog(catalog: FacilityCatalog) -> bool:
    return any(s.city is not None for s in catalog.sites)


def city_names(catalog: FacilityCatalog) -> List[str]:
    """Sorted distinct site-city names of a GAGE-like catalog."""
    return sorted({s.city for s in catalog.sites if s.city is not None})


def _site_city_codes(catalog: FacilityCatalog) -> np.ndarray:
    names = city_names(catalog)
    code = {n: i for i, n in enumerate(names)}
    return np.array([code[s.city] for s in catalog.sites], dtype=np.int64)


def _city_state_codes(catalog: FacilityCatalog) -> np.ndarray:
    """Region (state) id of each city, indexed by city code."""
    names = city_names(catalog)
    code = {n: i for i, n in enumerate(names)}
    out = np.full(len(names), -1, dtype=np.int64)
    for s in catalog.sites:
        if s.city is not None:
            out[code[s.city]] = s.region_id
    if (out < 0).any():
        raise ValueError("city without a region encountered")
    return out


def _class_group_codes(catalog: FacilityCatalog) -> np.ndarray:
    groups = group_names(catalog)
    code = {g: i for i, g in enumerate(groups)}
    return np.array([code[c.group] for c in catalog.instrument_classes], dtype=np.int64)


def group_names(catalog: FacilityCatalog) -> List[str]:
    """Sorted distinct instrument-group (or network) names."""
    return sorted({c.group for c in catalog.instrument_classes})
