"""Relation registry and triple store.

Triples are kept in structure-of-arrays form — three parallel int64 arrays
``heads``, ``rels``, ``tails`` — which is what every consumer (TransR
training, CKAT propagation, statistics) actually needs; a list of tuple
objects would be rebuilt into arrays anyway (guides: keep hot data in
contiguous arrays).

The paper's Section IV notes that the relation set contains both canonical
relations (``Measure``) and their inverses (``MeasuredBy``);
:meth:`TripleStore.with_inverses` performs that augmentation, registering an
``inv_`` relation for each canonical one.  Symmetric relations (``interact``
between users) can be declared self-inverse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RelationRegistry", "TripleStore", "INVERSE_PREFIX"]

INVERSE_PREFIX = "inv_"


class RelationRegistry:
    """Bidirectional mapping between relation names and integer ids."""

    def __init__(self, names: Sequence[str] = ()):
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        for name in names:
            self.add(name)

    def add(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its id."""
        if name in self._ids:
            return self._ids[name]
        rid = len(self._names)
        self._names.append(name)
        self._ids[name] = rid
        return rid

    def id_of(self, name: str) -> int:
        """Id of a registered relation; KeyError if unknown."""
        return self._ids[name]

    def name_of(self, rid: int) -> str:
        """Name of a relation id; IndexError if out of range."""
        return self._names[rid]

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    def canonical_ids(self) -> np.ndarray:
        """Ids of relations that are not ``inv_*`` augmentations."""
        return np.array(
            [i for i, n in enumerate(self._names) if not n.startswith(INVERSE_PREFIX)],
            dtype=np.int64,
        )

    def copy(self) -> "RelationRegistry":
        return RelationRegistry(self._names)


class TripleStore:
    """A set of (head, relation, tail) triples over an integer entity space.

    Parameters
    ----------
    num_entities:
        Size of the entity id space; all head/tail ids must be < this.
    relations:
        The shared :class:`RelationRegistry` (mutated when triples with new
        relation names are added).
    """

    def __init__(self, num_entities: int, relations: Optional[RelationRegistry] = None):
        if num_entities < 0:
            raise ValueError(f"num_entities must be nonnegative, got {num_entities}")
        self.num_entities = num_entities
        self.relations = relations if relations is not None else RelationRegistry()
        self.heads = np.zeros(0, dtype=np.int64)
        self.rels = np.zeros(0, dtype=np.int64)
        self.tails = np.zeros(0, dtype=np.int64)

    # ---------------------------------------------------------------- build
    def add_triples(self, relation: str, heads: np.ndarray, tails: np.ndarray) -> None:
        """Append triples sharing one relation.

        ``heads`` / ``tails`` are equal-length integer arrays.  Out-of-range
        entity ids raise immediately (catching id-space mistakes at build
        time rather than as silent index errors during training).
        """
        heads = np.asarray(heads, dtype=np.int64).ravel()
        tails = np.asarray(tails, dtype=np.int64).ravel()
        if heads.shape != tails.shape:
            raise ValueError(f"heads and tails differ in length: {heads.shape} vs {tails.shape}")
        if heads.size:
            lo = min(heads.min(), tails.min())
            hi = max(heads.max(), tails.max())
            if lo < 0 or hi >= self.num_entities:
                raise ValueError(
                    f"entity id out of range [0, {self.num_entities}): min={lo}, max={hi}"
                )
        rid = self.relations.add(relation)
        self.heads = np.concatenate([self.heads, heads])
        self.rels = np.concatenate([self.rels, np.full(heads.shape, rid, dtype=np.int64)])
        self.tails = np.concatenate([self.tails, tails])

    def extend(self, other: "TripleStore") -> None:
        """Append all triples of ``other`` (same entity space required)."""
        if other.num_entities != self.num_entities:
            raise ValueError(
                f"entity spaces differ: {self.num_entities} vs {other.num_entities}"
            )
        # Remap other's relation ids through the shared registry by name.
        remap = np.array(
            [self.relations.add(other.relations.name_of(r)) for r in range(len(other.relations))],
            dtype=np.int64,
        )
        if len(other):
            self.heads = np.concatenate([self.heads, other.heads])
            self.rels = np.concatenate([self.rels, remap[other.rels]])
            self.tails = np.concatenate([self.tails, other.tails])

    # ------------------------------------------------------------ transform
    def deduplicated(self) -> "TripleStore":
        """Return a copy with exact duplicate triples removed."""
        out = TripleStore(self.num_entities, self.relations.copy())
        if not len(self):
            return out
        keys = (self.heads * len(self.relations) + self.rels) * np.int64(
            self.num_entities
        ) + self.tails
        _, idx = np.unique(keys, return_index=True)
        idx.sort()
        out.heads = self.heads[idx].copy()
        out.rels = self.rels[idx].copy()
        out.tails = self.tails[idx].copy()
        return out

    def with_inverses(self, symmetric: Iterable[str] = ()) -> "TripleStore":
        """Return a copy augmented with inverse triples.

        For each canonical relation ``r`` a relation ``inv_r`` is registered
        and every triple ``(h, r, t)`` gains ``(t, inv_r, h)``.  Relations
        named in ``symmetric`` instead gain the reversed triple under the
        *same* id (e.g. user–user ``interact``).
        """
        symmetric = set(symmetric)
        out = TripleStore(self.num_entities, self.relations.copy())
        out.heads, out.rels, out.tails = self.heads.copy(), self.rels.copy(), self.tails.copy()
        extra_h, extra_r, extra_t = [], [], []
        for rid in range(len(self.relations)):
            name = self.relations.name_of(rid)
            if name.startswith(INVERSE_PREFIX):
                continue
            mask = self.rels == rid
            if not mask.any():
                continue
            inv_rid = rid if name in symmetric else out.relations.add(INVERSE_PREFIX + name)
            extra_h.append(self.tails[mask])
            extra_r.append(np.full(int(mask.sum()), inv_rid, dtype=np.int64))
            extra_t.append(self.heads[mask])
        if extra_h:
            out.heads = np.concatenate([out.heads] + extra_h)
            out.rels = np.concatenate([out.rels] + extra_r)
            out.tails = np.concatenate([out.tails] + extra_t)
        return out.deduplicated()

    def filter_relations(self, keep: Iterable[str]) -> "TripleStore":
        """Return a copy containing only triples of the named relations."""
        keep_ids = {self.relations.id_of(n) for n in keep if n in self.relations}
        mask = np.isin(self.rels, np.array(sorted(keep_ids), dtype=np.int64))
        out = TripleStore(self.num_entities, self.relations.copy())
        out.heads = self.heads[mask].copy()
        out.rels = self.rels[mask].copy()
        out.tails = self.tails[mask].copy()
        return out

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.heads)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    def triples_of_relation(self, relation: str) -> Tuple[np.ndarray, np.ndarray]:
        """(heads, tails) arrays for one named relation."""
        rid = self.relations.id_of(relation)
        mask = self.rels == rid
        return self.heads[mask], self.tails[mask]

    def degree(self) -> np.ndarray:
        """Out-degree (as head) per entity, length ``num_entities``."""
        return np.bincount(self.heads, minlength=self.num_entities)

    def relation_counts(self) -> Dict[str, int]:
        """Triple count per relation name."""
        counts = np.bincount(self.rels, minlength=len(self.relations))
        return {self.relations.name_of(i): int(counts[i]) for i in range(len(self.relations))}

    def __repr__(self) -> str:
        return (
            f"TripleStore({len(self)} triples, {self.num_entities} entities, "
            f"{self.num_relations} relations)"
        )
