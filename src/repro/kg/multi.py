"""Cross-facility knowledge-graph consolidation (the paper's future-work note).

Section IV: "Using entity alignment, KGs from multiple facilities can be
consolidated.  This can potentially enable recommendations across multiple
facilities.  However, we do not explore this aspect in the paper."  This
module explores it: a single user population queries several facilities, and
the per-facility item/attribute spaces are placed in one combined entity
space with the users as the shared (aligned) entities.  The cross-facility
signal then flows through users and the user–user graph exactly like the
single-facility collaborative signal.

The result is an ordinary :class:`~repro.kg.ckg.CollaborativeKnowledgeGraph`
(items from every facility in one contiguous block), so every model in
:mod:`repro.models` works on it unchanged — see ``examples/cross_facility.py``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.users import UserPopulation
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.subgraphs import (
    INTERACT,
    EntitySpace,
    KnowledgeSources,
    build_iag,
    build_uug,
    city_names,
    group_names,
)
from repro.kg.triples import TripleStore

__all__ = ["MultiFacilityIndex", "build_cross_facility_ckg"]


class MultiFacilityIndex:
    """Maps (facility index, local item id) ↔ combined item ids.

    Items of facility ``f`` occupy the contiguous combined range
    ``[item_offsets[f], item_offsets[f+1])``.
    """

    def __init__(self, catalogs: Sequence[FacilityCatalog]):
        if not catalogs:
            raise ValueError("need at least one catalog")
        self.catalogs = list(catalogs)
        sizes = [c.num_objects for c in catalogs]
        self.item_offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)

    @property
    def num_items(self) -> int:
        return int(self.item_offsets[-1])

    @property
    def num_facilities(self) -> int:
        return len(self.catalogs)

    def combined_item_ids(self, facility: int, local_items: np.ndarray) -> np.ndarray:
        """Translate facility-local item ids into the combined item space."""
        if not 0 <= facility < self.num_facilities:
            raise ValueError(f"facility {facility} out of range")
        local = np.asarray(local_items, dtype=np.int64)
        size = self.catalogs[facility].num_objects
        if local.size and (local.min() < 0 or local.max() >= size):
            raise ValueError(f"local item id out of range for facility {facility}")
        return local + self.item_offsets[facility]

    def facility_of_item(self, combined_items: np.ndarray) -> np.ndarray:
        """Facility index of each combined item id."""
        combined = np.asarray(combined_items, dtype=np.int64)
        return np.searchsorted(self.item_offsets, combined, side="right") - 1


def build_cross_facility_ckg(
    catalogs: Sequence[FacilityCatalog],
    population: UserPopulation,
    train_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    sources: KnowledgeSources = KnowledgeSources.best(),
    uug_max_neighbors: int = 10,
    seed=0,
) -> Tuple[CollaborativeKnowledgeGraph, MultiFacilityIndex]:
    """Consolidate several facilities into one CKG over a shared user base.

    Parameters
    ----------
    catalogs:
        One catalog per facility.
    population:
        The shared user population (users are the aligned entities).
    train_pairs:
        Per facility, (user_ids, local_item_ids) training interactions.
    sources:
        Knowledge-source toggles applied to every facility's IAG.

    Returns
    -------
    (ckg, index):
        The combined graph and the item-id translation index.
    """
    if len(train_pairs) != len(catalogs):
        raise ValueError(
            f"got {len(train_pairs)} interaction sets for {len(catalogs)} catalogs"
        )
    index = MultiFacilityIndex(catalogs)

    # One combined entity space: users, the merged item block, then each
    # facility's attribute blocks under facility-prefixed names.
    space = EntitySpace()
    space.add_block("user", population.num_users)
    space.add_block("item", index.num_items)
    for f, catalog in enumerate(catalogs):
        prefix = f"f{f}."
        space.add_block(prefix + "site", catalog.num_sites)
        space.add_block(prefix + "region", catalog.num_regions)
        space.add_block(prefix + "class", catalog.num_instrument_classes)
        space.add_block(prefix + "dtype", catalog.num_data_types)
        space.add_block(prefix + "discipline", catalog.num_disciplines)
        space.add_block(prefix + "delivery", len(catalog.delivery_methods))
        space.add_block(prefix + "group", len(group_names(catalog)))
        space.add_block(prefix + "level", len(catalog.processing_level_names))
        space.add_block(prefix + "city", len(city_names(catalog)))

    store = TripleStore(space.num_entities)

    # UIG: every facility's interactions land in the shared item block.
    for f, (users, items) in enumerate(train_pairs):
        users = np.asarray(users, dtype=np.int64)
        combined_items = index.combined_item_ids(f, items)
        store.add_triples(
            INTERACT, space.global_ids("user", users), combined_items + space.block("item")[0]
        )

    # UUG over the shared population.
    if sources.uug:
        store.extend(build_uug(space, population, max_neighbors=uug_max_neighbors, seed=seed))

    # Per-facility IAGs, built against a view of the combined space.
    for f, catalog in enumerate(catalogs):
        sub = _FacilityView(space, index, f)
        store.extend(build_iag(sub, catalog, sources))

    store = store.deduplicated()
    names = "+".join(c.name for c in catalogs)
    ckg = CollaborativeKnowledgeGraph(
        space=space,
        store=store,
        num_users=population.num_users,
        num_items=index.num_items,
        sources=sources,
        catalog_name=names,
    )
    return ckg, index


class _FacilityView:
    """Adapter presenting facility-f blocks under the generic block names.

    :func:`repro.kg.subgraphs.build_iag` addresses blocks as "item", "site",
    …; this view forwards those to the facility's prefixed blocks and maps
    local item ids into the shared item block.
    """

    def __init__(self, space: EntitySpace, index: MultiFacilityIndex, facility: int):
        self._space = space
        self._index = index
        self._facility = facility

    @property
    def num_entities(self) -> int:
        return self._space.num_entities

    def global_ids(self, name: str, local_ids: np.ndarray) -> np.ndarray:
        if name == "item":
            combined = self._index.combined_item_ids(self._facility, local_ids)
            return self._space.global_ids("item", combined)
        return self._space.global_ids(f"f{self._facility}.{name}", local_ids)
