"""The collaborative knowledge graph (CKG) of Section IV.

:func:`build_ckg` performs entity alignment over a shared
:class:`~repro.kg.subgraphs.EntitySpace`, merges the UIG / UUG / IAG triple
stores, and augments the result with inverse relations (the paper's
canonical-plus-inverse relation set, with the user-level ``interact``
relation treated as symmetric).

The resulting :class:`CollaborativeKnowledgeGraph` exposes everything the
models need:

- ``store`` — the canonical (no-inverse) triples, for statistics;
- ``propagation_store`` — the inverse-augmented triples over which GNN
  message passing runs (messages must flow both ways along every edge);
- id helpers translating user/item indices into the global entity space;
- the interaction matrix restricted to users×items.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.users import UserPopulation
from repro.kg.adjacency import CSRAdjacency
from repro.kg.subgraphs import (
    INTERACT,
    EntitySpace,
    KnowledgeSources,
    build_iag,
    build_uig,
    build_uug,
    city_names,
    group_names,
)
from repro.kg.triples import TripleStore

__all__ = [
    "CollaborativeKnowledgeGraph",
    "build_ckg",
    "build_interaction_adjacency",
]


class CollaborativeKnowledgeGraph:
    """Aligned union of UIG, UUG and IAG over one entity id space."""

    def __init__(
        self,
        space: EntitySpace,
        store: TripleStore,
        num_users: int,
        num_items: int,
        sources: KnowledgeSources,
        catalog_name: str,
        propagation_store: Optional[TripleStore] = None,
    ):
        self.space = space
        self.store = store
        self.num_users = num_users
        self.num_items = num_items
        self.sources = sources
        self.catalog_name = catalog_name
        # ``propagation_store`` lets a cached build (repro.pipeline) hand the
        # inverse-augmented triples back in directly instead of re-deriving
        # them; derivation is deterministic, so both paths are identical.
        self.propagation_store = (
            propagation_store
            if propagation_store is not None
            else store.with_inverses(symmetric=(INTERACT,))
        )

    # -------------------------------------------------------------- id maps
    @property
    def num_entities(self) -> int:
        return self.space.num_entities

    @property
    def num_relations(self) -> int:
        """Canonical KG relation count, excluding ``interact`` — this is what
        the paper's Table I reports (8 for OOI, 7 for GAGE); ``interact`` is
        the alignment relation added on top of R (Section IV)."""
        return sum(
            1
            for rid in self.store.relations.canonical_ids()
            if self.store.relations.name_of(int(rid)) != INTERACT
        )

    def user_entity_ids(self, user_ids: np.ndarray) -> np.ndarray:
        """Global entity ids for user indices."""
        return self.space.global_ids("user", user_ids)

    def item_entity_ids(self, item_ids: np.ndarray) -> np.ndarray:
        """Global entity ids for item indices."""
        return self.space.global_ids("item", item_ids)

    def all_user_entities(self) -> np.ndarray:
        offset, size = self.space.block("user")
        return np.arange(offset, offset + size, dtype=np.int64)

    def all_item_entities(self) -> np.ndarray:
        offset, size = self.space.block("item")
        return np.arange(offset, offset + size, dtype=np.int64)

    # ---------------------------------------------------------- interactions
    def interaction_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """(user_idx, item_idx) pairs of the UIG (local indices)."""
        heads, tails = self.store.triples_of_relation(INTERACT)
        user_off, user_size = self.space.block("user")
        item_off, item_size = self.space.block("item")
        is_ui = (heads >= user_off) & (heads < user_off + user_size) & (
            tails >= item_off
        ) & (tails < item_off + item_size)
        return heads[is_ui] - user_off, tails[is_ui] - item_off

    def knowledge_triple_count(self) -> int:
        """Canonical triples excluding user–item and user–user interactions."""
        counts = self.store.relation_counts()
        return sum(c for name, c in counts.items() if name != INTERACT)

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"CKG[{self.catalog_name}/{self.sources.label()}]: "
            f"{self.num_entities} entities, {self.num_relations} relations, "
            f"{len(self.store)} triples ({len(self.propagation_store)} with inverses)"
        )

    def __repr__(self) -> str:
        return self.describe()


def build_ckg(
    catalog: FacilityCatalog,
    population: UserPopulation,
    train_user_ids: np.ndarray,
    train_item_ids: np.ndarray,
    sources: KnowledgeSources = KnowledgeSources.best(),
    uug_max_neighbors: int = 25,
    seed=0,
) -> CollaborativeKnowledgeGraph:
    """Construct the CKG from training interactions + facility knowledge.

    Parameters
    ----------
    train_user_ids, train_item_ids:
        The *training* split of observed query pairs (test pairs must not
        enter the graph).
    sources:
        Knowledge-source toggles (Table III).
    uug_max_neighbors:
        Degree cap for the same-city user–user graph.
    """
    space = _allocate_space(catalog, population)
    store = TripleStore(space.num_entities)
    store.extend(build_uig(space, train_user_ids, train_item_ids))
    if sources.uug:
        store.extend(build_uug(space, population, max_neighbors=uug_max_neighbors, seed=seed))
    store.extend(build_iag(space, catalog, sources))
    store = store.deduplicated()
    return CollaborativeKnowledgeGraph(
        space=space,
        store=store,
        num_users=population.num_users,
        num_items=catalog.num_objects,
        sources=sources,
        catalog_name=catalog.name,
    )


def build_interaction_adjacency(
    space: EntitySpace,
    pair_chunks: Callable[[], Iterable[Tuple[np.ndarray, np.ndarray]]],
    include_inverse: bool = True,
) -> CSRAdjacency:
    """Interaction-graph CSR adjacency straight from (user, item) chunks.

    The monolithic equivalent — ``CSRAdjacency(build_uig(space, users,
    items).with_inverses(symmetric=(INTERACT,)))`` — materializes the triple
    store twice (canonical + inverse-augmented) before sorting a third copy.
    This builder feeds the chunks to
    :meth:`~repro.kg.adjacency.CSRAdjacency.from_edge_chunks` as a forward
    sweep followed by an inverse sweep, which is exactly the edge order
    ``with_inverses`` produces for the single symmetric ``interact``
    relation, so the result is bit-identical while scratch stays at chunk
    size.  ``pair_chunks`` must be a callable returning a fresh iterator of
    *deduplicated* local-id pairs (e.g.
    :func:`repro.data.streaming.interaction_pair_chunks`).
    """

    def edges():
        for users, items in pair_chunks():
            u = space.global_ids("user", np.asarray(users, dtype=np.int64))
            i = space.global_ids("item", np.asarray(items, dtype=np.int64))
            yield u, np.zeros(len(u), dtype=np.int64), i
        if include_inverse:
            for users, items in pair_chunks():
                u = space.global_ids("user", np.asarray(users, dtype=np.int64))
                i = space.global_ids("item", np.asarray(items, dtype=np.int64))
                yield i, np.zeros(len(i), dtype=np.int64), u

    return CSRAdjacency.from_edge_chunks(edges, space.num_entities, num_relations=1)


def _allocate_space(catalog: FacilityCatalog, population: UserPopulation) -> EntitySpace:
    """Reserve id blocks for every entity family the subgraphs may emit.

    Blocks are allocated unconditionally (even for disabled sources) so that
    entity ids are stable across Table-III source combinations — embeddings
    and evaluation indices remain comparable between runs.
    """
    space = EntitySpace()
    space.add_block("user", population.num_users)
    space.add_block("item", catalog.num_objects)
    space.add_block("site", catalog.num_sites)
    space.add_block("region", catalog.num_regions)
    space.add_block("class", catalog.num_instrument_classes)
    space.add_block("dtype", catalog.num_data_types)
    space.add_block("discipline", catalog.num_disciplines)
    space.add_block("delivery", len(catalog.delivery_methods))
    space.add_block("group", len(group_names(catalog)))
    space.add_block("level", len(catalog.processing_level_names))
    space.add_block("city", len(city_names(catalog)))
    return space
