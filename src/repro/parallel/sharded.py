"""Sharded propagation: shard-local compute + additive combine.

The key observation making CKAT's propagation parallelizable (the paper's
future-work note) is that Eq. 3's neighborhood sum is *additive over edges*:

    e_Nh = Σ_{edges of h} w_e · e_tail

so any edge partition can compute shard-local partial sums independently and
a final elementwise add (an all-reduce in the distributed setting) restores
the exact monolithic result.  These functions implement that schedule on one
node; tests assert bitwise-tolerance equality with the monolithic path, and
the A2 bench measures how partition strategy affects the replication factor
(the proxy for communication volume).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.parallel.executor import MapExecutor, SerialExecutor
from repro.parallel.partition import EdgePartition

__all__ = ["sharded_segment_sum", "sharded_propagation_step"]


def _shard_partial(
    args,
) -> np.ndarray:
    heads, tails, weights, embeddings, num_entities, edge_chunk = args
    out = np.zeros((num_entities, embeddings.shape[1]), dtype=embeddings.dtype)
    step = edge_chunk if edge_chunk is not None else max(len(heads), 1)
    # np.add.at processes entries strictly in order, so chunking the edge
    # walk changes only the size of the gathered (chunk, d) message buffer,
    # never the accumulation order — results stay bit-identical.
    for lo in range(0, len(heads), step):
        sl = slice(lo, lo + step)
        np.add.at(out, heads[sl], weights[sl, None] * embeddings[tails[sl]])
    return out


def sharded_segment_sum(
    heads: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
    embeddings: np.ndarray,
    partition: EdgePartition,
    executor: Optional[MapExecutor] = None,
    edge_chunk: Optional[int] = None,
) -> np.ndarray:
    """Weighted neighbor sums computed shard-by-shard then combined.

    Equivalent to ``Σ_e w_e · emb[tail_e]`` grouped by head — the inner
    reduction of CKAT Eq. 3 — but with each shard contributing a partial
    (num_entities, d) buffer that is summed at the end.  ``edge_chunk``
    bounds each shard's gathered-message scratch to (edge_chunk, d) — at
    streamed-graph edge counts the unchunked gather is the largest transient
    of the whole propagation step.
    """
    if not (len(heads) == len(tails) == len(weights)):
        raise ValueError("heads, tails and weights must have equal length")
    if edge_chunk is not None and edge_chunk <= 0:
        raise ValueError(f"edge_chunk must be positive, got {edge_chunk}")
    executor = executor or SerialExecutor()
    num_entities = embeddings.shape[0]
    tasks = []
    for shard in range(partition.num_shards):
        idx = partition.edge_indices(shard)
        tasks.append((heads[idx], tails[idx], weights[idx], embeddings, num_entities, edge_chunk))
    partials: List[np.ndarray] = executor.map(_shard_partial, tasks)
    total = partials[0]
    for p in partials[1:]:
        total += p
    return total


def sharded_propagation_step(
    heads: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
    embeddings: np.ndarray,
    partition: EdgePartition,
    aggregate: Callable[[np.ndarray, np.ndarray], np.ndarray],
    executor: Optional[MapExecutor] = None,
) -> np.ndarray:
    """One full propagation step: sharded neighbor sum then aggregation.

    ``aggregate(self_emb, neigh_emb)`` is the (local, embarrassingly
    parallel) aggregator — e.g. CKAT's LeakyReLU(W(e_h ‖ e_Nh)) evaluated
    with frozen weights.
    """
    neigh = sharded_segment_sum(heads, tails, weights, embeddings, partition, executor)
    return aggregate(embeddings, neigh)
