"""Edge partitioning for sharded graph propagation.

Partitioning the CKG's edge set across workers determines how much entity
state each worker must hold (its *replication factor*) and how balanced the
work is.  Two strategies are provided, and the A2 ablation bench compares
them:

- ``"contiguous"`` — split the head-sorted edge array into equal ranges.
  Each head entity's segment lands entirely in one shard (good: the
  per-head reduction needs no cross-shard combining for the head side) but
  popular entity blocks can skew tail replication.
- ``"hash"`` — assign each edge by a hash of its head entity.  Balanced in
  expectation and insensitive to entity ordering, at the cost of touching
  more distinct heads per shard.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.kg.triples import TripleStore
from repro.utils.validation import check_in_choices, check_positive

__all__ = ["EdgePartition", "partition_edges"]


@dataclasses.dataclass(frozen=True)
class EdgePartition:
    """Assignment of every edge to one of ``num_shards`` shards."""

    num_shards: int
    shard_of_edge: np.ndarray  # (E,)
    strategy: str

    def edge_indices(self, shard: int) -> np.ndarray:
        """Edge indices owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        return np.flatnonzero(self.shard_of_edge == shard)

    def load_balance(self) -> float:
        """Max shard size divided by mean shard size (1.0 = perfect)."""
        counts = np.bincount(self.shard_of_edge, minlength=self.num_shards)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    def replication_factor(self, heads: np.ndarray, tails: np.ndarray) -> float:
        """Average number of shards each referenced entity appears in.

        1.0 means every entity is local to one shard; higher values measure
        the communication volume an all-gather of entity embeddings implies.
        """
        total_refs = 0
        entities_seen = set()
        for shard in range(self.num_shards):
            idx = self.edge_indices(shard)
            ents = np.unique(np.concatenate([heads[idx], tails[idx]]))
            total_refs += len(ents)
            entities_seen.update(ents.tolist())
        return total_refs / max(len(entities_seen), 1)


def partition_edges(
    store: TripleStore, num_shards: int, strategy: str = "contiguous"
) -> EdgePartition:
    """Partition a triple store's edges.

    Edges are considered in *head-sorted* order (the propagation layout), so
    the contiguous strategy aligns shard boundaries with head segments.
    """
    check_positive("num_shards", num_shards)
    check_in_choices("strategy", strategy, ("contiguous", "hash"))
    E = len(store)
    order = np.argsort(store.heads, kind="stable")
    shard_sorted = np.empty(E, dtype=np.int64)
    if strategy == "contiguous":
        bounds = np.linspace(0, E, num_shards + 1).astype(np.int64)
        for s in range(num_shards):
            shard_sorted[bounds[s] : bounds[s + 1]] = s
    else:
        # Multiplicative hash of the head entity keeps each head's segment
        # on one shard while spreading heads uniformly.
        heads_sorted = store.heads[order]
        hashed = (heads_sorted * np.int64(2654435761)) % np.int64(2**31 - 1)
        shard_sorted = (hashed % num_shards).astype(np.int64)
    shard_of_edge = np.empty(E, dtype=np.int64)
    shard_of_edge[order] = shard_sorted
    return EdgePartition(num_shards=num_shards, shard_of_edge=shard_of_edge, strategy=strategy)
