"""Parallel execution utilities.

The paper's conclusion names "the parallelization of the CKAT model" as
future work; this subpackage implements the single-node building blocks:

- :mod:`~repro.parallel.executor` — a map abstraction with serial and
  process-pool backends (chunked, ordered);
- :mod:`~repro.parallel.partition` — edge partitioning for the CKG
  (contiguous ranges and hashed assignment, with replication statistics);
- :mod:`~repro.parallel.sharded` — shard-local propagation with an
  all-reduce-style combine, verified against the monolithic propagation
  (the A2 ablation bench measures partition quality).

On a single-core machine the process backend degenerates gracefully; the
point of these modules is to make the partitioned *algorithm* testable —
shard-combined results must equal the monolithic ones bit-for-bit.
"""

from repro.parallel.executor import MapExecutor, ProcessExecutor, SerialExecutor
from repro.parallel.partition import EdgePartition, partition_edges
from repro.parallel.sharded import sharded_segment_sum, sharded_propagation_step

__all__ = [
    "MapExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "EdgePartition",
    "partition_edges",
    "sharded_segment_sum",
    "sharded_propagation_step",
]
