"""Map executors: serial and process-pool with a common interface.

Follows the mpi4py-style discipline from the domain guides: workers receive
picklable chunks, results are gathered in submission order, and the serial
backend is the reference implementation the parallel one must match.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["MapExecutor", "SerialExecutor", "ProcessExecutor", "chunk_indices"]

logger = logging.getLogger(__name__)


def chunk_indices(n: int, num_chunks: int) -> List[range]:
    """Split ``range(n)`` into ``num_chunks`` contiguous, balanced ranges.

    The first ``n % num_chunks`` chunks get one extra element; empty chunks
    are omitted, so the result may be shorter than ``num_chunks``.
    """
    if n < 0 or num_chunks <= 0:
        raise ValueError("n must be >= 0 and num_chunks > 0")
    base, extra = divmod(n, num_chunks)
    out: List[range] = []
    start = 0
    for i in range(num_chunks):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(range(start, start + size))
        start += size
    return out


class MapExecutor:
    """Interface: ordered map of a function over items."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for serial)."""


class SerialExecutor(MapExecutor):
    """Reference backend: a plain loop."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ProcessExecutor(MapExecutor):
    """Process-pool backend (requires picklable ``fn`` and items).

    ``max_workers`` defaults to the available CPU count; on single-core
    machines this is equivalent to (slightly slower than) the serial
    backend, but exercises the same code path as multi-core runs.

    ``map`` is failure-aware: a worker exception (or a hard worker crash
    that breaks the pool) is logged with the failing item's index, retried
    once in a worker, and finally re-run in-process — so one bad item
    degrades a sharded run to partially-serial instead of aborting it.
    Only if the in-process attempt also fails does the exception propagate.
    ``failure_count`` tallies worker-side failures observed so far.

    **Retry audit — idempotency required.**  The recovery path *re-executes*
    the failed item: ``fn`` may run up to three times (first attempt, one
    worker retry, in-process fallback), and a worker killed mid-item may
    already have performed part of the item's side effects.  That is safe
    for every current caller — sharded evaluation and dataset builders map
    pure functions whose results are only consumed from the returned list —
    but it is exactly the wrong policy for applying gradient batches, where
    re-execution means double-applying an update.  This is why
    :class:`repro.train.sharded.ShardedExecutor` does **not** run its
    workers through this pool: training workers are stateful (parameter
    slices, per-shard optimizer state, batch streams), and its failure
    policy is the opposite — abort the epoch *without* applying the
    in-flight round, forcing resume from the last checkpoint (locked by the
    crash regression tests in ``tests/test_train_sharded.py``).  Do not
    route non-idempotent work through :meth:`map`.
    """

    def __init__(self, max_workers: Optional[int] = None):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers <= 0:
            raise ValueError(f"max_workers must be positive, got {workers}")
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self.max_workers = workers
        self.failure_count = 0

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        futures = []
        for item in items:
            try:
                futures.append(self._pool.submit(fn, item))
            except BrokenProcessPool as exc:
                futures.append(exc)  # pool died mid-submission; recover below
        results: List[R] = []
        for index, (item, future) in enumerate(zip(items, futures)):
            try:
                if isinstance(future, BrokenProcessPool):
                    raise future
                results.append(future.result())
            except Exception as exc:
                results.append(self._recover(fn, item, index, exc))
        return results

    def _recover(self, fn: Callable[[T], R], item: T, index: int, exc: BaseException) -> R:
        """One worker retry, then in-process fallback, for a failed item."""
        self.failure_count += 1
        logger.warning("worker failed on item %d (%r); retrying once in a worker", index, exc)
        try:
            return self._resubmit(fn, item)
        except Exception as retry_exc:
            self.failure_count += 1
            logger.warning(
                "retry for item %d failed (%r); falling back to in-process execution",
                index,
                retry_exc,
            )
            return fn(item)

    def _resubmit(self, fn: Callable[[T], R], item: T) -> R:
        """Submit one item, replacing the pool if a crash left it broken."""
        try:
            return self._pool.submit(fn, item).result()
        except BrokenProcessPool:
            logger.warning("process pool broken; restarting %d workers", self.max_workers)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool.submit(fn, item).result()

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
