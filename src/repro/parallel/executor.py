"""Map executors: serial and process-pool with a common interface.

Follows the mpi4py-style discipline from the domain guides: workers receive
picklable chunks, results are gathered in submission order, and the serial
backend is the reference implementation the parallel one must match.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["MapExecutor", "SerialExecutor", "ProcessExecutor", "chunk_indices"]


def chunk_indices(n: int, num_chunks: int) -> List[range]:
    """Split ``range(n)`` into ``num_chunks`` contiguous, balanced ranges.

    The first ``n % num_chunks`` chunks get one extra element; empty chunks
    are omitted, so the result may be shorter than ``num_chunks``.
    """
    if n < 0 or num_chunks <= 0:
        raise ValueError("n must be >= 0 and num_chunks > 0")
    base, extra = divmod(n, num_chunks)
    out: List[range] = []
    start = 0
    for i in range(num_chunks):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(range(start, start + size))
        start += size
    return out


class MapExecutor:
    """Interface: ordered map of a function over items."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for serial)."""


class SerialExecutor(MapExecutor):
    """Reference backend: a plain loop."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ProcessExecutor(MapExecutor):
    """Process-pool backend (requires picklable ``fn`` and items).

    ``max_workers`` defaults to the available CPU count; on single-core
    machines this is equivalent to (slightly slower than) the serial
    backend, but exercises the same code path as multi-core runs.
    """

    def __init__(self, max_workers: Optional[int] = None):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers <= 0:
            raise ValueError(f"max_workers must be positive, got {workers}")
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self.max_workers = workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
