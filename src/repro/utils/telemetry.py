"""Structured run telemetry: append-only JSONL event logs.

Every long-running piece of the pipeline (training epochs, evaluations,
checkpoint writes, sharded-eval shard timings) emits one JSON object per
line through a :class:`RunLogger`.  JSONL keeps the log crash-tolerant — a
killed run leaves at most one truncated trailing line, which
:func:`read_run_log` skips — and trivially greppable/joinable across runs.

Event vocabulary (the ``event`` field; producers may add fields freely):

- ``run_start`` / ``run_end``   — one per ``fit``; model, config, totals;
- ``resume``                    — emitted when a run restarts from a
  :class:`~repro.io.checkpoints.TrainingCheckpoint`;
- ``epoch``                     — per-epoch loss, aux loss, wall-clock;
- ``eval``                      — metrics dict from the eval callback;
- ``best_snapshot``             — the best-epoch protocol took a snapshot;
- ``checkpoint``                — a training checkpoint was written;
- ``eval_shard`` / ``eval_sharded`` — per-shard and total sharded-eval
  timings;
- ``worker_epoch``                — one data-parallel training worker's
  per-epoch record (rank, rounds, batches, loss sum, seconds), produced in
  the worker process and merged into the main run log by
  :func:`merge_worker_events`;
- ``cell_start`` / ``cell_end`` — one table-cell train→evaluate run.

:func:`summarize_run` / :func:`render_run_report` reduce a log back into the
human-readable summary behind ``repro report``.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Dict, List, Optional, TextIO, Union

__all__ = [
    "RunLogger",
    "merge_worker_events",
    "read_run_log",
    "summarize_run",
    "render_run_report",
]

PathLike = Union[str, pathlib.Path]


class RunLogger:
    """Append-only JSONL event writer.

    Parameters
    ----------
    path:
        Log file; parent directories are created, and events append, so a
        resumed run keeps writing to the same file as its first attempt.
    run_id:
        Optional label stamped onto every event (useful when several cells
        share one directory of logs).

    Each event gets ``event`` (the type) and ``ts`` (Unix wall-clock) fields;
    lines are flushed as written so a killed run loses at most the line being
    written.  Usable as a context manager; ``log`` after ``close`` raises.

    Appends are serialized with a lock: the serving layer logs from
    concurrent request handlers (and occasionally executor threads), and an
    interleaved ``write`` + ``flush`` pair can tear two JSONL lines into
    garbage *mid-file* — beyond the torn-*tail* tolerance of
    :func:`read_run_log`.  Single-writer training loops pay one uncontended
    lock acquisition per event.
    """

    def __init__(self, path: PathLike, run_id: Optional[str] = None):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = self.path.open("a", encoding="utf-8")

    def log(self, event: str, **fields) -> dict:
        """Append one event; returns the record written."""
        record = {"event": str(event), "ts": time.time()}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        record.update(fields)
        line = json.dumps(record) + "\n"
        with self._lock:
            if self._fh is None:
                raise ValueError(f"RunLogger({self.path}) is closed")
            self._fh.write(line)
            self._fh.flush()
        return record

    def append(self, record: dict) -> dict:
        """Append a pre-built event record verbatim (plus run_id stamping).

        Unlike :meth:`log`, the record's own ``ts`` is preserved — this is
        the relay path for events produced in another process (training
        workers) whose timestamps reflect when the work actually happened,
        not when the master got around to merging them.  Records missing
        ``event`` or ``ts`` are rejected: an untyped or untimed event would
        silently break every downstream reducer.
        """
        if "event" not in record or "ts" not in record:
            raise ValueError(f"relayed event needs 'event' and 'ts' fields, got {sorted(record)}")
        record = dict(record)
        if self.run_id is not None and "run_id" not in record:
            record["run_id"] = self.run_id
        line = json.dumps(record) + "\n"
        with self._lock:
            if self._fh is None:
                raise ValueError(f"RunLogger({self.path}) is closed")
            self._fh.write(line)
            self._fh.flush()
        return record

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def merge_worker_events(logger: RunLogger, events: List[dict]) -> int:
    """Merge per-worker training events into one run log; returns the count.

    Data-parallel workers record their step/epoch events locally (no shared
    file handle — concurrent appends from W processes would interleave past
    the torn-tail tolerance of :func:`read_run_log`) and ship them to the
    master at epoch boundaries.  The master merges each drain here, sorted
    by ``(ts, worker)`` so the combined log reads in causal order even
    though workers flush at different times.  Sorting is stable, so each
    worker's own events keep their original relative order.
    """
    ordered = sorted(events, key=lambda e: (float(e.get("ts", 0.0)), e.get("worker", -1)))
    for record in ordered:
        logger.append(record)
    return len(ordered)


def read_run_log(path: PathLike) -> List[dict]:
    """Parse a JSONL run log into a list of event dicts.

    A truncated final line (the signature of a killed run) is tolerated;
    malformed JSON anywhere else raises ``ValueError`` with the line number.
    """
    path = pathlib.Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    events: List[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail write from a crash — drop it
            raise ValueError(f"{path}:{lineno}: malformed JSONL event: {exc}") from None
    return events


def summarize_run(events: List[dict]) -> dict:
    """Reduce a run log to headline numbers.

    Returns a dict with epoch counts, first/last/best loss, total epoch
    wall-clock, eval history highlights, and checkpoint/resume/shard tallies.
    Missing sections simply yield zero counts, so partial (crashed) logs
    still summarize.
    """
    epochs = [e for e in events if e.get("event") == "epoch"]
    evals = [e for e in events if e.get("event") == "eval"]
    checkpoints = [e for e in events if e.get("event") == "checkpoint"]
    resumes = [e for e in events if e.get("event") == "resume"]
    shards = [e for e in events if e.get("event") == "eval_shard"]
    worker_epochs = [e for e in events if e.get("event") == "worker_epoch"]
    losses = [float(e["loss"]) for e in epochs if "loss" in e]
    summary: dict = {
        "events": len(events),
        "epochs": len(epochs),
        "first_loss": losses[0] if losses else None,
        "final_loss": losses[-1] if losses else None,
        "min_loss": min(losses) if losses else None,
        "epoch_seconds": sum(float(e.get("seconds", 0.0)) for e in epochs),
        "evals": len(evals),
        "checkpoints": len(checkpoints),
        "resumes": len(resumes),
        "shards": len(shards),
        "shard_seconds": sum(float(e.get("seconds", 0.0)) for e in shards),
        "worker_epochs": len(worker_epochs),
        "workers": len({e.get("worker") for e in worker_epochs}) if worker_epochs else 0,
        "worker_seconds": sum(float(e.get("seconds", 0.0)) for e in worker_epochs),
    }
    if evals:
        last = {k: v for k, v in evals[-1].items() if k not in ("event", "ts", "run_id")}
        summary["last_eval"] = last
    best = [e for e in events if e.get("event") == "best_snapshot"]
    if best:
        summary["best_epoch"] = best[-1].get("epoch")
        summary["best_score"] = best[-1].get("score")
    return summary


def render_run_report(path: PathLike) -> str:
    """Human-readable report for one JSONL run log (``repro report``)."""
    events = read_run_log(path)
    s = summarize_run(events)
    by_type: Dict[str, int] = {}
    for e in events:
        by_type[e.get("event", "?")] = by_type.get(e.get("event", "?"), 0) + 1
    lines = [f"run log: {path}"]
    lines.append(
        "events: "
        + ", ".join(f"{name}={count}" for name, count in sorted(by_type.items()))
    )
    if s["epochs"]:
        lines.append(
            f"epochs: {s['epochs']} "
            f"(loss {s['first_loss']:.4f} -> {s['final_loss']:.4f}, min {s['min_loss']:.4f}, "
            f"{s['epoch_seconds']:.2f}s)"
        )
    if s.get("last_eval"):
        metrics = ", ".join(
            f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(s["last_eval"].items())
        )
        lines.append(f"last eval: {metrics}")
    if "best_epoch" in s:
        lines.append(f"best epoch: {s['best_epoch']} (score {s['best_score']:.4f})")
    if s["checkpoints"] or s["resumes"]:
        lines.append(f"checkpoints: {s['checkpoints']} written, {s['resumes']} resumes")
    if s["shards"]:
        lines.append(f"eval shards: {s['shards']} ({s['shard_seconds']:.2f}s worker time)")
    if s["worker_epochs"]:
        lines.append(
            f"train workers: {s['workers']} "
            f"({s['worker_epochs']} worker-epochs, {s['worker_seconds']:.2f}s worker time)"
        )
    return "\n".join(lines)
