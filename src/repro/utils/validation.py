"""Argument-validation helpers shared across the package.

Centralizing these keeps error messages consistent and the call sites terse.
All raise :class:`ValueError` with the offending parameter named.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["check_positive", "check_nonnegative", "check_probability", "check_in_choices"]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be nonnegative, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_in_choices(name: str, value: Any, choices: Sequence[Any]) -> Any:
    """Require ``value`` to be one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {list(choices)}, got {value!r}")
    return value
