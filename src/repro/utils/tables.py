"""Plain-text table rendering for experiment reports.

The benchmark harnesses print tables shaped exactly like the paper's
(Tables I-V), so a human can diff "paper vs measured" by eye.  No external
dependencies; monospace alignment only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, float, int, None]

__all__ = ["TextTable", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a metric the way the paper prints them (4 decimal places)."""
    return f"{value:.{digits}f}"


class TextTable:
    """Accumulates rows and renders an aligned monospace table.

    Example
    -------
    >>> t = TextTable(["model", "recall@20", "ndcg@20"])
    >>> t.add_row(["CKAT", 0.3217, 0.2561])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None, float_digits: int = 4):
        if not headers:
            raise ValueError("table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.title = title
        self.float_digits = float_digits
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Cell]) -> None:
        """Append a row; floats are formatted, None renders as '-'."""
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(cells)}")
        formatted = []
        for cell in cells:
            if cell is None:
                formatted.append("-")
            elif isinstance(cell, float):
                formatted.append(format_float(cell, self.float_digits))
            else:
                formatted.append(str(cell))
        self.rows.append(formatted)

    def add_separator(self) -> None:
        """Insert a horizontal rule between row groups."""
        self.rows.append(["__SEP__"] * len(self.headers))

    def render(self) -> str:
        """Return the table as a single printable string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            if row[0] == "__SEP__":
                continue
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(rule)
        for row in self.rows:
            if row[0] == "__SEP__":
                lines.append(rule)
            else:
                lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
