"""Shared utilities: RNG plumbing, timing, telemetry, text tables, validation."""

from repro.utils.rng import ensure_rng, spawn_rngs, SeedSequenceFactory
from repro.utils.tables import TextTable, format_float
from repro.utils.telemetry import RunLogger, read_run_log, render_run_report, summarize_run
from repro.utils.timing import Timer
from repro.utils.validation import check_positive, check_probability, check_in_choices

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "SeedSequenceFactory",
    "TextTable",
    "format_float",
    "Timer",
    "RunLogger",
    "read_run_log",
    "summarize_run",
    "render_run_report",
    "check_positive",
    "check_probability",
    "check_in_choices",
]
