"""Shared utilities: RNG plumbing, timing, text tables, validation helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs, SeedSequenceFactory
from repro.utils.tables import TextTable, format_float
from repro.utils.timing import Timer
from repro.utils.validation import check_positive, check_probability, check_in_choices

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "SeedSequenceFactory",
    "TextTable",
    "format_float",
    "Timer",
    "check_positive",
    "check_probability",
    "check_in_choices",
]
