"""Random-number-generator plumbing.

Every stochastic component in this repository (facility simulators, trace
generators, negative samplers, initializers, dropout) takes either an integer
seed or a :class:`numpy.random.Generator`.  These helpers normalize the two
and derive independent child generators so that adding randomness to one
component never perturbs another (a common reproducibility bug when a single
global generator is threaded through everything).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

__all__ = ["ensure_rng", "spawn_rngs", "SeedSequenceFactory"]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a nondeterministic generator; an existing generator is
    returned unchanged (not copied), so callers sharing one advance it
    together by design.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    independent regardless of how many draws each consumes.
    """
    if n < 0:
        raise ValueError(f"n must be nonnegative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own bit stream.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class SeedSequenceFactory:
    """Hands out named, reproducible child generators from a root seed.

    Two factories constructed with the same root seed produce identical
    generators for identical names, independent of request order::

        f = SeedSequenceFactory(42)
        rng_trace = f.get("trace")
        rng_model = f.get("model")
    """

    def __init__(self, root_seed: Optional[int] = 0):
        self._root = root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator associated with ``name``."""
        # Hash the name into spawn-key material; stable across processes
        # (unlike built-in hash(), which is salted for strings).
        key = [b for b in name.encode("utf-8")]
        ss = np.random.SeedSequence(entropy=self._root, spawn_key=tuple(key))
        return np.random.default_rng(ss)
