"""Small wall-clock timing helper used by training loops and benchmarks."""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Timer"]


class Timer:
    """Accumulating named timer.

    Usage::

        timer = Timer()
        with timer.section("propagation"):
            ...
        timer.total("propagation")  # seconds
    """

    def __init__(self):
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    class _Section:
        def __init__(self, timer: "Timer", name: str):
            self._timer = timer
            self._name = name
            self._start: Optional[float] = None

        def __enter__(self):
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self._start
            self._timer._totals[self._name] = self._timer._totals.get(self._name, 0.0) + elapsed
            self._timer._counts[self._name] = self._timer._counts.get(self._name, 0) + 1
            return False

    def section(self, name: str) -> "Timer._Section":
        """Context manager accumulating into the named bucket."""
        return Timer._Section(self, name)

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times the named section was entered."""
        return self._counts.get(name, 0)

    def names(self) -> List[str]:
        """All section names recorded so far."""
        return list(self._totals)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{name: {"seconds": total, "count": entries}}`` — the shape the
        telemetry JSONL events embed, so logs stay schema-stable as sections
        are added."""
        return {
            name: {"seconds": self._totals[name], "count": self._counts[name]}
            for name in self._totals
        }

    def summary(self) -> str:
        """Human-readable multi-line summary sorted by total time."""
        lines = []
        for name in sorted(self._totals, key=self._totals.get, reverse=True):
            lines.append(f"{name}: {self._totals[name]:.3f}s over {self._counts[name]} calls")
        return "\n".join(lines)
