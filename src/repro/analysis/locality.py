"""Figure 5 and Section III-B2: locality / domain affinity measurements.

Two measurements from the paper:

1. **Query concentration** (III-B2 text): on average, what fraction of a
   user's queries target instruments in one region (43.1% OOI / 36.3% GAGE)
   or one data type (51.6% / 68.8%).  We measure the mean share of each
   user's modal region / data type.

2. **Paired-user study** (Fig 5): sample 10,000 user pairs from the same
   city and 10,000 random pairs; compare the probability that a pair shares
   a query pattern — same modal region / same modal data type.  The paper
   reports same-city likelihood ratios of 79.8× / 29.8× (OOI region /
   domain) and 22.87× / 2.21× (GAGE).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.trace import QueryTrace
from repro.facility.users import UserPopulation
from repro.utils.rng import ensure_rng

__all__ = ["query_concentration", "PairStudyResult", "pair_similarity_study"]


def _modal_share_per_user(
    trace: QueryTrace, codes: np.ndarray, min_queries: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(modal code, modal share) per user; share = NaN below min_queries."""
    n_codes = int(codes.max()) + 1 if codes.size else 1
    keys = trace.user_ids * np.int64(n_codes) + codes[trace.object_ids]
    uniq, counts = np.unique(keys, return_counts=True)
    users = (uniq // n_codes).astype(np.int64)
    code_vals = (uniq % n_codes).astype(np.int64)
    totals = trace.per_user_counts()
    modal_code = np.full(trace.num_users, -1, dtype=np.int64)
    modal_count = np.zeros(trace.num_users, dtype=np.int64)
    # One pass: keep the max count per user.
    for u, c, cnt in zip(users, code_vals, counts):
        if cnt > modal_count[u]:
            modal_count[u] = cnt
            modal_code[u] = c
    with np.errstate(invalid="ignore", divide="ignore"):
        share = modal_count / totals
    share = np.where(totals >= min_queries, share, np.nan)
    return modal_code, share


def query_concentration(
    trace: QueryTrace, catalog: FacilityCatalog, min_queries: int = 5
) -> Dict[str, float]:
    """Mean modal-region and modal-data-type query shares (Section III-B2).

    Users with fewer than ``min_queries`` records are excluded (a two-query
    user trivially concentrates).
    """
    _, region_share = _modal_share_per_user(trace, catalog.object_region, min_queries)
    _, dtype_share = _modal_share_per_user(trace, catalog.object_dtype, min_queries)
    return {
        "same_region_fraction": float(np.nanmean(region_share)),
        "same_dtype_fraction": float(np.nanmean(dtype_share)),
    }


@dataclasses.dataclass(frozen=True)
class PairStudyResult:
    """Fig-5 outcome: match probabilities and same-city likelihood ratios."""

    p_region_same_city: float
    p_region_random: float
    p_dtype_same_city: float
    p_dtype_random: float
    num_pairs: int

    @property
    def region_ratio(self) -> float:
        """How much likelier same-city pairs share a modal region."""
        return self.p_region_same_city / max(self.p_region_random, 1e-12)

    @property
    def dtype_ratio(self) -> float:
        """How much likelier same-city pairs share a modal data type."""
        return self.p_dtype_same_city / max(self.p_dtype_random, 1e-12)

    def as_dict(self) -> Dict[str, float]:
        return {
            "p_region_same_city": self.p_region_same_city,
            "p_region_random": self.p_region_random,
            "region_ratio": self.region_ratio,
            "p_dtype_same_city": self.p_dtype_same_city,
            "p_dtype_random": self.p_dtype_random,
            "dtype_ratio": self.dtype_ratio,
        }


def pair_similarity_study(
    trace: QueryTrace,
    catalog: FacilityCatalog,
    population: UserPopulation,
    num_pairs: int = 10_000,
    min_queries: int = 5,
    seed=0,
) -> PairStudyResult:
    """Run the Fig-5 paired-user experiment.

    Same-city pairs are drawn uniformly over cities with ≥2 eligible users,
    then uniformly over distinct user pairs within the city; random pairs
    uniformly over all eligible users.  A pair "shares a query pattern" when
    the two users' modal regions (resp. modal data types) coincide.
    """
    if num_pairs <= 0:
        raise ValueError(f"num_pairs must be positive, got {num_pairs}")
    rng = ensure_rng(seed)
    # Instrument locality is measured at *site* granularity: the paper's
    # likelihood ratios (up to ~80×) are only reachable when the random-pair
    # match probability is small, i.e. the attribute space is fine-grained
    # (GAGE stations / OOI moorings, not 8 research arrays).
    modal_site, site_share = _modal_share_per_user(trace, catalog.object_site, min_queries)
    modal_dtype, _ = _modal_share_per_user(trace, catalog.object_dtype, min_queries)
    eligible = np.flatnonzero(~np.isnan(site_share))
    if len(eligible) < 2:
        raise ValueError("not enough active users for the pair study")

    # Same-city pairs.
    eligible_set = set(eligible.tolist())
    city_members = [
        np.array([u for u in population.users_of_city(c) if u in eligible_set])
        for c in range(population.num_cities)
    ]
    multi = [m for m in city_members if len(m) >= 2]
    if not multi:
        raise ValueError("no city has two or more eligible users")
    same_a = np.empty(num_pairs, dtype=np.int64)
    same_b = np.empty(num_pairs, dtype=np.int64)
    city_pick = rng.integers(0, len(multi), size=num_pairs)
    for i, ci in enumerate(city_pick):
        members = multi[ci]
        a, b = rng.choice(len(members), size=2, replace=False)
        same_a[i], same_b[i] = members[a], members[b]

    # Random pairs (rejecting self-pairs).
    rand_a = rng.choice(eligible, size=num_pairs)
    rand_b = rng.choice(eligible, size=num_pairs)
    clash = rand_a == rand_b
    while clash.any():
        rand_b[clash] = rng.choice(eligible, size=int(clash.sum()))
        clash = rand_a == rand_b

    return PairStudyResult(
        p_region_same_city=float(np.mean(modal_site[same_a] == modal_site[same_b])),
        p_region_random=float(np.mean(modal_site[rand_a] == modal_site[rand_b])),
        p_dtype_same_city=float(np.mean(modal_dtype[same_a] == modal_dtype[same_b])),
        p_dtype_random=float(np.mean(modal_dtype[rand_a] == modal_dtype[rand_b])),
        num_pairs=num_pairs,
    )
