"""Exact-gradient t-SNE (van der Maaten & Hinton, 2008) and the Fig-4 study.

The paper uses t-SNE to project the data objects queried by each
organization's eight heaviest users into 2-D; clustered-with-overlap point
clouds demonstrate that same-organization users query similar objects.

This is a small, dependency-free implementation of exact t-SNE (O(n²) per
iteration — fine at Fig-4 scale of a few hundred points): binary-search
perplexity calibration, early exaggeration, momentum gradient descent.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.trace import QueryTrace
from repro.utils.rng import ensure_rng

__all__ = ["TSNE", "object_feature_matrix", "tsne_embed_user_queries"]


def _pairwise_sq_dists(X: np.ndarray) -> np.ndarray:
    sq = (X * X).sum(axis=1)
    d2 = sq[:, None] - 2.0 * X @ X.T + sq[None, :]
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _calibrate_row(d2_row: np.ndarray, target_entropy: float, tol: float = 1e-5) -> np.ndarray:
    """Binary-search the Gaussian precision β for one row's perplexity."""
    beta, beta_min, beta_max = 1.0, 0.0, np.inf
    for _ in range(60):
        p = np.exp(-d2_row * beta)
        s = p.sum()
        if s <= 0:
            p = np.full_like(d2_row, 1.0 / len(d2_row))
            break
        p /= s
        entropy = -(p[p > 0] * np.log(p[p > 0])).sum()
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            beta_min = beta
            beta = beta * 2.0 if np.isinf(beta_max) else (beta + beta_max) / 2.0
        else:
            beta_max = beta
            beta = beta / 2.0 if beta_min == 0.0 else (beta + beta_min) / 2.0
    return p


class TSNE:
    """Exact t-SNE with early exaggeration and momentum.

    Parameters mirror the reference implementation's defaults scaled for
    small inputs.  All randomness flows through the ``seed`` argument of
    :meth:`fit_transform`.
    """

    def __init__(
        self,
        n_components: int = 2,
        perplexity: float = 30.0,
        learning_rate: float = 100.0,
        n_iter: int = 400,
        early_exaggeration: float = 4.0,
        exaggeration_iters: int = 80,
    ):
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        if perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if n_iter <= 0 or learning_rate <= 0:
            raise ValueError("n_iter and learning_rate must be positive")
        self.n_components = n_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.early_exaggeration = early_exaggeration
        self.exaggeration_iters = exaggeration_iters

    def _joint_probabilities(self, X: np.ndarray) -> np.ndarray:
        n = len(X)
        d2 = _pairwise_sq_dists(X)
        target_entropy = np.log(min(self.perplexity, n - 1))
        P = np.zeros((n, n))
        for i in range(n):
            row = np.delete(d2[i], i)
            p = _calibrate_row(row, target_entropy)
            P[i, np.arange(n) != i] = p
        P = (P + P.T) / (2.0 * n)
        return np.maximum(P, 1e-12)

    def fit_transform(self, X: np.ndarray, seed=0) -> np.ndarray:
        """Embed rows of ``X`` into ``n_components`` dimensions."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n = len(X)
        if n < 3:
            raise ValueError("t-SNE needs at least 3 points")
        rng = ensure_rng(seed)
        P = self._joint_probabilities(X)
        Y = rng.normal(0.0, 1e-4, size=(n, self.n_components))
        velocity = np.zeros_like(Y)
        gains = np.ones_like(Y)
        for it in range(self.n_iter):
            exaggeration = self.early_exaggeration if it < self.exaggeration_iters else 1.0
            momentum = 0.5 if it < 250 else 0.8
            d2 = _pairwise_sq_dists(Y)
            num = 1.0 / (1.0 + d2)
            np.fill_diagonal(num, 0.0)
            Q = np.maximum(num / num.sum(), 1e-12)
            PQ = (exaggeration * P - Q) * num
            grad = 4.0 * ((np.diag(PQ.sum(axis=1)) - PQ) @ Y)
            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - self.learning_rate * gains * grad
            Y = Y + velocity
            Y -= Y.mean(axis=0)
        return Y

    def kl_divergence(self, X: np.ndarray, Y: np.ndarray) -> float:
        """KL(P‖Q) of an embedding — the t-SNE objective value."""
        P = self._joint_probabilities(np.asarray(X, dtype=np.float64))
        d2 = _pairwise_sq_dists(np.asarray(Y, dtype=np.float64))
        num = 1.0 / (1.0 + d2)
        np.fill_diagonal(num, 0.0)
        Q = np.maximum(num / num.sum(), 1e-12)
        return float((P * np.log(P / Q)).sum())


def object_feature_matrix(catalog: FacilityCatalog) -> np.ndarray:
    """One-hot attribute features per data object (the Fig-4 input space).

    Concatenates one-hot encodings of site, region, data type, discipline
    and instrument class — "the instrument location and associated data
    attributes" the paper embeds.
    """
    blocks = []
    for codes, size in (
        (catalog.object_site, catalog.num_sites),
        (catalog.object_region, catalog.num_regions),
        (catalog.object_dtype, catalog.num_data_types),
        (catalog.object_discipline, catalog.num_disciplines),
        (catalog.object_class, catalog.num_instrument_classes),
    ):
        block = np.zeros((catalog.num_objects, size))
        block[np.arange(catalog.num_objects), codes] = 1.0
        blocks.append(block)
    return np.concatenate(blocks, axis=1)


@dataclasses.dataclass(frozen=True)
class UserQueryEmbedding:
    """Fig-4 output: 2-D points with their owning user labels."""

    points: np.ndarray  # (n, 2)
    user_labels: np.ndarray  # (n,)
    object_ids: np.ndarray  # (n,)

    def user_separability(self) -> float:
        """Silhouette-style score of how separable users' point clouds are.

        Near 0 means users' queried-object clouds overlap (indistinguishable
        query patterns); large positive means each user's points form their
        own cluster.  The paper's Fig-4 claim is that same-organization
        users *overlap* — so this score should be near zero for an org's
        heavy users and clearly larger for users drawn from different
        organizations (the contrast the Fig-4 bench reports).
        """
        d = np.sqrt(_pairwise_sq_dists(self.points))
        n = len(self.points)
        same = self.user_labels[:, None] == self.user_labels[None, :]
        np.fill_diagonal(same, False)
        other = ~same
        np.fill_diagonal(other, False)
        scores = []
        for i in range(n):
            if same[i].any() and other[i].any():
                a = d[i][same[i]].mean()
                b = d[i][other[i]].mean()
                scores.append((b - a) / max(a, b))
        return float(np.mean(scores)) if scores else 0.0


def tsne_embed_user_queries(
    trace: QueryTrace,
    catalog: FacilityCatalog,
    user_ids: np.ndarray,
    max_objects_per_user: int = 40,
    perplexity: float = 20.0,
    n_iter: int = 300,
    seed=0,
) -> UserQueryEmbedding:
    """Reproduce Fig 4 for a set of users (e.g. one org's 8 heaviest).

    Each user contributes up to ``max_objects_per_user`` distinct queried
    objects; points are the t-SNE embedding of the objects' attribute
    one-hots, labeled by querying user.
    """
    rng = ensure_rng(seed)
    feats = object_feature_matrix(catalog)
    rows, labels, objs = [], [], []
    for u in np.asarray(user_ids, dtype=np.int64):
        queried = np.unique(trace.queries_of_user(int(u)))
        if len(queried) > max_objects_per_user:
            queried = rng.choice(queried, size=max_objects_per_user, replace=False)
        rows.append(feats[queried])
        labels.append(np.full(len(queried), u, dtype=np.int64))
        objs.append(queried)
    X = np.concatenate(rows, axis=0)
    tsne = TSNE(perplexity=min(perplexity, max(2.0, len(X) / 4)), n_iter=n_iter)
    Y = tsne.fit_transform(X, seed=rng)
    return UserQueryEmbedding(
        points=Y,
        user_labels=np.concatenate(labels),
        object_ids=np.concatenate(objs),
    )
