"""Content-addressed cache of per-module summaries.

Graph lint's cost is dominated by parsing + summarizing every file; the
analysis over the finished summaries is cheap.  The cache stores one JSON
document mapping each file path to ``{sha256, summary}``, so a warm run only
hashes file contents (no parsing) for unchanged files.

Invalidation is by value, not by mtime: a touched-but-identical file still
hits, a changed file always misses.  Entries written by a different
:data:`~repro.analysis.lint.graph.summary.SUMMARY_VERSION` are discarded
wholesale on load, so shape changes to the summary format can never be
misread.  Writes are atomic (tmp file + ``os.replace``) — a crashed run
leaves the previous cache intact, and the worst possible failure mode of a
corrupt or missing cache file is a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.analysis.lint.graph.summary import (
    SUMMARY_VERSION,
    ModuleSummaryError,
    summarize_module,
)

__all__ = ["SummaryCache", "DEFAULT_CACHE_NAME", "content_hash"]

#: Default cache file name, created next to the linted tree's cwd.
DEFAULT_CACHE_NAME = ".reprolint-cache.json"


def content_hash(data: bytes) -> str:
    """SHA-256 hex digest of raw file bytes — the cache invalidation key."""
    return hashlib.sha256(data).hexdigest()


class SummaryCache:
    """Load-once / save-once summary cache keyed by file content hash.

    Usage::

        cache = SummaryCache(Path(".reprolint-cache.json"))
        summary, hit = cache.summarize(path)   # parse only on miss
        ...
        cache.save()                           # persist for the next run

    A ``path`` of ``None`` disables persistence entirely (every call is a
    miss and ``save()`` is a no-op) — used by tests that want cold runs.
    """

    def __init__(self, path: Optional[Path]):
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return  # corrupt cache == cold run
        if not isinstance(doc, dict) or doc.get("version") != SUMMARY_VERSION:
            return
        entries = doc.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    # ------------------------------------------------------------------ api
    def summarize(self, file_path: Path) -> Tuple[dict, bool]:
        """Return ``(module_summary, was_cache_hit)`` for one file.

        Parse errors are summarized as ``{"error": message}`` pseudo-modules
        (and cached like any other result) so a broken file costs one parse
        attempt per content version, not one per run.
        """
        norm = str(file_path).replace("\\", "/")
        data = Path(file_path).read_bytes()
        digest = content_hash(data)
        entry = self._entries.get(norm)
        if entry is not None and entry.get("sha256") == digest:
            self.hits += 1
            return entry["summary"], True
        self.misses += 1
        try:
            summary = summarize_module(data.decode("utf-8", errors="replace"), norm)
        except ModuleSummaryError as err:
            summary = {"version": SUMMARY_VERSION, "path": norm, "error": str(err)}
        self._entries[norm] = {"sha256": digest, "summary": summary}
        self._dirty = True
        return summary, False

    def prune(self, keep_paths) -> None:
        """Drop entries for files no longer part of the linted tree."""
        keep = {str(p).replace("\\", "/") for p in keep_paths}
        stale = [p for p in self._entries if p not in keep]
        for p in stale:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        doc = {"version": SUMMARY_VERSION, "entries": self._entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(doc, separators=(",", ":"), sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, self.path)
        self._dirty = False
