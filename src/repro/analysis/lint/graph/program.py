"""Whole-program view over per-module summaries.

:class:`ProgramGraph` stitches the :mod:`~repro.analysis.lint.graph.summary`
dicts for every linted file into one queryable structure:

- **module naming** — a file's dotted module name is recovered by walking up
  through directories whose ``__init__.py`` is part of the same linted tree,
  so both ``src/repro/...`` and fixture packages resolve without importing
  anything;
- **qualified-name resolution** — dotted paths from import-alias tables are
  resolved to project functions/classes, following package ``__init__``
  re-exports chains;
- **static types** — a conservative class-of-value judgment from parameter
  and return annotations, constructor calls, and ``__init__`` attribute
  assignments, used to resolve method call targets (one level of base-class
  lookup);
- **abstract kinds** — a demand-driven, memoized evaluator mapping value
  references to sets of kind tags (``f64``, ``f32``, ``rng?`` unseeded RNG,
  ``rng`` seeded RNG, ``file``, ``none``, …).  Evaluation is call-site
  sensitive: a call result is computed by re-evaluating the callee's return
  references under the caller's argument kinds, so ``ensure_rng(seed)`` and
  ``ensure_rng(None)`` get different answers.  With no bindings, parameters
  evaluate to symbolic ``param:i`` kinds and ``default_rng(param)`` to
  ``rngc:i`` ("unseeded iff argument *i* is None") — the conditional-sink
  signal RPL011's caller-propagation worklist consumes.

Everything is depth-bounded and cycle-guarded; unknown stays unknown rather
than guessing.  The deliberate unsoundness (dynamic dispatch, ``getattr``,
``*args`` fan-out, monkeypatching) is catalogued in DESIGN §12.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

__all__ = ["ProgramGraph", "FnInfo", "ResolvedTarget", "MAX_EVAL_DEPTH"]

MAX_EVAL_DEPTH = 8

Kinds = FrozenSet[str]

UNK: Kinds = frozenset({"unk"})

_CONST_KINDS = {
    "none": frozenset({"none"}),
    "int": frozenset({"int"}),
    "bool": frozenset({"bool"}),
    "pyfloat": frozenset({"pyfloat"}),
    "str": frozenset({"str"}),
}

#: numpy creators defaulting to float64 when no dtype is passed.
_F64_DEFAULT_CREATORS = frozenset(
    {
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.full",
        "numpy.linspace",
        "numpy.eye",
        "numpy.identity",
        "numpy.random.standard_normal",
    }
)

#: numpy converters whose output dtype follows the input (modulo an explicit
#: dtype argument); python floats densify to float64.
_PASSTHROUGH_CREATORS = frozenset(
    {"numpy.array", "numpy.asarray", "numpy.ascontiguousarray", "numpy.asfortranarray"}
)

#: elementwise/reduction quals whose result kind follows the first argument.
_PASSTHROUGH_QUALS = frozenset(
    {
        "numpy.sqrt",
        "numpy.exp",
        "numpy.log",
        "numpy.abs",
        "numpy.tanh",
        "numpy.dot",
        "numpy.matmul",
        "numpy.mean",
        "numpy.sum",
        "numpy.clip",
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.copy",
    }
)

_RNG_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "numpy.random.RandomState"})

#: methods whose result kind follows the receiver.
_KIND_PRESERVING_METHODS = frozenset(
    {
        "copy",
        "reshape",
        "ravel",
        "flatten",
        "transpose",
        "squeeze",
        "clip",
        "round",
        "mean",
        "sum",
        "max",
        "min",
        "take",
    }
)

_DTYPE_QUAL_KINDS = {
    "numpy.float64": "f64",
    "numpy.double": "f64",
    "numpy.float32": "f32",
    "numpy.single": "f32",
    "numpy.int32": "int",
    "numpy.int64": "int",
    "numpy.intp": "int",
}

_DTYPE_STR_KINDS = {
    "float64": "f64",
    "f8": "f64",
    "double": "f64",
    "float32": "f32",
    "f4": "f32",
    "int32": "int",
    "int64": "int",
}

#: scalar kinds that an array float kind absorbs in a binop.
_ABSORBED_SCALARS = frozenset({"pyfloat", "int", "bool"})


@dataclasses.dataclass(frozen=True)
class FnInfo:
    """One project function: where it lives and its raw summary."""

    fqn: str
    module: str
    path: str
    qualpath: str
    summary: dict


@dataclasses.dataclass(frozen=True)
class ResolvedTarget:
    """Resolution of one call site's target.

    kind: ``"fn"`` (project function, ``name`` is its fqn, ``self_offset``
    is 1 for instance/class method calls through a receiver), ``"class"``
    (constructor, ``name`` is the class fqn), ``"ext"`` (external dotted
    qual), ``"builtin"`` (bare unresolved name), or ``"unknown"``.
    """

    kind: str
    name: str = ""
    self_offset: int = 0


_UNKNOWN_TARGET = ResolvedTarget("unknown")


def _refkey(ref) -> str:
    return json.dumps(ref, separators=(",", ":"))


class ProgramGraph:
    """Queryable whole-program structure built from module summaries."""

    def __init__(self, summaries: Dict[str, dict]):
        #: path -> module summary (parse-error pseudo-summaries included)
        self.summaries = {p.replace("\\", "/"): s for p, s in summaries.items()}
        self._paths = set(self.summaries)
        self.modules: Dict[str, dict] = {}
        self.module_paths: Dict[str, str] = {}
        self.functions: Dict[str, FnInfo] = {}
        self.classes: Dict[str, dict] = {}
        self.class_modules: Dict[str, str] = {}
        self._build_tables()
        self._edges: Optional[Dict[str, List[Tuple[int, str]]]] = None
        self._callers: Optional[Dict[str, List[Tuple[str, int]]]] = None
        self._kind_memo: Dict[tuple, Kinds] = {}
        self._kind_in_progress: set = set()
        self._type_memo: Dict[tuple, Optional[str]] = {}
        self._type_in_progress: set = set()
        self._target_memo: Dict[tuple, ResolvedTarget] = {}

    # ------------------------------------------------------------- building
    def module_name(self, path: str) -> str:
        """Dotted module name by walking up through linted ``__init__.py``."""
        p = PurePosixPath(path.replace("\\", "/"))
        parts = [] if p.stem == "__init__" else [p.stem]
        parent = p.parent
        while parent.name and str(parent / "__init__.py") in self._paths:
            parts.insert(0, parent.name)
            parent = parent.parent
        return ".".join(parts) if parts else p.stem

    def _build_tables(self) -> None:
        for path, summary in self.summaries.items():
            if "error" in summary:
                continue
            module = self.module_name(path)
            self.modules[module] = summary
            self.module_paths[module] = path
            for qualpath, fn in summary.get("functions", {}).items():
                fqn = f"{module}.{qualpath}" if module else qualpath
                self.functions[fqn] = FnInfo(fqn, module, path, qualpath, fn)
            for cls_name, cls in summary.get("classes", {}).items():
                cls_fqn = f"{module}.{cls_name}" if module else cls_name
                self.classes[cls_fqn] = cls
                self.class_modules[cls_fqn] = module

    # ------------------------------------------------------ name resolution
    def resolve_qual(self, dotted: str, _seen: Optional[set] = None) -> ResolvedTarget:
        """Resolve a dotted path to a project function/class, following
        package-``__init__`` re-exports; anything else is external."""
        if _seen is None:
            _seen = set()
        if dotted in _seen:
            return ResolvedTarget("ext", dotted)
        _seen.add(dotted)
        if dotted in self.functions:
            return ResolvedTarget("fn", dotted)
        if dotted in self.classes:
            return ResolvedTarget("class", dotted)
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            summary = self.modules.get(module)
            if summary is None:
                continue
            alias = summary.get("aliases", {}).get(parts[i])
            if alias is not None:
                rest = parts[i + 1 :]
                rewritten = ".".join([alias] + rest)
                if rewritten != dotted:
                    resolved = self.resolve_qual(rewritten, _seen)
                    if resolved.kind != "ext":
                        return resolved
            break
        return ResolvedTarget("ext", dotted)

    def resolve_annotation(self, module: str, ann: Optional[str]) -> Optional[str]:
        """Annotation spec -> class fqn (``".Name"`` means module-local)."""
        if ann is None:
            return None
        if ann.startswith("."):
            candidate = f"{module}{ann}" if module else ann[1:]
            return candidate if candidate in self.classes else None
        resolved = self.resolve_qual(ann)
        return resolved.name if resolved.kind == "class" else None

    def find_method(self, class_fqn: str, attr: str) -> Optional[str]:
        """Locate ``attr`` on a class or (one level) its bases."""
        cls = self.classes.get(class_fqn)
        if cls is None:
            return None
        candidate = f"{class_fqn}.{attr}"
        if candidate in self.functions:
            return candidate
        module = self.class_modules.get(class_fqn, "")
        for base in cls.get("bases", []):
            base_fqn = self.resolve_annotation(module, base) or (
                base if base in self.classes else None
            )
            if base_fqn is None:
                resolved = self.resolve_qual(base)
                base_fqn = resolved.name if resolved.kind == "class" else None
            if base_fqn is not None:
                candidate = f"{base_fqn}.{attr}"
                if candidate in self.functions:
                    return candidate
        return None

    def resolve_target(self, fn: FnInfo, site: dict) -> ResolvedTarget:
        key = (fn.fqn, _refkey(site.get("t", ["u"])), site.get("line"), site.get("col"))
        cached = self._target_memo.get(key)
        if cached is not None:
            return cached
        resolved = self._resolve_target(fn, site.get("t", ["u"]))
        self._target_memo[key] = resolved
        return resolved

    def _resolve_target(self, fn: FnInfo, tspec) -> ResolvedTarget:
        if not tspec:
            return _UNKNOWN_TARGET
        tag = tspec[0]
        if tag == "q":
            return self.resolve_qual(tspec[1])
        if tag == "l":
            name = tspec[1]
            # nested def in this function
            if name in fn.summary.get("locals", {}):
                nested = f"{fn.module}.{fn.qualpath}.{name}" if fn.module else f"{fn.qualpath}.{name}"
                if nested in self.functions:
                    return ResolvedTarget("fn", nested)
            module_fqn = f"{fn.module}.{name}" if fn.module else name
            if module_fqn in self.functions:
                return ResolvedTarget("fn", module_fqn)
            if module_fqn in self.classes:
                return ResolvedTarget("class", module_fqn)
            alias = self.modules.get(fn.module, {}).get("aliases", {}).get(name)
            if alias is not None:
                return self.resolve_qual(alias)
            return ResolvedTarget("builtin", name)
        if tag == "m":
            base_ref, attr = tspec[1], tspec[2]
            base_type = self.type_of(fn, base_ref)
            if base_type is not None:
                method = self.find_method(base_type, attr)
                if method is not None:
                    info = self.functions[method]
                    offset = 1 if info.summary.get("kind") in ("method", "classmethod") else 0
                    return ResolvedTarget("fn", method, self_offset=offset)
            return ResolvedTarget("unknown", attr)
        return _UNKNOWN_TARGET

    # ---------------------------------------------------------- static types
    def type_of(self, fn: FnInfo, ref, depth: int = 0) -> Optional[str]:
        """Best-effort class fqn of a value reference (None when unknown)."""
        if depth > MAX_EVAL_DEPTH or not ref:
            return None
        key = (fn.fqn, _refkey(ref))
        if key in self._type_memo:
            return self._type_memo[key]
        if key in self._type_in_progress:
            return None
        self._type_in_progress.add(key)
        try:
            result = self._type_of(fn, ref, depth)
        finally:
            self._type_in_progress.discard(key)
        self._type_memo[key] = result
        return result

    def _self_class(self, fn: FnInfo) -> Optional[str]:
        cls = fn.summary.get("class")
        if cls is None or fn.summary.get("kind") not in ("method", "classmethod"):
            return None
        fqn = f"{fn.module}.{cls}" if fn.module else cls
        return fqn if fqn in self.classes else None

    def _type_of(self, fn: FnInfo, ref, depth: int) -> Optional[str]:
        tag = ref[0]
        summary = fn.summary
        if tag == "n":
            name = ref[1]
            ann = summary.get("annots", {}).get(name)
            resolved = self.resolve_annotation(fn.module, ann)
            if resolved is not None:
                return resolved
            params = summary.get("params", [])
            if params and params[0] == name and name not in summary.get("assigns", {}):
                own = self._self_class(fn)
                if own is not None:
                    return own
            assigned = summary.get("assigns", {}).get(name)
            if assigned is not None:
                return self.type_of(fn, assigned, depth + 1)
            return None
        if tag == "p":
            params = summary.get("params", [])
            i = ref[1]
            if i >= len(params):
                return None
            if i == 0:
                own = self._self_class(fn)
                if own is not None:
                    return own
            ann = summary.get("annots", {}).get(params[i].lstrip("*"))
            return self.resolve_annotation(fn.module, ann)
        if tag == "r":
            calls = summary.get("calls", [])
            if ref[1] >= len(calls):
                return None
            site = calls[ref[1]]
            target = self.resolve_target(fn, site)
            if target.kind == "class":
                return target.name
            if target.kind == "fn":
                callee = self.functions[target.name]
                return self.resolve_annotation(callee.module, callee.summary.get("rann"))
            return None
        if tag == "a":
            base_type = self.type_of(fn, ref[1], depth + 1)
            if base_type is None:
                return None
            entry = self.classes[base_type].get("attrs", {}).get(ref[2])
            if entry is None:
                return None
            module = self.class_modules.get(base_type, "")
            resolved = self.resolve_annotation(module, entry.get("ann"))
            if resolved is not None:
                return resolved
            init = self.functions.get(f"{base_type}.__init__")
            if init is not None:
                return self.type_of(init, entry.get("ref", ["u"]), depth + 1)
            return None
        return None

    # -------------------------------------------------------- kind evaluation
    def eval_kinds(
        self,
        fn: FnInfo,
        ref,
        bindings: Optional[List[Kinds]] = None,
        depth: int = 0,
    ) -> Kinds:
        """Abstract kind set of a value reference inside ``fn``.

        ``bindings`` gives concrete kind sets for the function's parameters
        (call-site sensitivity); without them parameters are symbolic.
        """
        if depth > MAX_EVAL_DEPTH or not ref:
            return UNK
        bkey = (
            None
            if bindings is None
            else tuple(tuple(sorted(b)) for b in bindings)
        )
        key = (fn.fqn, _refkey(ref), bkey)
        cached = self._kind_memo.get(key)
        if cached is not None:
            return cached
        if key in self._kind_in_progress:
            return UNK
        self._kind_in_progress.add(key)
        try:
            result = self._eval_kinds(fn, ref, bindings, depth)
        finally:
            self._kind_in_progress.discard(key)
        self._kind_memo[key] = result
        return result

    def _param_kinds(
        self, fn: FnInfo, index: int, bindings: Optional[List[Kinds]]
    ) -> Kinds:
        if bindings is not None:
            if index < len(bindings):
                return bindings[index]
            return UNK
        return frozenset({f"param:{index}"})

    def _eval_kinds(
        self, fn: FnInfo, ref, bindings: Optional[List[Kinds]], depth: int
    ) -> Kinds:
        tag = ref[0]
        summary = fn.summary
        if tag == "c":
            return _CONST_KINDS.get(ref[1], UNK)
        if tag == "u":
            return UNK
        if tag == "p":
            return self._param_kinds(fn, ref[1], bindings)
        if tag == "p?":
            params = summary.get("params", [])
            if ref[1] in params:
                return self._param_kinds(fn, params.index(ref[1]), bindings)
            return UNK
        if tag == "n":
            name = ref[1]
            assigned = summary.get("assigns", {}).get(name)
            if assigned is not None:
                return self.eval_kinds(fn, assigned, bindings, depth + 1)
            params = summary.get("params", [])
            if name in params:
                return self._param_kinds(fn, params.index(name), bindings)
            alias = self.modules.get(fn.module, {}).get("aliases", {}).get(name)
            if alias is not None:
                return self._qual_kinds(alias)
            return UNK
        if tag == "q":
            return self._qual_kinds(ref[1])
        if tag == "s":
            return self.eval_kinds(fn, ref[1], bindings, depth + 1)
        if tag == "b":
            left = self.eval_kinds(fn, ref[1], bindings, depth + 1)
            right = self.eval_kinds(fn, ref[2], bindings, depth + 1)
            joined = left | right
            if joined & {"f64", "f32"}:
                joined = joined - _ABSORBED_SCALARS
            return joined or UNK
        if tag == "j":
            out: Kinds = frozenset()
            for sub in ref[1:]:
                out = out | self.eval_kinds(fn, sub, bindings, depth + 1)
            return out or UNK
        if tag == "a":
            return self._attr_kinds(fn, ref, bindings, depth)
        if tag == "r":
            calls = summary.get("calls", [])
            if ref[1] >= len(calls):
                return UNK
            return self.call_result_kinds(fn, calls[ref[1]], bindings, depth + 1)
        return UNK

    def _qual_kinds(self, dotted: str) -> Kinds:
        kind = _DTYPE_QUAL_KINDS.get(dotted)
        if kind is not None:
            return frozenset({kind})
        if dotted in ("numpy.pi", "numpy.e", "math.pi", "math.e"):
            return frozenset({"pyfloat"})
        return UNK

    def _attr_kinds(
        self, fn: FnInfo, ref, bindings: Optional[List[Kinds]], depth: int
    ) -> Kinds:
        base_type = self.type_of(fn, ref[1])
        if base_type is None:
            return UNK
        entry = self.classes[base_type].get("attrs", {}).get(ref[2])
        if entry is None:
            return UNK
        init = self.functions.get(f"{base_type}.__init__")
        if init is None:
            return UNK
        # Evaluate the __init__-time value in the constructor's own frame
        # (symbolic parameters): seeded/unseeded-ness decided at construction
        # survives into every later read of the attribute.
        return self.eval_kinds(init, entry.get("ref", ["u"]), None, depth + 1)

    # -------------------------------------------------------------- call eval
    def arg_kinds_at_site(
        self,
        fn: FnInfo,
        site: dict,
        bindings: Optional[List[Kinds]] = None,
        depth: int = 0,
    ) -> List[Tuple[Optional[str], Kinds]]:
        """Kind sets for every argument at a call site: ``(kwname, kinds)``
        pairs, kwname None for positionals."""
        out: List[Tuple[Optional[str], Kinds]] = []
        for arg in site.get("args", []):
            out.append((None, self.eval_kinds(fn, arg, bindings, depth + 1)))
        for name, ref in site.get("kw", {}).items():
            out.append((name, self.eval_kinds(fn, ref, bindings, depth + 1)))
        return out

    def _callee_bindings(
        self,
        caller: FnInfo,
        site: dict,
        callee: FnInfo,
        self_offset: int,
        bindings: Optional[List[Kinds]],
        depth: int,
    ) -> List[Kinds]:
        params = callee.summary.get("params", [])
        result: List[Kinds] = [UNK] * len(params)
        bound = set(range(self_offset))
        pos_index = self_offset
        for arg in site.get("args", []):
            if pos_index >= len(params) or params[pos_index].startswith("*"):
                break  # *args swallows the rest: give up on positional mapping
            result[pos_index] = self.eval_kinds(caller, arg, bindings, depth + 1)
            bound.add(pos_index)
            pos_index += 1
        by_name = {p.lstrip("*"): i for i, p in enumerate(params)}
        for name, ref in site.get("kw", {}).items():
            i = by_name.get(name)
            if i is not None:
                result[i] = self.eval_kinds(caller, ref, bindings, depth + 1)
                bound.add(i)
        # Only parameters with no argument at this site fall back to the
        # callee's declared defaults (evaluated in the callee's own frame).
        # An explicitly-passed argument keeps its kinds even when unknown —
        # ``ensure_rng(config.seed)`` must not collapse to the None default.
        defaults = callee.summary.get("defaults", {})
        for i, p in enumerate(params):
            if i not in bound and p.lstrip("*") in defaults:
                result[i] = self.eval_kinds(
                    callee, defaults[p.lstrip("*")], None, depth + 1
                )
        return result

    def call_result_kinds(
        self,
        fn: FnInfo,
        site: dict,
        bindings: Optional[List[Kinds]],
        depth: int,
    ) -> Kinds:
        if depth > MAX_EVAL_DEPTH:
            return UNK
        target = self.resolve_target(fn, site)
        if target.kind == "ext":
            return self._external_call_kinds(fn, site, target.name, bindings, depth)
        if target.kind == "builtin":
            if target.name == "open":
                return frozenset({"file"})
            if target.name == "float":
                return frozenset({"pyfloat"})
            if target.name in ("int", "len", "round"):
                return frozenset({"int"})
            if target.name == "str":
                return frozenset({"str"})
            return UNK
        if target.kind == "class":
            return UNK  # instances carry no kind; types flow via type_of
        if target.kind == "fn":
            callee = self.functions[target.name]
            callee_bindings = self._callee_bindings(
                fn, site, callee, target.self_offset, bindings, depth
            )
            returns = callee.summary.get("returns", [])
            if not returns:
                return frozenset({"none"})
            out: Kinds = frozenset()
            for ret in returns:
                out = out | self.eval_kinds(callee, ret, callee_bindings, depth + 1)
            return out or UNK
        # Unresolved method call: model by method name.
        tspec = site.get("t", ["u"])
        if tspec[0] == "m":
            return self._method_call_kinds(fn, site, tspec, bindings, depth)
        return UNK

    def _dtype_kind(
        self, fn: FnInfo, ref, bindings: Optional[List[Kinds]], depth: int
    ) -> Optional[str]:
        """Resolve a ``dtype=`` argument reference to a kind tag."""
        if not ref or depth > MAX_EVAL_DEPTH:
            return None
        tag = ref[0]
        if tag == "q":
            return _DTYPE_QUAL_KINDS.get(ref[1])
        if tag == "c" and ref[1] == "str" and len(ref) > 2:
            return _DTYPE_STR_KINDS.get(ref[2])
        if tag == "n":
            assigned = fn.summary.get("assigns", {}).get(ref[1])
            if assigned is not None:
                return self._dtype_kind(fn, assigned, bindings, depth + 1)
            alias = self.modules.get(fn.module, {}).get("aliases", {}).get(ref[1])
            if alias is not None:
                return _DTYPE_QUAL_KINDS.get(alias)
        return None

    def _dtype_arg(self, site: dict) -> Optional[list]:
        return site.get("kw", {}).get("dtype")

    def _external_call_kinds(
        self,
        fn: FnInfo,
        site: dict,
        dotted: str,
        bindings: Optional[List[Kinds]],
        depth: int,
    ) -> Kinds:
        if dotted in _RNG_CONSTRUCTORS:
            args = site.get("args", [])
            seed_ref = args[0] if args else site.get("kw", {}).get("seed")
            if seed_ref is None:
                return frozenset({"rng?"})
            seed_kinds = self.eval_kinds(fn, seed_ref, bindings, depth + 1)
            out = set()
            for k in seed_kinds:
                if k == "none":
                    out.add("rng?")
                elif k.startswith("param:"):
                    out.add("rngc:" + k.split(":", 1)[1])
                elif k == "unk":
                    out.add("rng")  # unknown seed: assume seeded (no FP storm)
                else:
                    out.add("rng")
            return frozenset(out) or frozenset({"rng"})
        if dotted in ("numpy.float64", "numpy.double"):
            return frozenset({"f64"})
        if dotted in ("numpy.float32", "numpy.single"):
            return frozenset({"f32"})
        if dotted in _F64_DEFAULT_CREATORS:
            dt = self._dtype_arg(site)
            if dt is not None:
                kind = self._dtype_kind(fn, dt, bindings, depth)
                return frozenset({kind}) if kind else UNK
            return frozenset({"f64"})
        if dotted in _PASSTHROUGH_CREATORS:
            dt = self._dtype_arg(site)
            if dt is not None:
                kind = self._dtype_kind(fn, dt, bindings, depth)
                return frozenset({kind}) if kind else UNK
            args = site.get("args", [])
            if args:
                kinds = self.eval_kinds(fn, args[0], bindings, depth + 1)
                if "pyfloat" in kinds:
                    kinds = (kinds - {"pyfloat"}) | {"f64"}
                return kinds
            return UNK
        if dotted in _PASSTHROUGH_QUALS:
            args = site.get("args", [])
            if args:
                return self.eval_kinds(fn, args[0], bindings, depth + 1)
            return UNK
        if dotted == "pathlib.Path":
            return UNK
        return UNK

    def _method_call_kinds(
        self,
        fn: FnInfo,
        site: dict,
        tspec,
        bindings: Optional[List[Kinds]],
        depth: int,
    ) -> Kinds:
        attr = tspec[2]
        if attr == "open":
            return frozenset({"file"})
        if attr == "astype":
            args = site.get("args", [])
            dt = self._dtype_arg(site) or (args[0] if args else None)
            kind = self._dtype_kind(fn, dt, bindings, depth) if dt is not None else None
            return frozenset({kind}) if kind else UNK
        if attr in _KIND_PRESERVING_METHODS:
            return self.eval_kinds(fn, tspec[1], bindings, depth + 1)
        if attr == "item":
            return frozenset({"pyfloat"})
        return UNK

    # ----------------------------------------------------------- call graph
    def _build_edges(self) -> None:
        edges: Dict[str, List[Tuple[int, str]]] = {}
        callers: Dict[str, List[Tuple[str, int]]] = {}
        for fqn, fn in self.functions.items():
            out: List[Tuple[int, str]] = []
            for i, site in enumerate(fn.summary.get("calls", [])):
                target = self.resolve_target(fn, site)
                callee_fqn: Optional[str] = None
                if target.kind == "fn":
                    callee_fqn = target.name
                elif target.kind == "class":
                    init = f"{target.name}.__init__"
                    if init in self.functions:
                        callee_fqn = init
                if callee_fqn is not None:
                    out.append((i, callee_fqn))
                    callers.setdefault(callee_fqn, []).append((fqn, i))
            edges[fqn] = out
        self._edges = edges
        self._callers = callers

    @property
    def call_edges(self) -> Dict[str, List[Tuple[int, str]]]:
        """fqn -> [(call_site_index, callee_fqn)] over project functions."""
        if self._edges is None:
            self._build_edges()
        return self._edges  # type: ignore[return-value]

    def callers_of(self, fqn: str) -> List[Tuple[str, int]]:
        if self._callers is None:
            self._build_edges()
        return self._callers.get(fqn, [])  # type: ignore[union-attr]

    # -------------------------------------------------------------- iteration
    def iter_functions(self) -> Iterator[FnInfo]:
        for fqn in sorted(self.functions):
            yield self.functions[fqn]

    def fn_path(self, fqn: str) -> str:
        return self.functions[fqn].path

    def class_of_method(self, fn: FnInfo) -> Optional[str]:
        cls = fn.summary.get("class")
        if cls is None:
            return None
        fqn = f"{fn.module}.{cls}" if fn.module else cls
        return fqn if fqn in self.classes else None
