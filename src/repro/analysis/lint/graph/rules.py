"""Interprocedural rule families over a :class:`ProgramGraph`.

Each checker takes the graph plus the
:class:`~repro.analysis.lint.graph.engine.GraphConfig` path policy and
returns plain :class:`~repro.analysis.lint.findings.Finding` lists; the
engine owns selection, suppression, ordering, and baselines.

- **RPL011** (`graph-rng-taint`): an unseeded RNG (``default_rng()`` with no
  seed, or a seed that is ``None``) flowing into a function defined under
  the determinism-sensitive paths.  Detection is call-site sensitive and
  propagates *conditional* sinks to callers: a helper that forwards its
  ``seed`` parameter into a sink makes every caller passing ``None`` (or an
  unseeded generator) a violation at **that caller's** call site.
- **RPL012** (`graph-dtype-mix`): float64 and float32 values meeting at one
  call into the numeric fast path — the static twin of the runtime upcast
  sanitizer.  Uniform-precision calls are never flagged; serving's
  deliberate all-float64 scoring stays clean.
- **RPL013** (`graph-async-discipline`): blocking work (file I/O,
  ``time.sleep``, persistence, subprocess) reachable from ``async def``
  handlers in the serving layer without an executor hop
  (``asyncio.to_thread`` / ``run_in_executor``); plus writes to attributes
  of lock-owning classes from handler-reachable code without the lock held.
- **RPL014** (`graph-funnel-escape`): call paths from the consumer layers
  (models/eval/serving) that reach raw kernel backends or the ``np.save``
  family through helpers, bypassing the dispatch/store/io funnels.
  Propagation stops inside the funnel modules: going *through* the funnel
  is the sanctioned route.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.graph.program import FnInfo, ProgramGraph

__all__ = ["check_rpl011", "check_rpl012", "check_rpl013", "check_rpl014", "GRAPH_CHECKERS"]


def _matches(path: str, needles) -> bool:
    return any(n in path for n in needles)


def _site_finding(code: str, rule: str, fn: FnInfo, site: dict, message: str) -> Finding:
    return Finding(
        path=fn.path,
        line=site.get("line", 0),
        col=site.get("col", 0),
        code=code,
        message=message,
        rule=rule,
        end_col=site.get("end", 0),
    )


def _short(fqn: str) -> str:
    parts = fqn.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) > 1 else fqn


# =========================================================== RPL011: RNG taint

def check_rpl011(graph: ProgramGraph, config) -> List[Finding]:
    """Determinism taint: unseeded RNG values reaching taint-sink calls.

    Pass 1 flags direct ``rng?`` arguments at sink call sites; conditional
    taints (``rngc:i`` — tainted iff param *i* is None) seed a worklist that
    walks callers to find the concrete ``None``/unseeded origin, reporting at
    the outermost call site with the propagation chain in the message.
    """
    findings: List[Finding] = []
    reported: Set[Tuple[str, int, int]] = set()
    # (fqn, param_index, mode): mode "taint" = violated by an unseeded RNG
    # argument; mode "none" = violated by a None argument (the forwarded-seed
    # shape of ``ensure_rng``).
    work: deque = deque()
    queued: Set[Tuple[str, int, str]] = set()

    def report(fn: FnInfo, site: dict, message: str) -> None:
        key = (fn.path, site.get("line", 0), site.get("col", 0))
        if key in reported:
            return
        reported.add(key)
        findings.append(_site_finding("RPL011", "graph-rng-taint", fn, site, message))

    def queue(fqn: str, index: int, mode: str, chain: Tuple[str, ...]) -> None:
        if len(chain) > config.max_depth:
            return
        if (fqn, index, mode) in queued:
            return
        queued.add((fqn, index, mode))
        work.append((fqn, index, mode, chain))

    # Pass 1: direct flows and seed conditional sinks at sink-call sites.
    for fn in graph.iter_functions():
        if _matches(fn.path, config.exempt_paths):
            continue
        for site_idx, callee_fqn in graph.call_edges.get(fn.fqn, []):
            callee = graph.functions[callee_fqn]
            if not _matches(callee.path, config.taint_sink_paths):
                continue
            if callee_fqn == fn.fqn:
                continue
            site = fn.summary["calls"][site_idx]
            for _, kinds in graph.arg_kinds_at_site(fn, site):
                if "rng?" in kinds:
                    report(
                        fn,
                        site,
                        "unseeded RNG flows into determinism-sensitive "
                        f"'{_short(callee_fqn)}' ({callee.path}); thread a seeded "
                        "generator (repro.utils.rng.ensure_rng with an explicit "
                        "seed) instead",
                    )
                for k in kinds:
                    if k.startswith("param:"):
                        queue(fn.fqn, int(k.split(":", 1)[1]), "taint", (callee_fqn,))
                    elif k.startswith("rngc:"):
                        queue(fn.fqn, int(k.split(":", 1)[1]), "none", (callee_fqn,))

    # Pass 2: propagate conditional sinks to callers.
    while work:
        fqn, index, mode, chain = work.popleft()
        sink = graph.functions.get(fqn)
        if sink is None:
            continue
        params = sink.summary.get("params", [])
        if index >= len(params):
            continue
        pname = params[index].lstrip("*")
        for caller_fqn, site_idx in graph.callers_of(fqn):
            caller = graph.functions[caller_fqn]
            if _matches(caller.path, config.exempt_paths) or caller_fqn == fqn:
                continue
            site = caller.summary["calls"][site_idx]
            target = graph.resolve_target(caller, site)
            offset = target.self_offset if target.kind == "fn" else 0
            ref, from_default = _arg_ref_for_param(sink, site, index, offset)
            if ref is None:
                continue
            holder = sink if from_default else caller
            kinds = graph.eval_kinds(holder, ref, None)
            via = f"via parameter '{pname}' of '{_short(fqn)}' into '{_short(chain[0])}'"
            if mode == "taint" and "rng?" in kinds:
                report(caller, site, f"unseeded RNG flows {via}")
            if mode == "none" and "none" in kinds:
                report(
                    caller,
                    site,
                    f"None seed makes the RNG unseeded {via}; pass an explicit seed",
                )
            for k in kinds:
                if k.startswith("param:"):
                    j = int(k.split(":", 1)[1])
                    queue(caller_fqn, j, mode, chain + (fqn,))
                elif k.startswith("rngc:") and mode == "taint":
                    j = int(k.split(":", 1)[1])
                    queue(caller_fqn, j, "none", chain + (fqn,))
    return findings


def _arg_ref_for_param(
    callee: FnInfo, site: dict, index: int, self_offset: int
) -> Tuple[Optional[list], bool]:
    """The reference bound to callee parameter ``index`` at this site.

    Returns ``(ref, from_default)``; ``from_default`` means the ref lives in
    the callee's frame (an omitted argument falling back to the default).
    """
    params = callee.summary.get("params", [])
    pname = params[index].lstrip("*")
    kw = site.get("kw", {})
    if pname in kw:
        return kw[pname], False
    pos = index - self_offset
    args = site.get("args", [])
    if 0 <= pos < len(args):
        return args[pos], False
    default = callee.summary.get("defaults", {}).get(pname)
    if default is not None:
        return default, True
    return None, False


# ========================================================= RPL012: dtype mix

def check_rpl012(graph: ProgramGraph, config) -> List[Finding]:
    """Dtype lattice: float64 meeting float32 at a fast-path call site.

    Evaluates every argument's kind set at calls into ``dtype_sink_paths``;
    a site where one argument may be f64 and another may be f32 silently
    upcasts (or truncates) inside the kernel, so it is flagged.
    """
    findings: List[Finding] = []
    for fn in graph.iter_functions():
        if _matches(fn.path, config.exempt_paths):
            continue
        for site_idx, callee_fqn in graph.call_edges.get(fn.fqn, []):
            callee = graph.functions[callee_fqn]
            if not _matches(callee.path, config.dtype_sink_paths):
                continue
            if callee_fqn == fn.fqn:
                continue
            site = fn.summary["calls"][site_idx]
            kinds_per_arg = [k for _, k in graph.arg_kinds_at_site(fn, site)]
            has64 = any("f64" in k for k in kinds_per_arg)
            has32 = any("f32" in k for k in kinds_per_arg)
            if has64 and has32:
                findings.append(
                    _site_finding(
                        "RPL012",
                        "graph-dtype-mix",
                        fn,
                        site,
                        "float64 and float32 values meet at this call into "
                        f"'{_short(callee_fqn)}' ({callee.path}); numpy will "
                        "silently upcast — convert explicitly at the boundary",
                    )
                )
    return findings


# ================================================== RPL013: async discipline

#: External calls that block the event loop outright.
_BLOCKING_QUALS = frozenset(
    {
        "time.sleep",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.load",
        "numpy.savetxt",
        "numpy.loadtxt",
        "json.dump",
        "json.load",
        "pickle.dump",
        "pickle.load",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.rmdir",
    }
)

#: Path-like methods that hit the filesystem regardless of receiver kind.
_BLOCKING_METHODS_ALWAYS = frozenset(
    {"write_text", "read_text", "write_bytes", "read_bytes", "unlink", "mkdir", "touch"}
)

#: Stream methods that block only when the receiver is a real file handle.
_BLOCKING_METHODS_ON_FILE = frozenset(
    {"write", "read", "readline", "readlines", "writelines", "flush", "close"}
)


def _site_blocking_reason(graph: ProgramGraph, fn: FnInfo, site: dict) -> Optional[str]:
    target = graph.resolve_target(fn, site)
    if target.kind == "fn" or target.kind == "class":
        return None  # project calls are handled transitively
    tspec = site.get("t", ["u"])
    if tspec[0] == "q" and tspec[1] in _BLOCKING_QUALS:
        return f"'{tspec[1]}'"
    if tspec[0] == "l" and tspec[1] == "open":
        return "'open()'"
    if tspec[0] == "m":
        attr = tspec[2]
        if attr == "open":
            return f"'.{attr}()'"
        if attr in _BLOCKING_METHODS_ALWAYS:
            return f"'.{attr}()'"
        if attr in _BLOCKING_METHODS_ON_FILE:
            kinds = graph.eval_kinds(fn, tspec[1], None)
            if "file" in kinds:
                return f"'.{attr}()' on a file handle"
    return None


def _blocking_witness(
    graph: ProgramGraph, fqn: str, memo: Dict[str, Optional[str]], visiting: Set[str]
) -> Optional[str]:
    """First blocking reason reachable from ``fqn`` (non-hop paths only)."""
    if fqn in memo:
        return memo[fqn]
    if fqn in visiting:
        return None
    visiting.add(fqn)
    fn = graph.functions[fqn]
    witness: Optional[str] = None
    edge_sites = {i: callee for i, callee in graph.call_edges.get(fqn, [])}
    for i, site in enumerate(fn.summary.get("calls", [])):
        if site.get("hop"):
            continue
        reason = _site_blocking_reason(graph, fn, site)
        if reason is not None:
            witness = reason
            break
        callee = edge_sites.get(i)
        if callee is not None:
            inner = _blocking_witness(graph, callee, memo, visiting)
            if inner is not None:
                witness = f"'{_short(callee)}' -> {inner}"
                break
    visiting.discard(fqn)
    memo[fqn] = witness
    return witness


def _handler_reachable(graph: ProgramGraph, config) -> Set[str]:
    """Project functions reachable from serving-layer async handlers."""
    roots = [
        fn.fqn
        for fn in graph.iter_functions()
        if fn.summary.get("async")
        and _matches(fn.path, config.async_paths)
        and not _matches(fn.path, config.exempt_paths)
    ]
    seen: Set[str] = set(roots)
    queue = deque(roots)
    while queue:
        fqn = queue.popleft()
        fn = graph.functions[fqn]
        calls = fn.summary.get("calls", [])
        for i, callee in graph.call_edges.get(fqn, []):
            if i < len(calls) and calls[i].get("hop"):
                continue
            if callee not in seen:
                seen.add(callee)
                queue.append(callee)
    return seen


def check_rpl013(graph: ProgramGraph, config) -> List[Finding]:
    """Async/lock discipline inside ``async_paths``.

    Sub-rule A: blocking calls (time.sleep, file I/O, subprocess, ...)
    reachable from an async handler without an executor hop
    (``asyncio.to_thread`` / ``run_in_executor``) — reported at the
    serving-side boundary call.  Sub-rule B: writes to attributes of a
    lock-owning class performed outside a ``with self.<lock>:`` block.
    """
    findings: List[Finding] = []
    reported: Set[Tuple[str, int, int]] = set()
    reachable = _handler_reachable(graph, config)
    memo: Dict[str, Optional[str]] = {}

    def report(fn: FnInfo, loc: dict, message: str) -> None:
        key = (fn.path, loc.get("line", 0), loc.get("col", 0))
        if key in reported:
            return
        reported.add(key)
        findings.append(
            _site_finding("RPL013", "graph-async-discipline", fn, loc, message)
        )

    for fqn in sorted(reachable):
        fn = graph.functions[fqn]
        if not _matches(fn.path, config.async_paths):
            continue  # report at the serving-side boundary only
        if _matches(fn.path, config.exempt_paths):
            continue
        edge_sites = {i: callee for i, callee in graph.call_edges.get(fqn, [])}
        for i, site in enumerate(fn.summary.get("calls", [])):
            if site.get("hop"):
                continue
            reason = _site_blocking_reason(graph, fn, site)
            if reason is not None:
                report(
                    fn,
                    site,
                    f"blocking call {reason} is reachable from an async handler; "
                    "move it behind asyncio.to_thread()/run_in_executor()",
                )
                continue
            callee = edge_sites.get(i)
            if callee is None:
                continue
            callee_fn = graph.functions[callee]
            if _matches(callee_fn.path, config.async_paths):
                continue  # its own serving-side sites get reported directly
            witness = _blocking_witness(graph, callee, memo, set())
            if witness is not None:
                report(
                    fn,
                    site,
                    f"'{_short(callee)}' blocks ({witness}) and is called from "
                    "async-handler-reachable code without an executor hop",
                )

    # Lock discipline: handler-reachable methods of lock-owning classes must
    # hold the owning lock when writing shared attributes.
    for fqn in sorted(reachable):
        fn = graph.functions[fqn]
        if _matches(fn.path, config.exempt_paths):
            continue
        cls_fqn = graph.class_of_method(fn)
        if cls_fqn is None:
            continue
        lock_attrs = graph.classes[cls_fqn].get("lock_attrs", [])
        if not lock_attrs or fn.qualpath.endswith("__init__"):
            continue
        for write in fn.summary.get("awrites", []):
            if write["attr"] in lock_attrs:
                continue
            if any(lock in write.get("locks", []) for lock in lock_attrs):
                continue
            report(
                fn,
                write,
                f"attribute 'self.{write['attr']}' of lock-owning "
                f"'{_short(cls_fqn)}' is written from handler-reachable code "
                f"without holding 'self.{lock_attrs[0]}'",
            )
    return findings


# ==================================================== RPL014: funnel escape

_SAVE_SINKS = frozenset(
    {"numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.load"}
)


def _in_modules(module: str, prefixes) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _direct_sink(graph: ProgramGraph, fn: FnInfo, site: dict, config) -> Optional[str]:
    target = graph.resolve_target(fn, site)
    if target.kind == "ext" and target.name in _SAVE_SINKS:
        return f"'{target.name}'"
    if target.kind == "fn":
        callee = graph.functions[target.name]
        if _in_modules(callee.module, config.kernel_backend_modules):
            return f"raw kernel '{_short(target.name)}'"
    if target.kind == "class":
        init = graph.functions.get(f"{target.name}.__init__")
        if init is not None and _in_modules(init.module, config.kernel_backend_modules):
            return f"raw kernel '{_short(target.name)}'"
    return None


def _escape_witness(
    graph: ProgramGraph,
    fqn: str,
    config,
    memo: Dict[str, Optional[str]],
    visiting: Set[str],
) -> Optional[str]:
    if fqn in memo:
        return memo[fqn]
    if fqn in visiting:
        return None
    fn = graph.functions[fqn]
    if _in_modules(fn.module, config.funnel_modules):
        memo[fqn] = None  # the funnel absorbs: going through it is sanctioned
        return None
    visiting.add(fqn)
    witness: Optional[str] = None
    edge_sites = {i: callee for i, callee in graph.call_edges.get(fqn, [])}
    for i, site in enumerate(fn.summary.get("calls", [])):
        reason = _direct_sink(graph, fn, site, config)
        if reason is not None:
            witness = reason
            break
        callee = edge_sites.get(i)
        if callee is not None:
            inner = _escape_witness(graph, callee, config, memo, visiting)
            if inner is not None:
                witness = f"'{_short(callee)}' -> {inner}"
                break
    visiting.discard(fqn)
    memo[fqn] = witness
    return witness


def check_rpl014(graph: ProgramGraph, config) -> List[Finding]:
    """Funnel escape: consumer code reaching raw kernels or ``np.save``
    family outside the sanctioned dispatch/store funnels.

    A DFS from each consumer-path function finds an escape witness —
    a call chain that hits a kernel-backend module or persistence sink
    without passing through a ``funnel_modules`` entry; propagation is
    absorbed (stops) inside funnel modules themselves.
    """
    findings: List[Finding] = []
    memo: Dict[str, Optional[str]] = {}
    for fn in graph.iter_functions():
        if not _matches(fn.path, config.funnel_consumer_paths):
            continue
        if _matches(fn.path, config.exempt_paths):
            continue
        if _in_modules(fn.module, config.funnel_modules):
            continue
        edge_sites = {i: callee for i, callee in graph.call_edges.get(fn.fqn, [])}
        for i, site in enumerate(fn.summary.get("calls", [])):
            reason = _direct_sink(graph, fn, site, config)
            if reason is not None:
                findings.append(
                    _site_finding(
                        "RPL014",
                        "graph-funnel-escape",
                        fn,
                        site,
                        f"direct {reason} call bypasses the dispatch/store funnel; "
                        "route through repro.kernels.dispatch or repro.store",
                    )
                )
                continue
            callee = edge_sites.get(i)
            if callee is None:
                continue
            callee_fn = graph.functions[callee]
            if _in_modules(callee_fn.module, config.funnel_modules):
                continue
            if _matches(callee_fn.path, config.funnel_consumer_paths):
                continue  # reported at that function's own sites
            witness = _escape_witness(graph, callee, config, memo, set())
            if witness is not None:
                findings.append(
                    _site_finding(
                        "RPL014",
                        "graph-funnel-escape",
                        fn,
                        site,
                        f"'{_short(callee)}' reaches {witness}, bypassing the "
                        "dispatch/store funnel through a helper",
                    )
                )
    return findings


GRAPH_CHECKERS = (
    ("RPL011", check_rpl011),
    ("RPL012", check_rpl012),
    ("RPL013", check_rpl013),
    ("RPL014", check_rpl014),
)
