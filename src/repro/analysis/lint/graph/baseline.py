"""Baseline ratchet for graph-lint findings.

A baseline file freezes the currently-known findings so CI fails only on
*new* ones: existing debt is tolerated, growing it is not, and fixing a
finding makes its entry stale (reported informationally so the baseline can
be re-tightened).  Matching is exact on ``(path, code, line)`` — message
text may be reworded by a rule without invalidating the baseline, but moving
a finding (different line) counts as new, which is the conservative side of
the ratchet.

Format (JSON, sorted, stable)::

    {
      "schema_version": 1,
      "entries": [
        {"path": "src/...", "code": "RPL013", "line": 42, "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.analysis.lint.findings import Finding

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

BASELINE_SCHEMA_VERSION = 1


def load_baseline(path) -> List[dict]:
    """Read baseline entries; raises ``ValueError`` on a malformed file
    (a corrupt ratchet must fail loudly, not silently allow everything)."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise ValueError(f"baseline {path} is not valid JSON: {err}") from err
    if not isinstance(doc, dict) or doc.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported schema "
            f"(want schema_version={BASELINE_SCHEMA_VERSION})"
        )
    entries = doc.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: 'entries' must be a list")
    for e in entries:
        if not all(k in e for k in ("path", "code", "line")):
            raise ValueError(f"baseline {path}: entry missing path/code/line: {e}")
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[dict]
) -> Tuple[List[Finding], int, List[dict]]:
    """Split findings against the baseline.

    Returns ``(new_findings, matched_count, stale_entries)``: findings not
    in the baseline (these fail the run), how many were absorbed, and
    baseline entries that no longer match anything (candidates for removal).
    """
    keys = {(e["path"], e["code"], int(e["line"])) for e in entries}
    matched_keys = set()
    new: List[Finding] = []
    for f in findings:
        key = (f.path, f.code, f.line)
        if key in keys:
            matched_keys.add(key)
        else:
            new.append(f)
    stale = [
        e for e in entries if (e["path"], e["code"], int(e["line"])) not in matched_keys
    ]
    return new, len(findings) - len(new), stale


def write_baseline(path, findings: Sequence[Finding]) -> None:
    """Write the baseline for the given findings (sorted, deterministic)."""
    entries = [
        {"path": f.path, "code": f.code, "line": f.line, "message": f.message}
        for f in sorted(findings)
    ]
    doc = {"schema_version": BASELINE_SCHEMA_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
