"""Per-module function summaries for the interprocedural lint engine.

One :func:`summarize_module` call parses a file once and reduces every
function in it to a JSON-serializable :data:`FunctionSummary` dict: its
parameters (with default-value and annotation information), a flow-
insensitive map of local assignments, the abstract shape of its return
values, and one record per call site.  The whole-program engine
(:mod:`~repro.analysis.lint.graph.program`) never re-reads source — it
resolves and evaluates these summaries, which is what makes the content-
hash cache (:mod:`~repro.analysis.lint.graph.cache`) sufficient for warm
runs.

Abstract **value references** describe where a value came from without
keeping the AST around (all plain lists, so summaries round-trip through
JSON)::

    ["c", tag]            literal constant ("none", "int", "pyfloat", "str", …)
    ["c", "str", value]   string literal with its value (dtype strings matter)
    ["p", i]              the enclosing function's i-th parameter
    ["r", i]              the result of call site i of this function
    ["n", name]           a local (or enclosing-scope) name, resolved lazily
    ["q", dotted]         an imported attribute path ("numpy.float64")
    ["a", ref, attr]      attribute read off another value ("self._fh")
    ["s", ref]            subscript of a value (kind-preserving for arrays)
    ["b", ref, ref]       binary operation (kind join, float64-dominant)
    ["j", ref, ...]       join of alternatives (ternary, list elements)
    ["u"]                 unknown

Call **target references** are the same idea for the callee expression::

    ["q", dotted]         resolvable through the import-alias table
    ["l", name]           a bare name (same-module function, builtin, …)
    ["m", ref, attr]      method call on a value
    ["u"]                 anything else

Known unsoundness (by design, documented in DESIGN §12): dynamic dispatch
through ``getattr``/dicts of callables, monkeypatching, ``*args`` fan-out,
and reassignment order inside loops (the assignment map is last-write-wins,
flow-insensitive).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional

from repro.analysis.lint.suppressions import parse_suppressions

__all__ = ["SUMMARY_VERSION", "summarize_module", "ModuleSummaryError"]

#: Bump whenever the summary shape changes — stale cache entries are then
#: misses, never misreads.
SUMMARY_VERSION = 1

Ref = List[Any]

UNKNOWN: Ref = ["u"]

#: Calls that hand a callable to another thread/executor: the call itself is
#: non-blocking, and the callee it ships is sanctioned to block.
_EXECUTOR_HOP_QUALS = frozenset({"asyncio.to_thread"})
_EXECUTOR_HOP_METHODS = frozenset({"run_in_executor"})


class ModuleSummaryError(ValueError):
    """Raised when a module cannot be parsed (caller maps it to RPL000)."""


def _const_tag(value: Any) -> Ref:
    if value is None:
        return ["c", "none"]
    if isinstance(value, bool):
        return ["c", "bool"]
    if isinstance(value, int):
        return ["c", "int"]
    if isinstance(value, float):
        return ["c", "pyfloat"]
    if isinstance(value, complex):
        return ["c", "complex"]
    if isinstance(value, str):
        return ["c", "str", value]
    if isinstance(value, bytes):
        return ["c", "bytes"]
    return ["c", "other"]


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """local name -> dotted path, same policy as the lexical engine —
    except project-relative ``from repro.x import y`` keeps full paths so
    cross-module resolution works."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _qual_from_expr(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """``np.random.default_rng`` -> ``numpy.random.default_rng`` (or None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


_WRAPPER_ANNOTATIONS = {"Optional", "Union", "Annotated", "Final", "ClassVar", "List", "Sequence"}


def _annotation_name(node: Optional[ast.AST], aliases: Dict[str, str]) -> Optional[str]:
    """Extract the class a type annotation names.

    Returns a dotted path when the name routes through the alias table, or
    ``".Name"`` (leading dot) for a bare name to be resolved against the
    defining module's own classes at graph-build time.  ``Optional[X]`` and
    friends unwrap to ``X``; string annotations are parsed.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if base_name in _WRAPPER_ANNOTATIONS:
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                for elt in inner.elts:
                    if not (isinstance(elt, ast.Constant) and elt.value is None):
                        return _annotation_name(elt, aliases)
                return None
            return _annotation_name(inner, aliases)
        return _annotation_name(base, aliases)
    if isinstance(node, ast.Attribute):
        return _qual_from_expr(node, aliases)
    if isinstance(node, ast.Name):
        return aliases.get(node.id, "." + node.id)
    return None


class _FunctionExtractor(ast.NodeVisitor):
    """Summarizes one function body (without descending into nested defs)."""

    def __init__(self, fn: ast.AST, aliases: Dict[str, str], class_name: Optional[str]):
        self.fn = fn
        self.aliases = aliases
        self.class_name = class_name
        self.calls: List[dict] = []
        self.assigns: Dict[str, Ref] = {}
        self.annots: Dict[str, Optional[str]] = {}
        self.returns: List[Ref] = []
        self.awrites: List[dict] = []
        self.locals_defs: Dict[str, str] = {}
        self._lock_stack: List[str] = []
        self._await_depth = 0
        self._call_index: Dict[int, int] = {}
        self.params: List[str] = []
        self.defaults: Dict[str, Ref] = {}
        self._extract_signature()

    # ------------------------------------------------------------ signature
    def _extract_signature(self) -> None:
        args = getattr(self.fn, "args", None)
        if args is None:
            return
        ordered = list(args.posonlyargs) + list(args.args)
        for a in ordered:
            self.params.append(a.arg)
            if a.annotation is not None:
                self.annots[a.arg] = _annotation_name(a.annotation, self.aliases)
        # Positional defaults align with the tail of the ordered params.
        for a, default in zip(ordered[len(ordered) - len(args.defaults) :], args.defaults):
            self.defaults[a.arg] = self._ref(default)
        if args.vararg:
            self.params.append("*" + args.vararg.arg)
        for a, default in zip(args.kwonlyargs, args.kw_defaults):
            self.params.append(a.arg)
            if a.annotation is not None:
                self.annots[a.arg] = _annotation_name(a.annotation, self.aliases)
            if default is not None:
                self.defaults[a.arg] = self._ref(default)
        if args.kwarg:
            self.params.append("**" + args.kwarg.arg)

    @property
    def _self_name(self) -> Optional[str]:
        if self.class_name is None or not self.params:
            return None
        first = self.params[0]
        return first if not first.startswith("*") else None

    # ------------------------------------------------------------ value refs
    def _ref(self, node: Optional[ast.AST]) -> Ref:
        if node is None:
            return list(UNKNOWN)
        if isinstance(node, ast.Constant):
            return _const_tag(node.value)
        if isinstance(node, ast.Name):
            return ["n", node.id]
        if isinstance(node, ast.Attribute):
            qual = _qual_from_expr(node, self.aliases)
            if qual is not None:
                return ["q", qual]
            return ["a", self._ref(node.value), node.attr]
        if isinstance(node, ast.Subscript):
            return ["s", self._ref(node.value)]
        if isinstance(node, ast.BinOp):
            return ["b", self._ref(node.left), self._ref(node.right)]
        if isinstance(node, ast.UnaryOp):
            return self._ref(node.operand)
        if isinstance(node, ast.IfExp):
            return ["j", self._ref(node.body), self._ref(node.orelse)]
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            elts = [self._ref(e) for e in node.elts if not isinstance(e, ast.Starred)]
            if elts:
                return ["j"] + elts
            return list(UNKNOWN)
        if isinstance(node, ast.Call):
            return ["r", self._record_call(node)]
        if isinstance(node, ast.Await):
            return self._ref(node.value)
        if isinstance(node, ast.JoinedStr):
            return ["c", "str"]
        if isinstance(node, ast.NamedExpr):
            ref = self._ref(node.value)
            if isinstance(node.target, ast.Name):
                self.assigns[node.target.id] = ref
            return ref
        # Opaque expression shapes (comprehensions, dicts, compares, …):
        # the value is unknown, but any calls buried inside still matter for
        # reachability/blocking analysis — record them (idempotently).
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(sub)
        return list(UNKNOWN)

    def _target_ref(self, func: ast.AST) -> Ref:
        if isinstance(func, ast.Name):
            return ["l", func.id]
        if isinstance(func, ast.Attribute):
            qual = _qual_from_expr(func, self.aliases)
            if qual is not None:
                return ["q", qual]
            return ["m", self._ref(func.value), func.attr]
        return list(UNKNOWN)

    # ----------------------------------------------------------------- calls
    def _record_call(self, node: ast.Call) -> int:
        existing = self._call_index.get(id(node))
        if existing is not None:
            return existing
        # Reserve the slot before evaluating args: a nested call recorded
        # while building the arg refs must not race for the same index.
        self._call_index[id(node)] = len(self.calls)
        self.calls.append({})
        target = self._target_ref(node.func)
        hop = False
        if target[0] == "q" and target[1] in _EXECUTOR_HOP_QUALS:
            hop = True
        elif target[0] == "m" and target[2] in _EXECUTOR_HOP_METHODS:
            hop = True
        record = {
            "t": target,
            "args": [
                self._ref(a) for a in node.args if not isinstance(a, ast.Starred)
            ],
            "kw": {
                kw.arg: self._ref(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            },
            "line": node.lineno,
            "col": node.col_offset,
            "end": getattr(node, "end_col_offset", None) or 0,
            "hop": hop,
            "locks": list(self._lock_stack),
        }
        if self._await_depth:
            record["await"] = True
        index = self._call_index[id(node)]
        self.calls[index] = record
        return index

    # ---------------------------------------------------------------- visits
    def visit_Call(self, node: ast.Call) -> None:
        # Arguments are captured by _record_call via _ref (which records
        # nested calls recursively); only keyword-less ** and * spreads and
        # the func expression still need a walk for completeness of nested
        # call discovery.
        self._record_call(node)

    def visit_Await(self, node: ast.Await) -> None:
        self._await_depth += 1
        self.visit(node.value)
        self._await_depth -= 1

    def visit_Return(self, node: ast.Return) -> None:
        self.returns.append(self._ref(node.value))

    def visit_Assign(self, node: ast.Assign) -> None:
        ref = self._ref(node.value)
        for target in node.targets:
            self._assign_target(target, ref, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        ref = self._ref(node.value) if node.value is not None else list(UNKNOWN)
        if isinstance(node.target, ast.Name):
            self.annots[node.target.id] = _annotation_name(node.annotation, self.aliases)
        self._assign_target(node.target, ref, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        value = self._ref(node.value)
        if isinstance(node.target, ast.Name):
            prior = self.assigns.get(node.target.id, ["p?", node.target.id])
            self.assigns[node.target.id] = ["b", prior, value]
        elif isinstance(node.target, ast.Attribute):
            self._record_attr_write(node.target, node)

    def _assign_target(self, target: ast.AST, ref: Ref, stmt: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.assigns[target.id] = ref
        elif isinstance(target, ast.Attribute):
            self._record_attr_write(target, stmt, ref)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, list(UNKNOWN), stmt)

    def _record_attr_write(
        self, target: ast.Attribute, stmt: ast.AST, ref: Optional[Ref] = None
    ) -> None:
        base = target.value
        if not (isinstance(base, ast.Name) and base.id == self._self_name):
            return
        self.awrites.append(
            {
                "attr": target.attr,
                "ref": ref if ref is not None else list(UNKNOWN),
                "line": stmt.lineno,
                "col": stmt.col_offset,
                "end": getattr(stmt, "end_col_offset", None) or 0,
                "locks": list(self._lock_stack),
            }
        )

    # ------------------------------------------------------------------ with
    def _with_lock_names(self, node: ast.AST) -> List[str]:
        names = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == self._self_name
            ):
                names.append(expr.attr)
        return names

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        names = self._with_lock_names(node)
        for item in node.items:
            # _ref records any call (``with open(p) as f:``) and gives the
            # bound name the call's result, so file-kind tracking survives.
            ref = self._ref(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, ref, node)
        self._lock_stack.extend(names)
        for stmt in node.body:
            self.visit(stmt)
        del self._lock_stack[len(self._lock_stack) - len(names) :]

    def visit_For(self, node: ast.For) -> None:
        self._assign_target(node.target, list(UNKNOWN), node)
        self.visit(node.iter)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    visit_AsyncFor = visit_For

    # Nested definitions become their own summaries; here we only remember
    # that the name is locally bound so call resolution stays module-local.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.locals_defs[node.name] = node.name

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.locals_defs[node.name] = node.name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.locals_defs[node.name] = node.name

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # opaque; calls inside lambdas are not summarized

    def summary(self) -> dict:
        for stmt in self.fn.body:
            self.visit(stmt)
        decorators = [
            _qual_from_expr(d, self.aliases) or getattr(d, "id", None)
            for d in getattr(self.fn, "decorator_list", [])
        ]
        kind = "function"
        if self.class_name is not None:
            kind = "method"
            if "staticmethod" in decorators:
                kind = "staticmethod"
            elif "classmethod" in decorators:
                kind = "classmethod"
        return {
            "line": self.fn.lineno,
            "async": isinstance(self.fn, ast.AsyncFunctionDef),
            "kind": kind,
            "class": self.class_name,
            "params": self.params,
            "defaults": self.defaults,
            "annots": self.annots,
            "rann": _annotation_name(getattr(self.fn, "returns", None), self.aliases),
            "assigns": self.assigns,
            "returns": self.returns,
            "calls": self.calls,
            "awrites": self.awrites,
            "locals": self.locals_defs,
        }


#: Constructors whose assignment marks an attribute as "the owning lock".
_LOCK_QUALS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "asyncio.Lock",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)


def _class_summary(
    node: ast.ClassDef, aliases: Dict[str, str], functions: Dict[str, dict]
) -> dict:
    """Class-level facts: init-assigned attributes, lock attrs, bases."""
    attrs: Dict[str, dict] = {}
    lock_attrs: List[str] = []
    init = functions.get(f"{node.name}.__init__")
    if init is not None:
        for write in init["awrites"]:
            ref = write["ref"]
            entry = attrs.setdefault(write["attr"], {"ref": ref, "ann": None})
            entry["ref"] = ref
            if ref[0] == "r":
                call = init["calls"][ref[1]]
                if call["t"][0] == "q" and call["t"][1] in _LOCK_QUALS:
                    if write["attr"] not in lock_attrs:
                        lock_attrs.append(write["attr"])
        # Annotation info for attrs assigned straight from annotated params
        # (`self.logger = logger` with `logger: Optional[RunLogger]`).
        for attr, entry in attrs.items():
            ref = entry["ref"]
            if ref[0] == "n" and ref[1] in init["annots"]:
                entry["ann"] = init["annots"][ref[1]]
    bases = []
    for base in node.bases:
        qual = _qual_from_expr(base, aliases)
        if qual is not None:
            bases.append(qual)
        elif isinstance(base, ast.Name):
            bases.append("." + base.id)
    methods = sorted(
        key.split(".", 1)[1] for key in functions if key.startswith(node.name + ".")
    )
    return {
        "line": node.lineno,
        "bases": bases,
        "attrs": attrs,
        "lock_attrs": lock_attrs,
        "methods": methods,
    }


def summarize_module(source: str, path: str) -> dict:
    """Parse ``source`` once and produce the module's summary dict.

    Raises :class:`ModuleSummaryError` on a syntax error — the graph engine
    reports it as an RPL000-style finding rather than crashing the run.
    """
    norm = str(path).replace("\\", "/")
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError as err:
        raise ModuleSummaryError(
            f"{norm}:{err.lineno or 0}: file does not parse: {err.msg}"
        ) from err
    aliases = _collect_aliases(tree)
    functions: Dict[str, dict] = {}

    def extract_function(
        fn: ast.AST, qualprefix: str, class_name: Optional[str]
    ) -> None:
        qualpath = f"{qualprefix}{fn.name}"
        functions[qualpath] = _FunctionExtractor(fn, aliases, class_name).summary()
        # Nested defs: summarized under a dotted path; calls to them resolve
        # through the parent's `locals` table.
        for stmt in ast.walk(fn):
            if stmt is fn:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner_key = f"{qualpath}.{stmt.name}"
                if inner_key not in functions:
                    functions[inner_key] = _FunctionExtractor(
                        stmt, aliases, class_name
                    ).summary()

    classes: Dict[str, dict] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(node, "", None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extract_function(item, f"{node.name}.", node.name)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            class_fns = {
                key: fn for key, fn in functions.items() if key.startswith(node.name + ".")
            }
            classes[node.name] = _class_summary(node, aliases, class_fns)

    # JSON object keys must be strings; ``apply_suppressions`` recognises the
    # "*" wildcard by membership, so no sentinel identity needs to survive
    # the round-trip.
    suppressions: Dict[str, List[str]] = {
        str(line): sorted(codes) for line, codes in parse_suppressions(source).items()
    }

    return {
        "version": SUMMARY_VERSION,
        "path": norm,
        "aliases": aliases,
        "functions": functions,
        "classes": classes,
        "suppressions": suppressions,
    }
