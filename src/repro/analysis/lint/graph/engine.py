"""Graph-lint driver: summarize (with cache) -> build graph -> run rules.

:func:`run_graph_lint` is the programmatic entry point behind
``repro lint --graph``.  One run:

1. collects files exactly like the lexical engine (same skip dirs, same
   ordering guarantees);
2. obtains a summary per file through the content-hash
   :class:`~repro.analysis.lint.graph.cache.SummaryCache` — warm runs skip
   parsing entirely for unchanged files, which is what makes incremental
   graph lint cheap enough for ``make lint-changed``;
3. builds one :class:`~repro.analysis.lint.graph.program.ProgramGraph` and
   runs the RPL011–RPL014 checkers over it;
4. applies the same inline-suppression comments as the lexical engine
   (``# reprolint: disable=RPL013``), using the suppression maps captured in
   the summaries so no re-tokenization is needed on warm runs.

Selection (`select={"RPL013"}`), path policy, and analysis depth live in
:class:`GraphConfig`; baselines are applied by the caller (the CLI) so the
report always carries the raw findings.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.analysis.lint.engine import collect_files
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.graph.cache import SummaryCache
from repro.analysis.lint.graph.program import ProgramGraph
from repro.analysis.lint.graph.rules import GRAPH_CHECKERS
from repro.analysis.lint.suppressions import apply_suppressions

__all__ = [
    "GraphConfig",
    "DEFAULT_GRAPH_CONFIG",
    "GraphLintReport",
    "graph_codes",
    "run_graph_lint",
]

PathLike = Union[str, pathlib.Path]


def graph_codes() -> FrozenSet[str]:
    """The rule codes implemented by the graph engine."""
    return frozenset(code for code, _ in GRAPH_CHECKERS)


@dataclasses.dataclass(frozen=True)
class GraphConfig:
    """Path policy and tuning for one graph-lint run.

    Path fields are substring matches against posix-normalized file paths
    (same convention as the lexical :class:`LintConfig`); module fields are
    dotted-module prefixes.
    """

    select: Optional[FrozenSet[str]] = None
    """Graph rule codes to run; ``None`` runs all of RPL011–RPL014."""

    exempt_paths: Tuple[str, ...] = ("tests/", "fixtures/", "conftest")
    """Call sites in these files are never reported (test code may seed or
    block however it likes)."""

    taint_sink_paths: Tuple[str, ...] = ("models/", "autograd/", "eval/", "serving/")
    """RPL011: functions defined here are determinism-sensitive sinks — an
    unseeded RNG argument reaching them is a violation."""

    dtype_sink_paths: Tuple[str, ...] = ("models/", "autograd/", "eval/", "kernels/dispatch")
    """RPL012: calls into functions defined here are checked for mixed
    float64/float32 arguments."""

    async_paths: Tuple[str, ...] = ("serving/",)
    """RPL013: ``async def`` functions here are handlers; blocking work they
    reach is reported at the last call site inside these paths."""

    funnel_consumer_paths: Tuple[str, ...] = ("models/", "eval/", "serving/")
    """RPL014: layers that must stay behind the funnels."""

    funnel_modules: Tuple[str, ...] = ("repro.io", "repro.store", "repro.kernels.dispatch")
    """RPL014: sanctioned funnel modules — escape propagation stops here."""

    kernel_backend_modules: Tuple[str, ...] = (
        "repro.kernels.numpy_backend",
        "repro.kernels.numba_backend",
    )
    """RPL014: raw kernel implementations (calling these directly bypasses
    backend selection, the numba gate, and the oracle fallback)."""

    max_depth: int = 8
    """Bound on interprocedural evaluation and taint-propagation depth."""


DEFAULT_GRAPH_CONFIG = GraphConfig()


@dataclasses.dataclass
class GraphLintReport:
    """Outcome of one graph-lint run."""

    findings: List[Finding]
    files_checked: int
    cache_hits: int
    cache_misses: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _validate_select(select: Optional[FrozenSet[str]]) -> None:
    if select is None:
        return
    unknown = set(select) - set(graph_codes())
    if unknown:
        raise ValueError(
            f"unknown graph rule code(s): {', '.join(sorted(unknown))} "
            f"(graph rules: {', '.join(sorted(graph_codes()))})"
        )


def run_graph_lint(
    paths: Sequence[PathLike],
    config: GraphConfig = DEFAULT_GRAPH_CONFIG,
    cache_path: Optional[PathLike] = None,
) -> GraphLintReport:
    """Run the interprocedural rules over every ``.py`` file under ``paths``.

    ``cache_path`` of ``None`` disables the summary cache (cold run);
    otherwise summaries for unchanged files are loaded from it and the file
    is refreshed at the end of the run.
    """
    _validate_select(config.select)
    files = collect_files(paths)
    cache = SummaryCache(pathlib.Path(cache_path) if cache_path else None)
    summaries: Dict[str, dict] = {}
    for f in files:
        summary, _ = cache.summarize(f)
        summaries[str(f).replace("\\", "/")] = summary
    cache.prune(summaries.keys())
    cache.save()

    graph = ProgramGraph(summaries)
    findings: List[Finding] = []
    for code, checker in GRAPH_CHECKERS:
        if config.select is not None and code not in config.select:
            continue
        findings.extend(checker(graph, config))

    findings = _apply_file_suppressions(findings, summaries)
    findings = sorted(set(findings))
    return GraphLintReport(
        findings=findings,
        files_checked=len(files),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


def _apply_file_suppressions(
    findings: List[Finding], summaries: Dict[str, dict]
) -> List[Finding]:
    """Honor ``# reprolint: disable=...`` comments using the cached
    suppression maps (no re-tokenization on warm runs)."""
    by_path: Dict[str, List[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    kept: List[Finding] = []
    for path, group in by_path.items():
        raw = summaries.get(path, {}).get("suppressions", {})
        suppressed = {int(line): frozenset(codes) for line, codes in raw.items()}
        kept.extend(apply_suppressions(group, suppressed))
    return kept
