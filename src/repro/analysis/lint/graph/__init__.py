"""Interprocedural graph analysis for reprolint.

Where :mod:`repro.analysis.lint` rules are per-file and lexical, this package
builds one analysis artifact for the whole linted tree — a module/call graph
with abstract dataflow summaries per function — and runs four rule families
over it:

- **RPL011** determinism taint: an unseeded RNG value flowing (through
  calls, returns, and default arguments) into model/autograd/eval/serving
  entry points;
- **RPL012** dtype lattice: float64 values meeting float32 values at a call
  into the float32 fast path (the static twin of the runtime upcast
  sanitizer);
- **RPL013** async/lock discipline: blocking calls reachable from the
  serving layer's ``async def`` handlers without an executor hop, and
  lock-owning classes written without their lock from handler-reachable
  code;
- **RPL014** funnel escape: call paths from models/eval/serving into raw
  kernel backends or the ``np.save`` family that bypass the
  dispatch/store/io funnels through helpers.

Function summaries are cached by file content hash (see
:mod:`~repro.analysis.lint.graph.cache`), so warm runs skip parsing
unchanged files entirely.  Entry point: :func:`run_graph_lint`; CLI:
``repro lint --graph``.
"""

from repro.analysis.lint.graph.baseline import (
    BASELINE_SCHEMA_VERSION,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.graph.cache import SummaryCache
from repro.analysis.lint.graph.engine import (
    DEFAULT_GRAPH_CONFIG,
    GraphConfig,
    GraphLintReport,
    graph_codes,
    run_graph_lint,
)
from repro.analysis.lint.graph.program import ProgramGraph
from repro.analysis.lint.graph.summary import SUMMARY_VERSION, summarize_module

__all__ = [
    "GraphConfig",
    "DEFAULT_GRAPH_CONFIG",
    "GraphLintReport",
    "ProgramGraph",
    "SummaryCache",
    "SUMMARY_VERSION",
    "BASELINE_SCHEMA_VERSION",
    "run_graph_lint",
    "graph_codes",
    "summarize_module",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]
