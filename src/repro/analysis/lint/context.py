"""Per-file lint state shared by all rules.

:class:`LintContext` carries everything a rule may consult while the engine
walks one module's AST:

- the (posix-normalized) file path and the :class:`LintConfig` path policy;
- an import-alias table mapping local names to dotted module paths, so rules
  match **fully-qualified** targets (``numpy.random.default_rng``,
  ``time.time``) regardless of how the file spelled the import;
- the lexical stacks the engine maintains during the walk (enclosing
  functions/classes, ``with no_grad():`` nesting depth);
- the findings accumulator.

Rules never inspect raw import statements themselves — they call
:meth:`LintContext.qualname` and compare against dotted names.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.lint.findings import Finding

__all__ = ["LintConfig", "LintContext", "DEFAULT_CONFIG"]


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Path policy and rule selection for one lint run.

    Path fields are substring matches against the posix-normalized file path;
    an empty tuple disables the corresponding gate.
    """

    select: Optional[FrozenSet[str]] = None
    """Rule codes to run; ``None`` runs every registered rule."""

    exempt_paths: Tuple[str, ...] = ("tests/", "fixtures/", "conftest")
    """Paths where the randomness rules (RPL001/RPL002) do not apply: test
    and fixture code may pin seeds or use throwaway generators freely."""

    dtype_paths: Tuple[str, ...] = ("models/", "autograd/", "eval/")
    """Paths on the float32-sensitive fast path where RPL004 requires every
    array-creating call to pass an explicit ``dtype``."""

    wallclock_paths: Tuple[str, ...] = ("models/", "autograd/", "eval/")
    """Paths feeding reported results, where RPL003 forbids wall-clock reads
    (``time.perf_counter`` for duration telemetry remains allowed)."""

    scatter_paths: Tuple[str, ...] = ("autograd/",)
    """Paths inside the gradient engine, where RPL008 flags ``np.add.at``:
    every scatter-add there targets a parameter-shaped buffer by
    construction, and should emit a
    :class:`~repro.autograd.sparse.SparseRowGrad` instead."""

    persistence_paths: Tuple[str, ...] = ("repro/io/", "repro/store/")
    """The sanctioned persistence funnels: only here may code call the raw
    numpy save/load entry points (RPL009).  Everything else goes through
    :mod:`repro.io` checkpoints or :mod:`repro.store` artifacts, which own
    atomic writes, ``allow_pickle=False`` and verification."""

    optimizer_funnel_paths: Tuple[str, ...] = ("models/",)
    """Model code, where RPL015 forbids constructing or driving optimizers:
    parameter updates flow through the :mod:`repro.train` engine/executors
    (which own step scheduling, sharded reconciliation and checkpointed
    optimizer state); auxiliary phases use the engine's step callable."""

    kernel_consumer_paths: Tuple[str, ...] = ("models/", "eval/", "serving/")
    """Paths consuming the fused kernels, where RPL010 requires every
    ``repro.kernels`` import to name ``dispatch`` — backend selection, the
    numba availability gate and the oracle fallback live there, and raw
    backend imports silently bypass all three.  ``serving/`` scores every
    request through the same funnel, so its ranking stays bit-identical to
    offline evaluation across backends."""


DEFAULT_CONFIG = LintConfig()


def _matches(path: str, needles: Tuple[str, ...]) -> bool:
    return any(n in path for n in needles)


class LintContext:
    """Mutable per-file state handed to every rule invocation."""

    def __init__(self, path: str, tree: ast.AST, config: LintConfig = DEFAULT_CONFIG):
        self.path = path.replace("\\", "/")
        self.config = config
        self.findings: List[Finding] = []
        #: local name -> dotted path, e.g. {"np": "numpy",
        #: "default_rng": "numpy.random.default_rng", "dt": "datetime.datetime"}
        self.aliases: Dict[str, str] = {}
        #: lexical stacks, maintained by the engine's walker
        self.function_stack: List[ast.AST] = []
        self.class_stack: List[ast.ClassDef] = []
        self.nograd_depth: int = 0
        #: ids of Call.func nodes, so attribute rules can skip expressions
        #: already examined as call targets (avoids double reports).
        self.call_func_ids: Set[int] = set()
        self._collect_imports(tree)

    # ----------------------------------------------------------- path policy
    @property
    def in_exempt_path(self) -> bool:
        return _matches(self.path, self.config.exempt_paths)

    @property
    def in_dtype_path(self) -> bool:
        return _matches(self.path, self.config.dtype_paths)

    @property
    def in_wallclock_path(self) -> bool:
        return _matches(self.path, self.config.wallclock_paths)

    @property
    def in_scatter_path(self) -> bool:
        return _matches(self.path, self.config.scatter_paths)

    @property
    def in_persistence_path(self) -> bool:
        return _matches(self.path, self.config.persistence_paths)

    @property
    def in_kernel_consumer_path(self) -> bool:
        return _matches(self.path, self.config.kernel_consumer_paths)

    @property
    def in_optimizer_funnel_path(self) -> bool:
        return _matches(self.path, self.config.optimizer_funnel_paths)

    # -------------------------------------------------------------- lexical
    @property
    def enclosing_function(self) -> Optional[ast.AST]:
        return self.function_stack[-1] if self.function_stack else None

    @property
    def in_no_grad(self) -> bool:
        return self.nograd_depth > 0

    def in_init_method(self) -> bool:
        """True when the innermost enclosing function is ``__init__`` of a class."""
        fn = self.enclosing_function
        return (
            fn is not None
            and getattr(fn, "name", "") == "__init__"
            and bool(self.class_stack)
        )

    # ------------------------------------------------------------ reporting
    def report(self, rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=rule.code,
                message=message,
                rule=rule.name,
                end_col=getattr(node, "end_col_offset", None) or 0,
            )
        )

    # ------------------------------------------------------- name resolution
    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    # ``import numpy.random`` binds "numpy" but also makes the
                    # full dotted path resolvable through it; the attribute
                    # walk in qualname() covers that case.
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports cannot be external modules
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a dotted path via the import table.

        ``np.random.default_rng`` → ``"numpy.random.default_rng"`` when the
        file did ``import numpy as np``; returns ``None`` for expressions
        whose root is not an imported name.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))
