"""Finding records and output rendering for :mod:`repro.analysis.lint`.

A :class:`Finding` is one rule violation at one source location.  Renderers
produce the two stable output formats of ``repro lint``:

- **text** — ``path:line:col: CODE message`` per finding plus a summary line,
  for humans and editor quickfix lists;
- **JSON** — a versioned document (:data:`SCHEMA_VERSION`) for the harness
  and CI.  The schema is covered by tests; bump the version when changing it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Sequence

__all__ = ["Finding", "SCHEMA_VERSION", "render_text", "render_json", "summarize"]

SCHEMA_VERSION = 2

#: Code reported when a file cannot be parsed (counts as a finding, not an
#: internal error: a broken file in the linted tree is the tree's problem).
PARSE_ERROR_CODE = "RPL000"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Ordering is (path, line, col, code) — ``end_col`` sits last in the field
    list so it never participates in the sort before the code does — making
    reports stable regardless of rule execution order *and* of the order the
    filesystem walk delivered files in (rglob order differs across
    platforms; the sort, not the walk, defines the output).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    rule: str
    end_col: int = 0
    """End column of the flagged expression (0 when the node has no
    ``end_col_offset``); lets CI diffs and baseline matching distinguish two
    findings of one rule on the same line."""

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_col": self.end_col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Per-code counts, sorted by code."""
    by_code: Dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    return dict(sorted(by_code.items()))


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = [f.render() for f in sorted(findings)]
    if findings:
        counts = ", ".join(f"{code}×{n}" for code, n in summarize(findings).items())
        lines.append(f"{len(findings)} finding(s) in {files_checked} file(s): {counts}")
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Machine-readable report (schema version :data:`SCHEMA_VERSION`)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "tool": "reprolint",
        "files_checked": files_checked,
        "findings": [f.as_dict() for f in sorted(findings)],
        "summary": {"total": len(findings), "by_code": summarize(findings)},
    }
    return json.dumps(doc, indent=2, sort_keys=False)
