"""RPL009 — ad-hoc numpy persistence outside the sanctioned funnels.

Every array that reaches disk must go through :mod:`repro.io` (checkpoints)
or :mod:`repro.store` (content-addressed artifacts): those layers are where
atomic tmp+rename writes, ``allow_pickle=False``, hash verification and
memory-mapping discipline live.  A stray ``np.savez``/``np.load`` elsewhere
silently opts out of all four — a truncated file then surfaces as a numpy
parse error deep in a run instead of a verified-miss rebuild, and a pickled
object array becomes a code-execution hazard.  The rule flags direct calls
to the numpy persistence entry points outside the funnel paths; a deliberate
exception (a one-off analysis script reading foreign data) carries an
explicit ``# reprolint: disable=RPL009`` stating the justification.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["AdHocPersistenceRule"]

#: Fully-qualified numpy persistence entry points the funnel layers wrap.
#: The memmap/fromfile family is included so out-of-core code (streamed
#: traces, chunked builders) cannot grow private block formats on the side:
#: block payloads go through ArtifactStore like every other array, keeping
#: sha256 verification and atomic writes on the scale path too.
_PERSISTENCE_CALLS = frozenset(
    {
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.load",
        "numpy.memmap",
        "numpy.fromfile",
        "numpy.lib.format.open_memmap",
    }
)


@register
class AdHocPersistenceRule(Rule):
    """RPL009: numpy save/load outside ``repro.io`` / ``repro.store``."""

    code = "RPL009"
    name = "ad-hoc-persistence"
    description = (
        "direct np.save/np.savez/np.load/np.memmap/np.fromfile/open_memmap "
        "bypasses the persistence funnels (repro.io checkpoints, repro.store "
        "artifacts) and their atomic-write / allow_pickle=False / "
        "verification guarantees; route through those layers, or suppress "
        "with a comment stating why raw numpy persistence is required here."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.in_persistence_path or ctx.in_exempt_path:
            return
        assert isinstance(node, ast.Call)
        qual = ctx.qualname(node.func)
        if qual not in _PERSISTENCE_CALLS:
            return
        ctx.report(
            self,
            node,
            f"{qual.replace('numpy', 'np')} outside the persistence funnel — "
            "use repro.io (checkpoints) or repro.store (artifacts), or "
            "justify with a suppression",
        )
