"""Built-in reprolint rules.

Importing this package registers every rule with
:mod:`repro.analysis.lint.registry`.  Each module groups the rules for one
concern; see DESIGN.md for the rationale behind each code.
"""

from repro.analysis.lint.rules import (  # noqa: F401  (import for registration)
    defaults,
    dtypes,
    kernel_imports,
    optimizer_funnel,
    persistence,
    randomness,
    scatter,
    serialization,
    tensor_data,
    wallclock,
)
from repro.analysis.lint.rules.base import Rule

__all__ = ["Rule"]
