"""RPL007 — ``Tensor.data`` mutation under grad-enabled contexts.

Writing through ``tensor.data`` bypasses the autodiff tape: the forward value
changes but recorded backward closures still close over the old arrays, so
gradients silently stop matching the forward pass.  Legitimate mutation sites
— optimizer updates after ``backward()``, checkpoint restores — either sit
inside ``with no_grad():`` (which this rule recognizes lexically) or carry an
explicit ``# reprolint: disable=RPL007`` marking the invariant that makes
them safe.  Plain ``self.data = ...`` attribute creation in ``__init__`` is
exempt (that is construction, not mutation).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["TensorDataMutationRule"]


def _data_target(target: ast.AST):
    """Return the ``.data`` Attribute node if ``target`` writes through one."""
    if isinstance(target, ast.Attribute) and target.attr == "data":
        return target
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Attribute)
        and target.value.attr == "data"
    ):
        return target.value
    return None


@register
class TensorDataMutationRule(Rule):
    """RPL007: ``.data`` writes outside ``no_grad`` need justification."""

    code = "RPL007"
    name = "tensor-data-mutation"
    description = (
        "Assigning through tensor.data bypasses the autodiff tape and "
        "desynchronizes recorded backward closures from the forward value; "
        "wrap the write in `with no_grad():` or suppress with a comment "
        "stating why it is safe."
    )
    node_types = (ast.Assign, ast.AugAssign, ast.AnnAssign)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.in_no_grad:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _data_target(target)
            if attr is None:
                continue
            # `self.data = ...` in __init__ is attribute construction.
            if (
                isinstance(target, ast.Attribute)
                and isinstance(attr.value, ast.Name)
                and attr.value.id == "self"
                and ctx.in_init_method()
            ):
                continue
            ctx.report(
                self,
                node,
                "mutation through .data outside `with no_grad():` desyncs the "
                "autodiff tape; wrap in no_grad or suppress with a justification",
            )
