"""RPL006 — no mutable default arguments.

The classic Python trap: a ``def f(acc=[])`` default is evaluated once and
shared across calls, so state leaks between invocations.  In an experiment
harness this shows up as cells contaminating each other's accumulators —
precisely the cross-run interference the parallel fan-out (PR 1) was built to
rule out.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.deque",
        "collections.Counter",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.array",
        "numpy.full",
    }
)


def _is_mutable(node: ast.AST, ctx: LintContext) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_CALLS:
            return True
        qual = ctx.qualname(node.func)
        if qual in _MUTABLE_CALLS:
            return True
    return False


@register
class MutableDefaultRule(Rule):
    """RPL006: default argument values must be immutable."""

    code = "RPL006"
    name = "mutable-default"
    description = (
        "Mutable defaults ([], {}, set(), np.zeros(...)) are evaluated once "
        "and shared across calls, leaking state between runs; default to None "
        "and construct inside the function."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        fname = getattr(node, "name", "<lambda>")
        for default in defaults:
            if _is_mutable(default, ctx):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in '{fname}' is shared across "
                    "calls; use None and construct inside the function",
                )
