"""RPL008 — dense ``np.add.at`` scatter inside the gradient engine.

``np.add.at(buf, idx, grad)`` on a parameter-shaped buffer is how a dense
embedding backward materializes O(table · dim) work for O(batch · dim) of
signal — precisely the pattern the sparse-row gradient path
(:mod:`repro.autograd.sparse`) exists to remove, and it is slow on top of
being dense (``ufunc.at`` is an unbuffered per-element loop; the sparse
path's stable-sort + ``np.add.reduceat`` coalescing agrees to summation
rounding).  The rule is path-scoped to ``src/repro/autograd/``: within
the gradient engine every ``np.add.at`` scatters into a parameter-shaped
gradient buffer by construction.  Legitimate uses (a genuinely dense target,
a deliberate fallback) carry an explicit ``# reprolint: disable=RPL008``
stating the justification.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["DenseScatterGradRule"]


@register
class DenseScatterGradRule(Rule):
    """RPL008: ``np.add.at`` in the gradient engine needs justification."""

    code = "RPL008"
    name = "dense-scatter-grad"
    description = (
        "np.add.at on a parameter-shaped gradient buffer materializes a "
        "dense table-sized scatter per backward pass; emit a SparseRowGrad "
        "(repro.autograd.sparse) instead, or suppress with a comment stating "
        "why a dense scatter is required here."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_scatter_path:
            return
        assert isinstance(node, ast.Call)
        if ctx.qualname(node.func) != "numpy.add.at":
            return
        ctx.report(
            self,
            node,
            "dense np.add.at scatter in the gradient engine — emit a "
            "SparseRowGrad (repro.autograd.sparse) or justify with a "
            "suppression",
        )
