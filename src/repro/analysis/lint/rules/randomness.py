"""RPL001/RPL002 — determinism rules for random number generation.

Every Table II–V number in this reproduction is a function of explicit seeds.
A single draw from the legacy global NumPy RNG (``np.random.rand`` and
friends) or an unseeded ``default_rng()`` silently breaks run-to-run
reproducibility; a *hardcoded* seed inside a library function is subtler but
as bad — it disconnects the function from the caller's seed, so two
"independent" experiment cells share correlated randomness and resumed runs
stop being bit-identical.  Test and fixture paths are exempt
(:attr:`LintConfig.exempt_paths`).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import (
    Rule,
    constant_only,
    dotted_suffix,
    function_param_names,
)

__all__ = ["GlobalRandomRule", "RngParameterRule"]

#: Legacy global-state RNG entry points (module-level numpy.random functions
#: plus the stateful RandomState class).  Drawing from any of these depends on
#: hidden global state no checkpoint captures.
LEGACY_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "normal",
        "uniform",
        "lognormal",
        "binomial",
        "poisson",
        "beta",
        "gamma",
        "exponential",
        "geometric",
        "standard_normal",
        "standard_cauchy",
        "multinomial",
        "multivariate_normal",
        "seed",
        "get_state",
        "set_state",
        "RandomState",
    }
)

#: Parameter names that count as "the caller threads randomness in".
RNG_PARAM_NAMES = frozenset({"rng", "seed", "seed_like", "random_state", "generator"})

_DEFAULT_RNG = "numpy.random.default_rng"


@register
class GlobalRandomRule(Rule):
    """RPL001: no global ``np.random.*`` state and no unseeded ``default_rng()``."""

    code = "RPL001"
    name = "global-rng"
    description = (
        "Global numpy.random state (np.random.rand/seed/…) and unseeded "
        "default_rng() make runs irreproducible; draw from an explicitly "
        "seeded np.random.Generator instead."
    )
    node_types = (ast.Call, ast.Attribute)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.in_exempt_path:
            return
        if isinstance(node, ast.Call):
            qual = ctx.qualname(node.func)
            member = dotted_suffix(qual, "numpy.random")
            if member in LEGACY_RANDOM:
                ctx.report(
                    self,
                    node,
                    f"call to legacy global RNG numpy.random.{member}; use an "
                    "explicitly seeded np.random.Generator (see repro.utils.rng)",
                )
            elif qual == _DEFAULT_RNG and not node.args and not node.keywords:
                ctx.report(
                    self,
                    node,
                    "unseeded default_rng() draws nondeterministic entropy; pass a "
                    "seed or accept an rng parameter",
                )
        elif isinstance(node, ast.Attribute) and id(node) not in ctx.call_func_ids:
            # Bare references (e.g. passing np.random.shuffle as a callback).
            member = dotted_suffix(ctx.qualname(node), "numpy.random")
            if member in LEGACY_RANDOM:
                ctx.report(
                    self,
                    node,
                    f"reference to legacy global RNG numpy.random.{member}; use an "
                    "explicitly seeded np.random.Generator instead",
                )


@register
class RngParameterRule(Rule):
    """RPL002: functions drawing randomness must accept an ``rng`` parameter."""

    code = "RPL002"
    name = "rng-parameter"
    description = (
        "A library function constructing its own generator from a hardcoded "
        "seed decouples its randomness from the caller's seed; accept an "
        "rng: np.random.Generator (or seed) parameter and thread it through."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.in_exempt_path:
            return
        if ctx.qualname(node.func) != _DEFAULT_RNG:
            return
        if not node.args and not node.keywords:
            return  # unseeded: RPL001's finding, not ours
        fn = ctx.enclosing_function
        if fn is None:
            return  # module-level constant tables are deliberate and visible
        params = set(function_param_names(fn))
        if params & RNG_PARAM_NAMES:
            return
        seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
        if all(constant_only(e) for e in seed_exprs):
            fname = getattr(fn, "name", "<lambda>")
            ctx.report(
                self,
                node,
                f"function '{fname}' builds a generator from a hardcoded seed; "
                "accept an rng: np.random.Generator parameter and thread the "
                "caller's generator through",
            )
