"""RPL010 — fused-kernel access outside the dispatch funnel.

The fused cache-blocked kernels (:mod:`repro.kernels.numpy_backend`,
:mod:`repro.kernels.numba_backend`) are raw-ndarray routines with no tape,
no backend selection and no availability guard; the **only** sanctioned way
for model and evaluation code to reach them is
:mod:`repro.kernels.dispatch`, which owns backend resolution
(``REPRO_KERNELS``), the numba self-check gate, the oracle escape hatch and
the Tensor-building wrappers the sanitizer/profiler instrument.  A model
importing a backend module directly pins one implementation, silently skips
the oracle fallback path, and produces tensors the instrumentation never
sees.  The rule flags any ``repro.kernels`` import other than ``dispatch``
in the consumer paths; a deliberate exception (a benchmark pitting backends
against each other, a parity test) lives outside those paths or carries an
explicit ``# reprolint: disable=RPL010`` stating the justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["KernelImportFunnelRule"]

_PACKAGE = "repro.kernels"
_ALLOWED = "repro.kernels.dispatch"


def _offending_targets(node: ast.AST) -> Iterator[Tuple[str, str]]:
    """Yield ``(spelling, target)`` for kernel imports that bypass dispatch."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            name = alias.name
            if name == _PACKAGE or (
                name.startswith(_PACKAGE + ".") and name != _ALLOWED
            ):
                yield f"import {name}", name
    elif isinstance(node, ast.ImportFrom) and node.module:
        if node.module == _PACKAGE:
            for alias in node.names:
                if alias.name != "dispatch":
                    yield (
                        f"from {_PACKAGE} import {alias.name}",
                        f"{_PACKAGE}.{alias.name}",
                    )
        elif node.module.startswith(_PACKAGE + ".") and node.module != _ALLOWED:
            yield f"from {node.module} import ...", node.module


@register
class KernelImportFunnelRule(Rule):
    """RPL010: models/eval must reach fused kernels via dispatch only."""

    code = "RPL010"
    name = "kernel-dispatch-funnel"
    description = (
        "direct imports of repro.kernels backends bypass the dispatch "
        "funnel — backend selection, the numba availability gate, the "
        "oracle fallback and sanitizer/profiler instrumentation all live "
        "in repro.kernels.dispatch; import that instead, or suppress with "
        "a comment stating why a raw backend is required here."
    )
    node_types = (ast.Import, ast.ImportFrom)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_kernel_consumer_path or ctx.in_exempt_path:
            return
        for spelling, target in _offending_targets(node):
            ctx.report(
                self,
                node,
                f"{spelling!r} reaches around the kernel dispatch funnel — "
                f"use 'from {_PACKAGE} import dispatch' ({target} is an "
                "implementation backend), or justify with a suppression",
            )
