"""RPL004 — dtype hygiene on the float32-sensitive fast path.

The evaluation fast path (PR 1) runs scoring in float32; training runs in
float64.  An array created without an explicit ``dtype`` in ``models/``,
``autograd/``, or ``eval/`` silently adopts NumPy's default (float64 /
platform int), which is exactly how a float32 pipeline picks up a float64
leak: one ``np.zeros(n)`` buffer upcasts every downstream arithmetic result.
The ``*_like`` constructors are exempt — inheriting a dtype from an existing
array is the hygiene-preserving idiom.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule, call_keyword, dotted_suffix

__all__ = ["DtypeHygieneRule"]

#: Constructor name → index of the positional ``dtype`` parameter.
CREATORS = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "arange": 3,
    "eye": 3,
    "identity": 1,
    "linspace": 5,
}


@register
class DtypeHygieneRule(Rule):
    """RPL004: array-creating calls must pass an explicit dtype."""

    code = "RPL004"
    name = "dtype-hygiene"
    description = (
        "np.zeros/ones/empty/full/arange/eye without an explicit dtype adopt "
        "NumPy defaults and silently upcast the float32 fast path; pass "
        "dtype=... or use a *_like constructor."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_dtype_path:
            return
        member = dotted_suffix(ctx.qualname(node.func), "numpy")
        if member not in CREATORS:
            return
        if call_keyword(node, "dtype") is not None:
            return
        if len(node.args) > CREATORS[member]:
            return  # dtype passed positionally
        ctx.report(
            self,
            node,
            f"np.{member}(...) without explicit dtype on the float32-sensitive "
            "path; pass dtype=... (or build with a *_like constructor)",
        )
