"""Rule interface for the reprolint engine.

A rule declares which AST node types it wants (``node_types``) and implements
:meth:`Rule.check`, reporting violations through the context.  The engine
performs a single AST walk per file and dispatches each node to every
subscribed rule, so adding rules does not add walks.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple, Type

from repro.analysis.lint.context import LintContext

__all__ = ["Rule", "constant_only", "call_keyword", "dotted_suffix"]


class Rule:
    """Base class for lint rules.

    Class attributes
    ----------------
    code:
        Stable identifier (``RPLxxx``) used in reports and suppressions.
    name:
        Short slug for the JSON output (``"global-rng"``).
    description:
        One-line rationale shown by ``repro lint --explain``-style tooling
        and mirrored in DESIGN.md.
    node_types:
        AST node classes this rule wants to see.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        raise NotImplementedError


def constant_only(node: ast.AST) -> bool:
    """True when an expression is built purely from literals.

    Used to distinguish a hardcoded seed (``default_rng(0xC0FFEE)``) from a
    threaded one (``default_rng(seed)`` / ``default_rng(self._root + u)``):
    only the former is a determinism hazard — it silently decouples the
    function from the caller's seed.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp):
        return constant_only(node.operand)
    if isinstance(node, ast.BinOp):
        return constant_only(node.left) and constant_only(node.right)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(constant_only(e) for e in node.elts)
    return False


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name`` on ``call``, or None."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def dotted_suffix(qualname: Optional[str], prefix: str) -> Optional[str]:
    """``"numpy.random.rand"`` with prefix ``"numpy.random"`` → ``"rand"``."""
    if qualname is not None and qualname.startswith(prefix + "."):
        rest = qualname[len(prefix) + 1 :]
        if rest and "." not in rest:
            return rest
    return None


def function_param_names(fn: ast.AST) -> Iterable[str]:
    """All parameter names of a FunctionDef/AsyncFunctionDef/Lambda."""
    args = getattr(fn, "args", None)
    if args is None:
        return ()
    names = []
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.extend(a.arg for a in group)
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names
