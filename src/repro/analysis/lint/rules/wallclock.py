"""RPL003 — no wall-clock reads in result-bearing code paths.

Model, autograd, and evaluation code feed the numbers that land in the paper
tables.  Wall-clock reads there (``time.time``, ``datetime.now``) are either
dead weight or — worse — leak into computed values, making outputs depend on
when the run happened.  Duration *telemetry* is fine and stays available via
``time.perf_counter`` (a monotonic interval clock that cannot encode absolute
time into results), which this rule deliberately allows.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["WallClockRule"]

WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """RPL003: wall-clock reads are banned where results are computed."""

    code = "RPL003"
    name = "wallclock"
    description = (
        "time.time()/datetime.now() in model, autograd, or eval code makes "
        "outputs depend on when the run happened; use time.perf_counter() for "
        "durations and keep absolute timestamps in telemetry code."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_wallclock_path:
            return
        qual = ctx.qualname(node.func)
        if qual in WALLCLOCK_CALLS:
            ctx.report(
                self,
                node,
                f"wall-clock read {qual}() in a result-bearing path; use "
                "time.perf_counter() for durations or move timestamping to "
                "telemetry code",
            )
