"""RPL005 — no pickle in persistence paths.

Checkpoints and datasets in this repository are pickle-free by design
(:mod:`repro.io`): plain ``.npz`` archives are portable across Python
versions, inspectable, and safe to load from untrusted sources.  A stray
``import pickle`` or ``np.save(..., allow_pickle=True)`` quietly reintroduces
version-locked, code-executing files.  (Process pools pickling *in memory* is
fine — the rule targets explicit pickle use and pickle-enabled array I/O.)
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule, call_keyword

__all__ = ["NoPickleRule"]

PICKLE_MODULES = frozenset({"pickle", "cPickle", "_pickle", "dill", "shelve"})


@register
class NoPickleRule(Rule):
    """RPL005: no pickle imports, no ``allow_pickle=True``."""

    code = "RPL005"
    name = "no-pickle"
    description = (
        "Checkpoints are pickle-free .npz by design (portable, inspectable, "
        "safe to load); pickle imports and allow_pickle=True reintroduce "
        "version-locked code-executing files."
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in PICKLE_MODULES:
                    ctx.report(
                        self,
                        node,
                        f"import of {alias.name}: persistence is pickle-free by "
                        "design; serialize to .npz via repro.io",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in PICKLE_MODULES:
                ctx.report(
                    self,
                    node,
                    f"import from {node.module}: persistence is pickle-free by "
                    "design; serialize to .npz via repro.io",
                )
        elif isinstance(node, ast.Call):
            value = call_keyword(node, "allow_pickle")
            if isinstance(value, ast.Constant) and bool(value.value):
                ctx.report(
                    self,
                    node,
                    "allow_pickle=True loads/stores arbitrary objects; keep "
                    "archives pickle-free (allow_pickle=False)",
                )
