"""RPL015 — optimizer access outside the training-engine funnel.

Every parameter update in the codebase flows through :mod:`repro.train`:
the engine builds the optimizer, the executors decide when ``step`` runs
(serially, or reconciled across worker processes), and model auxiliary
phases receive an engine-built *step callable* instead of the optimizer
itself.  A model that constructs its own optimizer — or drives
``optimizer.step()`` / ``zero_grad()`` inside its hooks — creates updates
the executors cannot see: under :class:`~repro.train.sharded.ShardedExecutor`
those steps would desynchronize the global step counter the lazy-Adam
row decay depends on, mutate shared mmap'd tables outside the
round-reconciliation protocol, and break checkpoint resume (the rogue
optimizer's slots are never gathered into the training checkpoint).

The rule therefore flags, in model paths: (a) importing optimizer classes
from :mod:`repro.autograd`; (b) attribute calls of ``step`` / ``zero_grad``
on names that look like optimizers.  The engine, tests and benchmarks live
outside the gated paths; a deliberate exception carries
``# reprolint: disable=RPL015`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.context import LintContext
from repro.analysis.lint.registry import register
from repro.analysis.lint.rules.base import Rule

__all__ = ["OptimizerFunnelRule"]

_OPTIMIZER_MODULES = ("repro.autograd", "repro.autograd.optim")
_OPTIMIZER_NAMES = frozenset({"Optimizer", "Adam", "SGD", "AdaGrad"})
_DRIVE_METHODS = frozenset({"step", "zero_grad"})


def _offending_imports(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro.autograd.optim":
                yield f"import {alias.name}"
    elif isinstance(node, ast.ImportFrom) and node.module:
        if node.module in _OPTIMIZER_MODULES:
            for alias in node.names:
                if alias.name in _OPTIMIZER_NAMES:
                    yield f"from {node.module} import {alias.name}"


def _looks_like_optimizer(expr: ast.AST) -> bool:
    """Heuristic: ``optimizer.step()``, ``self.optim.zero_grad()``, etc."""
    if isinstance(expr, ast.Name):
        return "optim" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "optim" in expr.attr.lower()
    return False


@register
class OptimizerFunnelRule(Rule):
    """RPL015: model code must not construct or drive optimizers."""

    code = "RPL015"
    name = "optimizer-engine-funnel"
    description = (
        "model code importing optimizer classes or calling "
        "optimizer.step()/zero_grad() bypasses the repro.train engine "
        "funnel — executors own when steps run (and how sharded workers "
        "reconcile them into shared tables and checkpoints); use the "
        "engine-provided step callable in extra_epoch_step, or suppress "
        "with a justification."
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_optimizer_funnel_path or ctx.in_exempt_path:
            return
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for spelling in _offending_imports(node):
                ctx.report(
                    self,
                    node,
                    f"{spelling!r} pulls an optimizer into model code — "
                    "parameter updates belong to repro.train executors; take "
                    "the engine's step callable instead, or justify with a "
                    "suppression",
                )
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DRIVE_METHODS
            and _looks_like_optimizer(func.value)
        ):
            ctx.report(
                self,
                node,
                f"'{ast.unparse(func)}()' drives the optimizer from model code — "
                "updates flow through repro.train (the engine epoch loop or "
                "its step callable), or justify with a suppression",
            )
