"""Inline suppression comments for reprolint.

Syntax (same line as the finding)::

    perm = rng.permutation(n)  # reprolint: disable=RPL002
    x = legacy_call()          # reprolint: disable=RPL001,RPL003
    y = anything()             # reprolint: disable

A bare ``disable`` (no codes) suppresses every rule on that line.  For a
statement spanning multiple physical lines the comment must sit on the line
the finding is reported on (the statement's first line for statement-level
rules).  Suppressions are parsed with :mod:`tokenize` so strings containing
the marker text are not misread as comments.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Sequence

from repro.analysis.lint.findings import Finding

__all__ = ["parse_suppressions", "apply_suppressions", "ALL_CODES"]

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})

_MARKER = re.compile(r"#\s*reprolint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number → set of suppressed codes (``ALL_CODES`` for bare disable)."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Tokenization can fail on files the parser also rejects; fall back
        # to a line scan so suppressions still work in partially-broken files.
        comments = [
            (i, line[line.index("#") :])
            for i, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for lineno, text in comments:
        m = _MARKER.search(text)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            entry = ALL_CODES
        else:
            entry = frozenset(c.strip().upper() for c in codes.split(",") if c.strip())
            if not entry:
                entry = ALL_CODES
        previous = suppressed.get(lineno, frozenset())
        suppressed[lineno] = ALL_CODES if ALL_CODES & (previous | entry) else previous | entry
    return suppressed


def apply_suppressions(
    findings: Sequence[Finding], suppressed: Dict[int, FrozenSet[str]]
) -> list:
    """Drop findings whose line carries a matching suppression."""
    kept = []
    for f in findings:
        codes = suppressed.get(f.line)
        if codes is not None and (codes is ALL_CODES or "*" in codes or f.code in codes):
            continue
        kept.append(f)
    return kept
