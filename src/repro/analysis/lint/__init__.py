"""reprolint — project-aware static analysis for the reproduction.

An AST-based lint engine with rules encoding this repository's correctness
invariants: seeded randomness threading (RPL001/RPL002), no wall-clock in
result paths (RPL003), explicit dtypes on the float32 fast path (RPL004),
pickle-free persistence (RPL005), no mutable defaults (RPL006), and
tape-safe ``Tensor.data`` mutation (RPL007).  See DESIGN.md for the rationale
behind each rule and README for CLI usage (``repro lint``).

Suppress a finding inline with ``# reprolint: disable=RPL00x`` on its line.
"""

from repro.analysis.lint.context import DEFAULT_CONFIG, LintConfig
from repro.analysis.lint.engine import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    LintReport,
    collect_files,
    lint_file,
    lint_source,
    run_lint,
)
from repro.analysis.lint.findings import (
    SCHEMA_VERSION,
    Finding,
    render_json,
    render_text,
    summarize,
)
from repro.analysis.lint.registry import all_rules, known_codes, register
from repro.analysis.lint.rules.base import Rule

__all__ = [
    "LintConfig",
    "DEFAULT_CONFIG",
    "LintReport",
    "Finding",
    "Rule",
    "register",
    "all_rules",
    "known_codes",
    "lint_source",
    "lint_file",
    "collect_files",
    "run_lint",
    "render_text",
    "render_json",
    "summarize",
    "SCHEMA_VERSION",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
]
