"""Rule registry: rules self-register at import via the :func:`register` decorator.

Keeping registration declarative means adding a rule is one new module under
:mod:`repro.analysis.lint.rules` — the engine, CLI, and docs all pick it up
from the registry without edits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Type

if TYPE_CHECKING:  # avoid a circular import: rules import the registry
    from repro.analysis.lint.rules.base import Rule

__all__ = ["register", "all_rules", "rules_for", "known_codes"]

_REGISTRY: Dict[str, "Type[Rule]"] = {}


def register(rule_cls: "Type[Rule]") -> "Type[Rule]":
    """Class decorator adding ``rule_cls`` to the global registry.

    Codes must be unique; a duplicate registration is a programming error.
    """
    code = rule_cls.code
    if not code or not code.startswith("RPL"):
        raise ValueError(f"rule {rule_cls.__name__} has invalid code {code!r}")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule code {code}: {existing.__name__} and {rule_cls.__name__}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def _ensure_loaded() -> None:
    # Importing the rules package registers every built-in rule.
    from repro.analysis.lint import rules  # noqa: F401


def known_codes() -> List[str]:
    """All registered rule codes, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    _ensure_loaded()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_for(select: Optional[FrozenSet[str]] = None) -> List[Rule]:
    """Instances of the selected rules (all when ``select`` is None).

    Raises ``ValueError`` on unknown codes so typos in ``--select`` surface
    as CLI errors instead of silently linting nothing.
    """
    _ensure_loaded()
    if select is None:
        return all_rules()
    unknown = sorted(set(select) - set(_REGISTRY))
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    return [_REGISTRY[code]() for code in sorted(select)]
