"""The reprolint engine: file discovery, AST walking, rule dispatch.

One :func:`lint_source` call parses a module once, builds a
:class:`~repro.analysis.lint.context.LintContext`, and performs a single AST
walk.  The walker maintains the lexical state rules rely on (enclosing
function/class stacks, ``with no_grad():`` depth) and dispatches each node to
the rules subscribed to its type, so the cost of a lint run is one parse and
one walk per file regardless of how many rules are active.

Exit-code contract (consumed by ``make verify`` and CI):

- **0** — clean (no findings),
- **1** — findings reported,
- **2** — internal error (bad rule selection, unreadable path, engine bug).

A *syntax error in a linted file* is a finding (``RPL000``), not an internal
error: a broken file in the tree is the tree's problem, and CI should report
it like any other violation instead of crashing.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.analysis.lint.context import DEFAULT_CONFIG, LintConfig, LintContext
from repro.analysis.lint.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.lint.registry import rules_for
from repro.analysis.lint.rules.base import Rule
from repro.analysis.lint.suppressions import apply_suppressions, parse_suppressions

__all__ = ["LintReport", "lint_source", "lint_file", "collect_files", "run_lint"]

PathLike = Union[str, pathlib.Path]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run over a set of paths."""

    findings: List[Finding]
    files_checked: int

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN


class _Walker:
    """Single-pass AST walker maintaining lexical state and dispatching rules."""

    def __init__(self, ctx: LintContext, dispatch: Dict[Type[ast.AST], List[Rule]]):
        self.ctx = ctx
        self.dispatch = dispatch

    def walk(self, node: ast.AST) -> None:
        ctx = self.ctx
        if isinstance(node, ast.Call):
            ctx.call_func_ids.add(id(node.func))
        for rule in self.dispatch.get(type(node), ()):
            rule.check(node, ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            ctx.function_stack.append(node)
            self._walk_children(node)
            ctx.function_stack.pop()
        elif isinstance(node, ast.ClassDef):
            ctx.class_stack.append(node)
            self._walk_children(node)
            ctx.class_stack.pop()
        elif isinstance(node, (ast.With, ast.AsyncWith)) and self._is_no_grad(node):
            ctx.nograd_depth += 1
            self._walk_children(node)
            ctx.nograd_depth -= 1
        else:
            self._walk_children(node)

    def _walk_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.walk(child)

    def _is_no_grad(self, node: ast.AST) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Name) and func.id == "no_grad":
                    return True
                if isinstance(func, ast.Attribute) and func.attr == "no_grad":
                    return True
        return False


def _build_dispatch(rules: Sequence[Rule]) -> Dict[Type[ast.AST], List[Rule]]:
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    return dispatch


def lint_source(
    source: str, path: str = "<string>", config: LintConfig = DEFAULT_CONFIG
) -> List[Finding]:
    """Lint one module given as a string; ``path`` drives the path policy."""
    norm = str(path).replace("\\", "/")
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError as err:
        return [
            Finding(
                path=norm,
                line=err.lineno or 0,
                col=err.offset or 0,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {err.msg}",
                rule="parse-error",
            )
        ]
    ctx = LintContext(norm, tree, config)
    rules = rules_for(config.select)
    _Walker(ctx, _build_dispatch(rules)).walk(tree)
    return apply_suppressions(ctx.findings, parse_suppressions(source))


def lint_file(path: PathLike, config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint one file on disk (reported path is the path as given)."""
    p = pathlib.Path(path)
    source = p.read_text(encoding="utf-8")
    return lint_source(source, path=p.as_posix(), config=config)


def collect_files(paths: Sequence[PathLike]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, deduplicated list of ``.py`` files.

    Raises ``FileNotFoundError`` for a nonexistent input path (surfaced by the
    CLI as an internal error, exit 2 — a typo'd path must not report "clean").
    """
    out: List[pathlib.Path] = []
    seen = set()
    for path in paths:
        p = pathlib.Path(path)
        if not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
        if p.is_dir():
            candidates: Tuple[pathlib.Path, ...] = tuple(sorted(p.rglob("*.py")))
        else:
            candidates = (p,)
        for c in candidates:
            if any(part in _SKIP_DIRS for part in c.parts):
                continue
            key = c.resolve()
            if key in seen:
                continue
            seen.add(key)
            out.append(c)
    return out


def run_lint(
    paths: Sequence[PathLike], config: Optional[LintConfig] = None
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate the findings."""
    config = config or DEFAULT_CONFIG
    rules_for(config.select)  # validate selection eagerly (ValueError → exit 2)
    files = collect_files(paths)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f, config=config))
    findings.sort()
    return LintReport(findings=findings, files_checked=len(files))
