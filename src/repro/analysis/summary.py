"""Facility-trace report builder: one call, the whole Section-III picture.

:func:`facility_report` bundles the Fig-3 distribution summary, the
Section III-B2 concentration statistics, and the Fig-5 pair study into a
single structured result plus a printable report — the CLI's ``analyze``
command and notebooks both build on it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


from repro.analysis.distributions import UserQueryDistributions, compute_distributions
from repro.analysis.locality import PairStudyResult, pair_similarity_study, query_concentration
from repro.facility.catalog import FacilityCatalog
from repro.facility.trace import QueryTrace
from repro.facility.users import UserPopulation

__all__ = ["FacilityReport", "facility_report"]


@dataclasses.dataclass(frozen=True)
class FacilityReport:
    """All Section-III measurements for one facility trace."""

    facility: str
    num_records: int
    num_users: int
    num_objects: int
    distributions: UserQueryDistributions
    concentration: Dict[str, float]
    pair_study: Optional[PairStudyResult]

    def render(self) -> str:
        """Multi-line printable report."""
        s = self.distributions.summary()
        lines = [
            f"=== {self.facility} trace report ===",
            f"{self.num_records} query records, {self.num_users} users, "
            f"{self.num_objects} data objects",
            "",
            "Per-user query distributions (Fig 3):",
            f"  distinct objects: median {s['median_objects']:.0f}, max {s['max_objects']}",
            f"  distinct locations: median {s['median_locations']:.0f}, max {s['max_locations']}",
            f"  distinct data types: median {s['median_data_types']:.0f}, max {s['max_data_types']}",
            f"  activity inequality: Gini {s['query_gini']:.3f}, "
            f"top-10% share {s['objects_tail_ratio']:.2f}",
            "",
            "Query concentration (Section III-B2):",
            f"  same-region fraction: {self.concentration['same_region_fraction']:.3f}",
            f"  same-data-type fraction: {self.concentration['same_dtype_fraction']:.3f}",
        ]
        if self.pair_study is not None:
            p = self.pair_study
            lines += [
                "",
                f"Same-city vs random pairs (Fig 5, n={p.num_pairs}):",
                f"  same-site pattern: {p.p_region_same_city:.3f} vs {p.p_region_random:.3f} "
                f"({p.region_ratio:.1f}x)",
                f"  same-data-type pattern: {p.p_dtype_same_city:.3f} vs {p.p_dtype_random:.3f} "
                f"({p.dtype_ratio:.1f}x)",
            ]
        return "\n".join(lines)


def facility_report(
    trace: QueryTrace,
    catalog: FacilityCatalog,
    population: Optional[UserPopulation] = None,
    num_pairs: int = 5000,
    seed=0,
) -> FacilityReport:
    """Compute the full Section-III measurement bundle.

    The pair study requires a population (for city membership); without one
    it is skipped and the report omits the Fig-5 block.
    """
    dist = compute_distributions(trace, catalog)
    conc = query_concentration(trace, catalog)
    pair = (
        pair_similarity_study(trace, catalog, population, num_pairs=num_pairs, seed=seed)
        if population is not None
        else None
    )
    return FacilityReport(
        facility=catalog.name,
        num_records=len(trace),
        num_users=trace.num_users,
        num_objects=trace.num_objects,
        distributions=dist,
        concentration=conc,
        pair_study=pair,
    )
