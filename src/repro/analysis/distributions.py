"""Figure 3: distribution curves of per-user query behavior.

The paper plots, per user (X axis = user id sorted by activity), the number
of distinct data objects queried (a, b), distinct instrument locations
(c, d), and distinct data types (e, f) for OOI and GAGE.  The qualitative
signature is a heavy-tailed, monotone-decreasing curve spanning orders of
magnitude.  :func:`compute_distributions` reproduces the three curves and
summary statistics used by the Fig-3 bench.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.trace import QueryTrace

__all__ = ["UserQueryDistributions", "compute_distributions", "tail_ratio", "gini_coefficient"]


def _distinct_per_user(trace: QueryTrace, codes: np.ndarray) -> np.ndarray:
    """Number of distinct ``codes`` values each user queried.

    ``codes`` maps object id → attribute code (site, data type, or identity
    for the objects curve).  Vectorized: unique (user, code) pairs counted
    per user.
    """
    n_codes = int(codes.max()) + 1 if codes.size else 1
    keys = trace.user_ids * np.int64(n_codes) + codes[trace.object_ids]
    uniq = np.unique(keys)
    users = (uniq // n_codes).astype(np.int64)
    return np.bincount(users, minlength=trace.num_users)


@dataclasses.dataclass(frozen=True)
class UserQueryDistributions:
    """The three Fig-3 curves, each sorted descending (one value per user)."""

    objects: np.ndarray
    locations: np.ndarray
    data_types: np.ndarray
    total_queries: np.ndarray

    def summary(self) -> Dict[str, float]:
        """Headline statistics for reporting."""
        active = self.total_queries > 0
        return {
            "active_users": int(active.sum()),
            "median_objects": float(np.median(self.objects[self.objects > 0])),
            "max_objects": int(self.objects.max()),
            "median_locations": float(np.median(self.locations[self.locations > 0])),
            "max_locations": int(self.locations.max()),
            "median_data_types": float(np.median(self.data_types[self.data_types > 0])),
            "max_data_types": int(self.data_types.max()),
            "query_gini": gini_coefficient(self.total_queries),
            "objects_tail_ratio": tail_ratio(self.objects),
        }


def compute_distributions(trace: QueryTrace, catalog: FacilityCatalog) -> UserQueryDistributions:
    """Compute the Fig-3 per-user distinct-count curves (sorted descending)."""
    if trace.num_objects != catalog.num_objects:
        raise ValueError("trace and catalog disagree on the number of data objects")
    objects = _distinct_per_user(trace, np.arange(catalog.num_objects, dtype=np.int64))
    locations = _distinct_per_user(trace, catalog.object_site)
    dtypes = _distinct_per_user(trace, catalog.object_dtype)
    totals = trace.per_user_counts()
    order = np.argsort(-totals, kind="stable")
    return UserQueryDistributions(
        objects=objects[order],
        locations=locations[order],
        data_types=dtypes[order],
        total_queries=totals[order],
    )


def tail_ratio(values: np.ndarray, top_fraction: float = 0.1) -> float:
    """Share of the total contributed by the top ``top_fraction`` of users.

    Heavy-tailed curves (the paper's traces) put most mass in the top decile.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    values = np.sort(np.asarray(values, dtype=np.float64))[::-1]
    total = values.sum()
    if total <= 0:
        return 0.0
    k = max(1, int(np.ceil(len(values) * top_fraction)))
    return float(values[:k].sum() / total)


def gini_coefficient(values: np.ndarray) -> float:
    """Gini inequality coefficient of a nonnegative array (0 = uniform)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    if (v < 0).any():
        raise ValueError("gini requires nonnegative values")
    n = len(v)
    index = np.arange(1, n + 1)
    return float((2.0 * (index * v).sum() - (n + 1) * v.sum()) / (n * v.sum()))
