"""Op-timer profiler: where does a training epoch's wall-clock go?

Reuses the monkeypatch machinery of :mod:`repro.analysis.sanitizer`: every
public op in :mod:`repro.autograd.functional`, every fused Tensor op in
:mod:`repro.kernels.dispatch`, and :meth:`~repro.autograd.optim.Optimizer.step`
is wrapped with a timing shim while a profile is active.  Each wrapper records

- **forward** seconds — wall-clock of the op call itself, attributed only to
  *top-level* calls (a composite op like ``bpr_loss`` that invokes other
  instrumented ops absorbs their time; nothing is double-counted);
- **backward** seconds — the op's ``_backward`` closure is rewrapped on the
  output tensor, so the tape walk in
  :meth:`~repro.autograd.tensor.Tensor.backward` times each node exactly.

The result is a :class:`ProfileReport` mapping op name → (calls, forward s,
backward s), with :meth:`ProfileReport.table` rendering the per-op wall-clock
share the ``repro profile`` CLI command prints.  This is the receipts side of
the fused-kernel work: run an epoch under the ``oracle`` backend and the
gather/scatter chain dominates; run it fused and the same time collapses into
``edge_attention_scores`` / ``weighted_neighbor_sum`` at a fraction of the
wall-clock.

Instrumentation is installed by patching module attributes and fully removed
on exit, so an un-profiled run costs nothing.  Profiling composes with the
sanitizer (either order): each layer saves and restores whatever callable it
found.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.autograd import functional as F
from repro.autograd import optim as _optim
from repro.autograd.tensor import Tensor
from repro.kernels import dispatch as _dispatch

__all__ = ["OpStat", "ProfileReport", "profiled", "enable", "disable", "is_enabled"]


@dataclasses.dataclass
class OpStat:
    """Accumulated timings for one instrumented op."""

    name: str
    calls: int = 0
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "forward_seconds": self.forward_seconds,
            "backward_seconds": self.backward_seconds,
            "total_seconds": self.total_seconds,
        }


class ProfileReport:
    """Per-op timing totals for one profiled block.

    ``wall_seconds`` is the wall-clock of the whole block; the per-op totals
    cover only instrumented calls, so their sum is a lower bound (Python
    control flow, sampling, and raw-NumPy glue make up the difference).
    """

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self.wall_seconds: float = 0.0

    def _stat(self, name: str) -> OpStat:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStat(name)
        return stat

    @property
    def op_seconds(self) -> float:
        """Total instrumented seconds (forward + backward over all ops)."""
        return sum(s.total_seconds for s in self.stats.values())

    def sorted_stats(self) -> List[OpStat]:
        """Stats sorted by descending total time (name-tiebroken, stable)."""
        return sorted(self.stats.values(), key=lambda s: (-s.total_seconds, s.name))

    def as_dict(self) -> Dict[str, object]:
        return {
            "wall_seconds": self.wall_seconds,
            "op_seconds": self.op_seconds,
            "ops": {s.name: s.as_dict() for s in self.sorted_stats()},
        }

    def table(self, top: Optional[int] = 15) -> str:
        """Human-readable per-op table, biggest total first.

        ``share`` is the op's fraction of all *instrumented* time — the
        number that shows where an epoch's compute actually goes.
        """
        stats = self.sorted_stats()
        if top is not None:
            stats = stats[:top]
        denom = self.op_seconds or 1.0
        width = max([len(s.name) for s in stats] + [4])
        lines = [
            f"{'op':<{width}} {'calls':>7} {'fwd s':>9} {'bwd s':>9} {'total s':>9} {'share':>6}"
        ]
        for s in stats:
            lines.append(
                f"{s.name:<{width}} {s.calls:>7d} {s.forward_seconds:>9.3f} "
                f"{s.backward_seconds:>9.3f} {s.total_seconds:>9.3f} "
                f"{100.0 * s.total_seconds / denom:>5.1f}%"
            )
        lines.append(
            f"instrumented {self.op_seconds:.3f}s of {self.wall_seconds:.3f}s wall "
            f"({100.0 * self.op_seconds / (self.wall_seconds or 1.0):.1f}% coverage)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------- wrappers
_active: Optional[ProfileReport] = None
# Depth of instrumented calls on the stack: only depth-0 calls are timed, so
# composite ops don't double-count the primitives they invoke.
_depth = 0


def _timed_op(name: str, fn: Callable) -> Callable:
    @functools.wraps(fn)
    def wrapped(*args, **kwargs):
        global _depth
        report = _active
        if report is None or _depth:
            _depth += 1
            try:
                return fn(*args, **kwargs)
            finally:
                _depth -= 1
        _depth += 1
        t0 = time.perf_counter()
        try:
            out = fn(*args, **kwargs)
        finally:
            dt = time.perf_counter() - t0
            _depth -= 1
        stat = report._stat(name)
        stat.calls += 1
        stat.forward_seconds += dt
        if isinstance(out, Tensor) and out._backward is not None:
            inner = out._backward

            def timed_backward(grad):
                t1 = time.perf_counter()
                try:
                    inner(grad)
                finally:
                    stat.backward_seconds += time.perf_counter() - t1

            out._backward = timed_backward
        return out

    wrapped.__profiler_wrapped__ = True
    return wrapped


def _timed_step(original: Callable) -> Callable:
    @functools.wraps(original)
    def wrapped(self):
        report = _active
        if report is None:
            return original(self)
        t0 = time.perf_counter()
        try:
            return original(self)
        finally:
            stat = report._stat("optimizer.step")
            stat.calls += 1
            stat.forward_seconds += time.perf_counter() - t0

    wrapped.__profiler_wrapped__ = True
    return wrapped


# ------------------------------------------------------------ install state
_installed = False
_saved_ops: Dict[str, Callable] = {}
_saved_dispatch_ops: Dict[str, Callable] = {}
_saved_step: Optional[Callable] = None


def is_enabled() -> bool:
    """Whether the profiler instrumentation is currently installed."""
    return _installed


def enable() -> None:
    """Install the timing instrumentation (idempotent)."""
    global _installed, _saved_step
    if _installed:
        return
    for name in F.__all__:
        fn = getattr(F, name)
        _saved_ops[name] = fn
        setattr(F, name, _timed_op(name, fn))
    for name in _dispatch.TENSOR_OPS:
        fn = getattr(_dispatch, name)
        _saved_dispatch_ops[name] = fn
        setattr(_dispatch, name, _timed_op(name, fn))
    _saved_step = _optim.Optimizer.step
    _optim.Optimizer.step = _timed_step(_saved_step)
    _installed = True


def disable() -> None:
    """Remove the instrumentation (idempotent)."""
    global _installed, _saved_step
    if not _installed:
        return
    for name, fn in _saved_ops.items():
        setattr(F, name, fn)
    _saved_ops.clear()
    for name, fn in _saved_dispatch_ops.items():
        setattr(_dispatch, name, fn)
    _saved_dispatch_ops.clear()
    _optim.Optimizer.step = _saved_step
    _saved_step = None
    _installed = False


@contextlib.contextmanager
def profiled() -> Iterator[ProfileReport]:
    """Profile the enclosed block, yielding the report being filled.

    The report's totals are final once the block exits.  Nesting-safe in the
    same way as :func:`repro.analysis.sanitizer.sanitized`; concurrent
    profiles are not supported (one active report at a time).
    """
    global _active
    if _active is not None:
        raise RuntimeError("a profile is already active; profiled() does not nest")
    was_installed = _installed
    enable()
    report = ProfileReport()
    _active = report
    t0 = time.perf_counter()
    try:
        yield report
    finally:
        report.wall_seconds = time.perf_counter() - t0
        _active = None
        if not was_installed:
            disable()
