"""Runtime numeric sanitizer for the autograd engine.

Static analysis (:mod:`repro.analysis.lint`) catches structural hazards; this
module catches the *numeric* ones that only exist at run time: NaN/Inf values
appearing mid-computation, gradients whose shape has drifted from their
parameter, and silent float64 upcasts leaking into the float32 evaluation
fast path.  When enabled it instruments the engine at four choke points —

- every public op in :mod:`repro.autograd.functional` and every fused Tensor
  op in :mod:`repro.kernels.dispatch` (outputs are checked for non-finite
  values and for all-float32 inputs producing float64);
- :class:`~repro.autograd.tensor.Tensor` construction (data checked unless
  the tensor is being built inside an instrumented op, which already names
  the op);
- :meth:`~repro.autograd.tensor.Tensor.accumulate_grad` (incoming gradients
  checked before they are folded into the buffer);
- :meth:`~repro.autograd.optim.Optimizer.step` (gradient/parameter shape
  agreement and finiteness before the update, parameter finiteness after).

Every violation raises :class:`SanitizerError` carrying the *innermost*
offending op name, so a NaN born in ``log`` is reported as ``log`` even when
it surfaces inside ``bpr_loss``.

Enable with the ``REPRO_SANITIZE=1`` environment variable (checked at
``import repro`` time), the :func:`sanitized` context manager, or explicit
:func:`enable`/:func:`disable` calls.  The instrumentation is installed by
patching module/class attributes and fully removed on :func:`disable`, so a
disabled sanitizer costs nothing.
"""

from __future__ import annotations

import contextlib
import functools
import os
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import optim as _optim
from repro.autograd.sparse import SparseRowGrad
from repro.autograd.tensor import Tensor
from repro.kernels import dispatch as _dispatch

__all__ = [
    "ENV_VAR",
    "SanitizerError",
    "enable",
    "disable",
    "is_enabled",
    "sanitized",
    "install_from_env",
]

ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(RuntimeError):
    """A numeric invariant was violated during an instrumented operation.

    Attributes
    ----------
    op:
        Name of the innermost instrumented operation (e.g. ``"log"``,
        ``"step[fm.v]"``, ``"accumulate_grad[ckat.W0]"``).
    kind:
        One of ``"nan"``, ``"inf"``, ``"upcast"``, ``"shape"``.
    """

    def __init__(self, message: str, op: str, kind: str):
        super().__init__(message)
        self.op = op
        self.kind = kind


# ------------------------------------------------------------------- checks

def _check_finite(arr: np.ndarray, op: str, what: str) -> None:
    """Raise :class:`SanitizerError` if a float array holds NaN or Inf."""
    if not np.issubdtype(arr.dtype, np.floating):
        return
    if np.isfinite(arr).all():
        return
    kind = "nan" if np.isnan(arr).any() else "inf"
    raise SanitizerError(
        f"{kind.upper()} detected in {what} of '{op}'", op=op, kind=kind
    )


def _tensor_args(args, kwargs) -> List[Tensor]:
    """Collect Tensor operands from an op call (one level into sequences)."""
    found: List[Tensor] = []

    def visit(value) -> None:
        if isinstance(value, Tensor):
            found.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Tensor):
                    found.append(item)

    for a in args:
        visit(a)
    for v in kwargs.values():
        visit(v)
    return found


# ----------------------------------------------------------------- wrappers
# Depth of instrumented-op calls currently on the stack.  The Tensor.__init__
# hook stays quiet while an op is running: the op wrapper performs the same
# check on the finished output and, unlike the constructor, knows the op name.
_op_depth = 0


def _wrap_op(name: str, fn: Callable) -> Callable:
    @functools.wraps(fn)
    def wrapped(*args, **kwargs):
        global _op_depth
        _op_depth += 1
        try:
            out = fn(*args, **kwargs)
        finally:
            _op_depth -= 1
        if isinstance(out, Tensor):
            _check_finite(out.data, name, "output")
            ins = _tensor_args(args, kwargs)
            if (
                ins
                and out.data.dtype == np.float64
                and all(t.data.dtype == np.float32 for t in ins)
            ):
                raise SanitizerError(
                    f"silent float64 upcast in '{name}': every tensor input is "
                    "float32 but the output is float64",
                    op=name,
                    kind="upcast",
                )
        return out

    wrapped.__sanitizer_wrapped__ = True
    return wrapped


def _sanitized_tensor_init(original: Callable) -> Callable:
    @functools.wraps(original)
    def wrapped(self, data, requires_grad=False, _parents=(), _backward=None, name=""):
        original(self, data, requires_grad, _parents, _backward, name)
        if _op_depth == 0:
            label = name or f"Tensor{self.data.shape}"
            _check_finite(self.data, label, "data")

    wrapped.__sanitizer_wrapped__ = True
    return wrapped


def _sanitized_accumulate_grad(original: Callable) -> Callable:
    @functools.wraps(original)
    def wrapped(self, grad, owned=False):
        label = self.name or f"tensor{self.data.shape}"
        if isinstance(grad, SparseRowGrad):
            # Check the stored row values directly — np.asarray would
            # densify, defeating the sparse path's whole point.
            _check_finite(grad.values, f"accumulate_grad[{label}]", "sparse gradient")
        else:
            _check_finite(np.asarray(grad), f"accumulate_grad[{label}]", "gradient")
        original(self, grad, owned)

    wrapped.__sanitizer_wrapped__ = True
    return wrapped


def _sanitized_step(original: Callable) -> Callable:
    @functools.wraps(original)
    def wrapped(self):
        for p in self.params:
            if p.grad is None:
                continue
            label = p.name or f"param{p.data.shape}"
            if p.grad.shape != p.data.shape:
                raise SanitizerError(
                    f"gradient shape {p.grad.shape} does not match parameter "
                    f"shape {p.data.shape} in 'step[{label}]'",
                    op=f"step[{label}]",
                    kind="shape",
                )
            garr = p.grad.values if isinstance(p.grad, SparseRowGrad) else p.grad
            _check_finite(garr, f"step[{label}]", "gradient")
        original(self)
        for p in self.params:
            if p.grad is not None:
                label = p.name or f"param{p.data.shape}"
                _check_finite(p.data, f"step[{label}]", "updated parameter")

    wrapped.__sanitizer_wrapped__ = True
    return wrapped


# ------------------------------------------------------------ install state
_installed = False
_saved_ops: Dict[str, Callable] = {}
_saved_dispatch_ops: Dict[str, Callable] = {}
_saved_tensor_init: Optional[Callable] = None
_saved_accumulate_grad: Optional[Callable] = None
_saved_step: Optional[Callable] = None


def is_enabled() -> bool:
    """Whether the sanitizer instrumentation is currently installed."""
    return _installed


def _already_wrapped(fn: Callable) -> bool:
    return bool(getattr(fn, "__sanitizer_wrapped__", False))


def enable() -> None:
    """Install the instrumentation (idempotent).

    Guarded twice: the module-level ``_installed`` flag short-circuits the
    common repeat call (``REPRO_SANITIZE=1`` install at import plus an
    explicit ``sanitized()`` block), and a per-function
    ``__sanitizer_wrapped__`` marker refuses to wrap an already-instrumented
    attribute even if the flag is ever out of sync with the patched engine
    (e.g. the sanitizer module imported under two names).  Without the
    second guard a double install would also poison ``disable()``: the
    "original" it saves on the second pass is the first pass's wrapper, so
    the engine could never be fully restored.
    """
    global _installed, _saved_tensor_init, _saved_accumulate_grad, _saved_step
    if _installed:
        return
    for name in F.__all__:
        fn = getattr(F, name)
        if _already_wrapped(fn):
            continue
        _saved_ops[name] = fn
        setattr(F, name, _wrap_op(name, fn))
    for name in _dispatch.TENSOR_OPS:
        fn = getattr(_dispatch, name)
        if _already_wrapped(fn):
            continue
        _saved_dispatch_ops[name] = fn
        setattr(_dispatch, name, _wrap_op(name, fn))
    if not _already_wrapped(Tensor.__init__):
        _saved_tensor_init = Tensor.__init__
        Tensor.__init__ = _sanitized_tensor_init(_saved_tensor_init)
    if not _already_wrapped(Tensor.accumulate_grad):
        _saved_accumulate_grad = Tensor.accumulate_grad
        Tensor.accumulate_grad = _sanitized_accumulate_grad(_saved_accumulate_grad)
    if not _already_wrapped(_optim.Optimizer.step):
        _saved_step = _optim.Optimizer.step
        _optim.Optimizer.step = _sanitized_step(_saved_step)
    _installed = True


def disable() -> None:
    """Remove the instrumentation, restoring the original engine (idempotent)."""
    global _installed, _saved_tensor_init, _saved_accumulate_grad, _saved_step
    if not _installed:
        return
    for name, fn in _saved_ops.items():
        setattr(F, name, fn)
    _saved_ops.clear()
    for name, fn in _saved_dispatch_ops.items():
        setattr(_dispatch, name, fn)
    _saved_dispatch_ops.clear()
    if _saved_tensor_init is not None:
        Tensor.__init__ = _saved_tensor_init
    if _saved_accumulate_grad is not None:
        Tensor.accumulate_grad = _saved_accumulate_grad
    if _saved_step is not None:
        _optim.Optimizer.step = _saved_step
    _saved_tensor_init = _saved_accumulate_grad = _saved_step = None
    _installed = False


@contextlib.contextmanager
def sanitized() -> Iterator[None]:
    """Context manager enabling the sanitizer for the enclosed block.

    Nesting-safe: if the sanitizer was already enabled on entry it stays
    enabled on exit.
    """
    was_enabled = _installed
    enable()
    try:
        yield
    finally:
        if not was_enabled:
            disable()


def install_from_env(environ=None) -> bool:
    """Enable the sanitizer when ``REPRO_SANITIZE`` is set to a truthy value.

    Called once at ``import repro`` time; returns whether it enabled.
    Recognized falsy values: unset, empty, ``0``, ``false``, ``no``, ``off``
    (case-insensitive).
    """
    env = os.environ if environ is None else environ
    value = env.get(ENV_VAR, "").strip().lower()
    if value in ("", "0", "false", "no", "off"):
        return False
    enable()
    return True
