"""Trace analysis (Section III): the measurements behind Figures 3–5.

- :mod:`~repro.analysis.distributions` — per-user query distribution curves
  (Fig 3: queried objects, instrument locations, data types);
- :mod:`~repro.analysis.tsne` — exact-gradient t-SNE in NumPy and the
  Fig-4 per-organization embedding of heavy users' queried objects;
- :mod:`~repro.analysis.locality` — the Fig-5 paired-user study (same-city
  vs random pairs) and the Section III-B2 query-concentration statistics.

The subpackage also hosts the reproduction's self-analysis tooling:

- :mod:`~repro.analysis.lint` — reprolint, the project-aware static analyzer
  (``repro lint``);
- :mod:`~repro.analysis.sanitizer` — the runtime numeric sanitizer
  (``REPRO_SANITIZE=1`` / ``repro sanitize-run``).
"""

from repro.analysis.distributions import UserQueryDistributions, compute_distributions
from repro.analysis.sanitizer import SanitizerError, sanitized
from repro.analysis.locality import (
    PairStudyResult,
    pair_similarity_study,
    query_concentration,
)
from repro.analysis.summary import FacilityReport, facility_report
from repro.analysis.tsne import TSNE, object_feature_matrix, tsne_embed_user_queries

__all__ = [
    "UserQueryDistributions",
    "compute_distributions",
    "query_concentration",
    "pair_similarity_study",
    "PairStudyResult",
    "TSNE",
    "object_feature_matrix",
    "tsne_embed_user_queries",
    "FacilityReport",
    "facility_report",
    "SanitizerError",
    "sanitized",
]
