"""Neural Factorization Machine (He & Chua, 2017).

NFM replaces FM's scalar pairwise term with a *bi-interaction pooling*
vector

    f_BI(x) = ½ [ (Σ_x v_x)² − Σ_x v_x² ]          (elementwise, ∈ R^d)

followed by an MLP; per the paper's setup "we employ one hidden layer on
input features" (Section VI-C).  Features are the same user / item /
KG-entity design as :class:`repro.models.fm.FM`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.models.base import Recommender, batch_l2
from repro.models.fm import ItemFeatureTable
from repro.utils.rng import ensure_rng

__all__ = ["NFM"]


class NFM(Recommender):
    """FM subsumed under a neural network with one hidden layer."""

    name = "NFM"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        features: ItemFeatureTable,
        dim: int = 64,
        hidden_dim: int = 64,
        dropout: float = 0.1,
        l2: float = 1e-5,
        seed=0,
    ):
        super().__init__(num_users, num_items)
        if dim <= 0 or hidden_dim <= 0:
            raise ValueError("dim and hidden_dim must be positive")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        rng = ensure_rng(seed)
        self.features = features
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.dropout = dropout
        self.l2 = l2
        self._train_mode = True
        self._rng = ensure_rng(rng.integers(2**31))
        n_feat = features.num_entities
        self.factors = Parameter(xavier_uniform((n_feat, dim), rng, gain=0.5), name="nfm.v")
        self.linear = Parameter(np.zeros((n_feat, 1), dtype=np.float64), name="nfm.w")
        self.bias = Parameter(np.zeros(1, dtype=np.float64), name="nfm.w0")
        self.W1 = Parameter(xavier_uniform((dim, hidden_dim), rng), name="nfm.W1")
        self.b1 = Parameter(np.zeros(hidden_dim, dtype=np.float64), name="nfm.b1")
        self.h = Parameter(xavier_uniform((hidden_dim, 1), rng), name="nfm.h")

    def parameters(self) -> List[Parameter]:
        return [self.factors, self.linear, self.bias, self.W1, self.b1, self.h]

    def extra_rng_state(self) -> dict:
        return {"dropout": self._rng.bit_generator.state}

    def restore_extra_rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["dropout"]

    # ------------------------------------------------------------- internals
    def _bi_interaction(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Bi-interaction pooled vector per pair, shape (B, d)."""
        u_ids = np.asarray(users, dtype=np.int64) + self.features.user_offset
        i_ids = np.asarray(items, dtype=np.int64) + self.features.item_offset
        attr_flat, seg = self.features.batch_attrs(items)
        vu = F.take_rows(self.factors, u_ids)
        vi = F.take_rows(self.factors, i_ids)
        va = F.take_rows(self.factors, attr_flat)
        attr_sum = F.segment_sum(va, seg)
        attr_sq = F.segment_sum(F.mul(va, va), seg)
        total = F.add(F.add(vu, vi), attr_sum)
        sum_sq = F.add(F.add(F.mul(vu, vu), F.mul(vi, vi)), attr_sq)
        return F.mul(F.sub(F.mul(total, total), sum_sq), F.astensor(0.5))

    def _linear_term(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u_ids = np.asarray(users, dtype=np.int64) + self.features.user_offset
        i_ids = np.asarray(items, dtype=np.int64) + self.features.item_offset
        attr_flat, seg = self.features.batch_attrs(items)
        wu = F.reshape(F.take_rows(self.linear, u_ids), (len(users),))
        wi = F.reshape(F.take_rows(self.linear, i_ids), (len(users),))
        wa = F.reshape(F.segment_sum(F.take_rows(self.linear, attr_flat), seg), (len(users),))
        return F.add(F.add(wu, wi), wa)

    def _pair_scores(self, users: np.ndarray, items: np.ndarray, training: bool) -> Tensor:
        bi = self._bi_interaction(users, items)
        if training and self.dropout > 0:
            bi = F.dropout(bi, self.dropout, self._rng, training=True)
        hidden = F.relu(F.add(bi @ self.W1, self.b1))
        mlp = F.reshape(hidden @ self.h, (len(users),))
        return F.add(F.add(self._linear_term(users, items), mlp), F.reshape(self.bias, (1,)))

    # -------------------------------------------------------------- training
    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        pos_scores = self._pair_scores(users, pos, training=True)
        neg_scores = self._pair_scores(users, neg, training=True)
        loss = F.bpr_loss(pos_scores, neg_scores)
        vu = F.take_rows(self.factors, users + self.features.user_offset)
        vi = F.take_rows(self.factors, pos + self.features.item_offset)
        vj = F.take_rows(self.factors, neg + self.features.item_offset)
        reg = F.mul(batch_l2(vu, vi, vj, self.W1, self.h), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    # ------------------------------------------------------------- inference
    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Full-catalog scores; evaluated in item chunks without the tape.

        Unlike plain FM, the MLP makes the score non-decomposable, so each
        (user, item) pair's bi-interaction vector is materialized — chunked
        so peak memory stays at ``chunk × d`` per user.
        """
        users = np.asarray(users, dtype=np.int64)
        V = self.factors.data
        w = self.linear.data[:, 0]
        n = self.num_items
        # Precompute item-side aggregates once.
        item_ids = np.arange(n, dtype=np.int64) + self.features.item_offset
        S = V[item_ids].copy()  # Σ item-side factors
        L = w[item_ids].copy()
        Q = (V[item_ids] ** 2).sum(axis=1)
        flat, seg = self.features.batch_attrs(np.arange(n, dtype=np.int64))
        seg_ids = np.repeat(np.arange(n, dtype=np.int64), np.diff(seg))
        np.add.at(S, seg_ids, V[flat])
        np.add.at(L, seg_ids, w[flat])
        np.add.at(Q, seg_ids, (V[flat] ** 2).sum(axis=1))
        item_sq = V[item_ids] ** 2  # Σ_x v_x² per item over {item} ∪ attrs, (n, d)
        np.add.at(item_sq, seg_ids, V[flat] ** 2)
        out = np.empty((len(users), n), dtype=np.float64)
        W1, b1, h = self.W1.data, self.b1.data, self.h.data[:, 0]
        bias = float(self.bias.data[0])
        for row, user in enumerate(users):
            vu = V[user + self.features.user_offset]
            total = vu[None, :] + S  # (n, d)
            bi = 0.5 * (total**2 - ((vu**2)[None, :] + item_sq))
            hidden = np.maximum(bi @ W1 + b1, 0.0)
            out[row] = bias + w[user + self.features.user_offset] + L + hidden @ h
        return out
