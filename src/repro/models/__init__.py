"""Recommendation models: CKAT and the seven baselines of Table II.

All models share the :class:`~repro.models.base.Recommender` interface
(``fit`` / ``score_users`` / ``recommend``) and are built on the NumPy
autodiff engine in :mod:`repro.autograd`.

- :mod:`~repro.models.bprmf` — BPRMF, collaborative filtering by pairwise
  matrix factorization (Rendle et al., 2012);
- :mod:`~repro.models.fm` — Factorization Machines over user/item/KG-entity
  features (Rendle et al., 2011);
- :mod:`~repro.models.nfm` — Neural FM with one hidden layer over the
  bi-interaction pooling (He & Chua, 2017);
- :mod:`~repro.models.cke` — Collaborative Knowledge-base Embedding, BPRMF
  regularized by TransR structural embeddings (Zhang et al., 2016);
- :mod:`~repro.models.cfkg` — TransE over the unified user–item–knowledge
  graph, scoring by translation distance (Ai et al., 2018);
- :mod:`~repro.models.ripplenet` — preference propagation over per-user
  ripple sets (Wang et al., 2018);
- :mod:`~repro.models.kgcn` — knowledge graph convolution with user-specific
  relation attention over sampled neighborhoods (Wang et al., 2019);
- :mod:`~repro.models.ckat` — the paper's model: TransR embedding layer +
  knowledge-aware attentive embedding propagation + BPR (Section V).
"""

from repro.models.base import FitConfig, FitResult, Recommender
from repro.models.bprmf import BPRMF
from repro.models.cfkg import CFKG
from repro.models.ckat import CKAT, CKATConfig
from repro.models.cke import CKE
from repro.models.embeddings import TransE, TransR
from repro.models.fm import FM, ItemFeatureTable
from repro.models.kgcn import KGCN
from repro.models.nfm import NFM
from repro.models.popularity import MostPopular, RandomRecommender
from repro.models.ripplenet import RippleNet

__all__ = [
    "Recommender",
    "FitConfig",
    "FitResult",
    "TransR",
    "TransE",
    "BPRMF",
    "FM",
    "NFM",
    "ItemFeatureTable",
    "CKE",
    "CFKG",
    "RippleNet",
    "KGCN",
    "CKAT",
    "CKATConfig",
    "MostPopular",
    "RandomRecommender",
]
