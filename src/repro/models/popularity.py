"""Trivial non-personalized baselines: MostPopular and Random.

Not in the paper's Table II, but indispensable sanity anchors for any
recommender evaluation: every learned model must beat Random decisively and
MostPopular clearly; if a learned model only matches MostPopular, the
personalization signal is not being used.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import Parameter
from repro.data.interactions import InteractionDataset
from repro.models.base import FitConfig, FitResult, Recommender
from repro.utils.rng import ensure_rng

__all__ = ["MostPopular", "RandomRecommender"]


class MostPopular(Recommender):
    """Ranks items by global training popularity (same list for everyone)."""

    name = "MostPopular"

    def __init__(self, num_users: int, num_items: int):
        super().__init__(num_users, num_items)
        self._scores = np.zeros(num_items, dtype=np.float64)
        self._fitted = False

    def parameters(self) -> List[Parameter]:
        return []

    def fit(self, train: InteractionDataset, config: FitConfig = None, eval_callback=None) -> FitResult:
        """Count item degrees; the 'loss' reported is 0 (nothing optimized)."""
        if train.num_users != self.num_users or train.num_items != self.num_items:
            raise ValueError("dataset shape does not match model")
        self._scores = train.item_degree().astype(np.float64)
        self._fitted = True
        return FitResult(losses=[0.0], extra_losses=[0.0], seconds=0.0, eval_history=[])

    def score_users(self, users: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("MostPopular must be fit() before scoring")
        return np.tile(self._scores, (len(np.asarray(users)), 1))


class RandomRecommender(Recommender):
    """Uniform random scores — the absolute floor for every metric."""

    name = "Random"

    def __init__(self, num_users: int, num_items: int, seed=0):
        super().__init__(num_users, num_items)
        self._root_seed = ensure_rng(seed).integers(2**63 - 1)

    def parameters(self) -> List[Parameter]:
        return []

    def fit(self, train: InteractionDataset, config: FitConfig = None, eval_callback=None) -> FitResult:
        """Nothing to learn."""
        return FitResult(losses=[0.0], extra_losses=[0.0], seconds=0.0, eval_history=[])

    def score_users(self, users: np.ndarray) -> np.ndarray:
        # Scores are a pure function of (seed, user), so repeated calls rank
        # identically — evaluation batching cannot change the outcome.
        users = np.asarray(users, dtype=np.int64)
        out = np.empty((len(users), self.num_items), dtype=np.float64)
        for row, u in enumerate(users):
            out[row] = np.random.default_rng(self._root_seed + int(u)).random(self.num_items)
        return out
