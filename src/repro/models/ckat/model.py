"""The CKAT recommendation model (Section V).

Architecture (Fig. 6a):

1. **Embedding layer** — TransR over the CKG (Eqs. 1–2).  The entity table is
   shared between the TransR objective and propagation, so structural
   knowledge regularizes the collaborative signal.
2. **Knowledge-aware attentive embedding propagation** — L stacked
   :class:`~repro.models.ckat.layers.PropagationLayer` steps over the
   inverse-augmented CKG with edge attention from
   :func:`~repro.models.ckat.layers.compute_edge_attention`.
3. **Prediction layer** — layer-concatenated representations (Eq. 10) scored
   by inner product (Eq. 11).

Optimization (Section V-D): L = L1 (TransR margin) + L2 (BPR) + λ‖Θ‖².
Following the KGAT reference implementation the two parts alternate — each
epoch runs a TransR phase over the graph's triples, then BPR minibatches; the
attention weights are refreshed from the current TransR parameters once per
epoch (``attention_mode="epoch"``, the default) or recomputed inside every
batch with full gradient flow (``attention_mode="batch"``, exact Eq. 4–5
backprop, ~10× slower).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Parameter, Tensor, no_grad
from repro.autograd import functional as F
from repro.kg.adjacency import CSRAdjacency
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.models.base import FitConfig, Recommender, batch_l2
from repro.models.ckat.layers import (
    PropagationLayer,
    build_weighted_adjacency,
    compute_edge_attention,
    uniform_edge_weights,
)
from repro.models.embeddings import TransR
from repro.train.engine import StepFn
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_choices

__all__ = ["CKAT", "CKATConfig"]


@dataclasses.dataclass(frozen=True)
class CKATConfig:
    """CKAT hyperparameters (defaults follow Section VI-D).

    ``layer_dims`` gives the hidden dimension of each propagation layer —
    the paper uses depth 3 with (64, 32, 16).  ``use_attention=False`` swaps
    the knowledge-aware attention for degree-normalized uniform weights
    (Table IV ablation).
    """

    dim: int = 64
    relation_dim: int = 64
    layer_dims: Tuple[int, ...] = (64, 32, 16)
    aggregator: str = "concat"
    use_attention: bool = True
    attention_mode: str = "epoch"
    dropout: float = 0.1
    normalize: bool = True
    """L2-normalize each propagation layer's output before it enters the
    layer concatenation (Eq. 10).  ``False`` feeds the raw aggregator
    outputs through — the no-normalization ablation."""
    l2: float = 1e-5
    transr_margin: float = 1.0
    kg_batch_size: int = 2048
    kg_steps_per_epoch: int = 10

    def __post_init__(self):
        if self.dim <= 0 or self.relation_dim <= 0:
            raise ValueError("dim and relation_dim must be positive")
        if not self.layer_dims or any(d <= 0 for d in self.layer_dims):
            raise ValueError(f"layer_dims must be nonempty positive, got {self.layer_dims}")
        check_in_choices("aggregator", self.aggregator, ("concat", "sum"))
        check_in_choices("attention_mode", self.attention_mode, ("epoch", "batch"))
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")

    @property
    def depth(self) -> int:
        """Number of propagation layers L."""
        return len(self.layer_dims)


class CKAT(Recommender):
    """Collaborative knowledge-aware graph attention network."""

    name = "CKAT"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        ckg: CollaborativeKnowledgeGraph,
        config: CKATConfig = CKATConfig(),
        seed=0,
        graph: Optional[PreparedGraph] = None,
    ):
        super().__init__(num_users, num_items)
        rng = ensure_rng(seed)
        self.config = config
        self.ckg = ckg
        # A shared PreparedGraph (table harness / artifact cache) supplies
        # the propagation adjacency pre-built; deriving it here is the
        # bit-identical fallback.
        if graph is not None:
            self.adj = graph.check_compatible(ckg).propagation
        else:
            self.adj = CSRAdjacency(ckg.propagation_store)
        self.transr = TransR(
            num_entities=ckg.num_entities,
            num_relations=max(ckg.propagation_store.num_relations, 1),
            entity_dim=config.dim,
            relation_dim=config.relation_dim,
            seed=rng,
            margin=config.transr_margin,
        )
        self.layers: List[PropagationLayer] = []
        in_dim = config.dim
        for li, out_dim in enumerate(config.layer_dims):
            self.layers.append(
                PropagationLayer(
                    in_dim,
                    out_dim,
                    aggregator=config.aggregator,
                    rng=rng,
                    dropout=config.dropout,
                    normalize=config.normalize,
                    name=f"ckat.layer{li}",
                )
            )
            in_dim = out_dim
        self._user_entities = ckg.all_user_entities()
        self._item_entities = ckg.all_item_entities()
        self._dropout_rng = ensure_rng(rng.integers(2**31))
        self._edge_weights: Optional[np.ndarray] = None
        self._sparse_adj = None
        self.refresh_attention()

    # ------------------------------------------------------------ attention
    def refresh_attention(self) -> None:
        """Recompute frozen per-edge attention from current TransR params.

        Called at construction and after every epoch (``on_epoch_end``).  In
        the w/o-attention ablation the weights are degree-normalized
        constants and never change.
        """
        if not self.config.use_attention:
            self._edge_weights = uniform_edge_weights(self.adj)
        else:
            with no_grad():
                att = compute_edge_attention(
                    self.transr.entity_emb, self.transr.relation_emb, self.transr.proj, self.adj
                )
            self._edge_weights = att.data
        self._sparse_adj = build_weighted_adjacency(self.adj, self._edge_weights)

    def on_epoch_end(self) -> None:
        if self.config.attention_mode == "epoch":
            self.refresh_attention()

    def extra_rng_state(self) -> dict:
        return {"dropout": self._dropout_rng.bit_generator.state}

    def restore_extra_rng_state(self, state: dict) -> None:
        self._dropout_rng.bit_generator.state = state["dropout"]

    # ----------------------------------------------------------- propagation
    def propagate(self, training: bool = False) -> Tensor:
        """All-entity final representations e* (Eq. 10), shape (Ent, Σdims)."""
        sparse = None
        if self.config.attention_mode == "batch" and self.config.use_attention:
            weights = compute_edge_attention(
                self.transr.entity_emb, self.transr.relation_emb, self.transr.proj, self.adj
            )
        else:
            weights = self._edge_weights
            sparse = self._sparse_adj
        emb = self.transr.entity_emb
        # As in the KGAT reference: the raw layer outputs feed the next
        # propagation step, while L2-normalized copies enter the final
        # layer-concatenation (Eq. 10).
        outputs = [emb]
        current = emb
        for layer in self.layers:
            current = layer(
                current,
                self.adj,
                weights,
                rng=self._dropout_rng,
                training=training,
                sparse_matrix=sparse,
            )
            # Honor the per-layer normalize flag (the no-normalization
            # ablation); the raw output always feeds the next layer.
            outputs.append(
                F.l2_normalize(current, axis=1) if layer.normalize else current
            )
        return F.concat(outputs, axis=1)

    # -------------------------------------------------------------- training
    def parameters(self) -> List[Parameter]:
        params = list(self.transr.parameters())
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        final = self.propagate(training=True)
        u = F.take_rows(final, self._user_entities[users])
        i = F.take_rows(final, self._item_entities[pos])
        j = F.take_rows(final, self._item_entities[neg])
        loss = F.bpr_loss(F.sum(F.mul(u, i), axis=1), F.sum(F.mul(u, j), axis=1))
        reg = F.mul(batch_l2(u, i, j), F.astensor(self.config.l2 / len(users)))
        return F.add(loss, reg)

    def extra_epoch_step(
        self, step: StepFn, rng: np.random.Generator, config: FitConfig
    ) -> float:
        """The L1 (TransR) phase: margin loss over CKG triples (Eq. 2)."""
        store = self.ckg.propagation_store
        if len(store) == 0 or self.config.kg_steps_per_epoch <= 0:
            return 0.0
        total = 0.0
        for _ in range(self.config.kg_steps_per_epoch):
            h, r, t = self.transr.sample_triples(store, self.config.kg_batch_size, rng)
            total += step(lambda: self.transr.margin_loss(h, r, t, rng))
        return total / self.config.kg_steps_per_epoch

    # ------------------------------------------------------------- inference
    def score_users(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        with no_grad():
            final = self.propagate(training=False).data
        u = final[self._user_entities[users]]
        v = final[self._item_entities]
        return u @ v.T

    def scoring_factors(self) -> Tuple[np.ndarray, np.ndarray]:
        """User/item rows of e* (Eq. 10-11): one propagation for a whole eval.

        ``score_users`` re-propagates per batch; the factor path runs the L
        propagation layers once and hands the evaluator two dense slices of
        the result.  Scores are identical — propagation is deterministic with
        dropout off.
        """
        with no_grad():
            final = self.propagate(training=False).data
        return final[self._user_entities], final[self._item_entities]

    def entity_representations(self) -> np.ndarray:
        """Final concatenated representations of all entities (no grad)."""
        with no_grad():
            return self.propagate(training=False).data.copy()
