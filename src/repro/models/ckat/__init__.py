"""CKAT: the collaborative knowledge-aware graph attention network.

The paper's primary contribution (Section V).  See
:mod:`repro.models.ckat.model` for the full model and
:mod:`repro.models.ckat.layers` for the knowledge-aware attention and the
concat/sum aggregators.
"""

from repro.models.ckat.layers import (
    ConcatAggregator,
    PropagationLayer,
    SumAggregator,
    compute_edge_attention,
    uniform_edge_weights,
)
from repro.models.ckat.model import CKAT, CKATConfig

__all__ = [
    "CKAT",
    "CKATConfig",
    "ConcatAggregator",
    "SumAggregator",
    "PropagationLayer",
    "compute_edge_attention",
    "uniform_edge_weights",
]
