"""CKAT building blocks: knowledge-aware attention and aggregators.

Knowledge-aware attention (Eqs. 4–5)
------------------------------------
For an edge (h, r, t) the unnormalized attention is

    fa(h, r, t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r)

computed in the *relation space* of the TransR embedding layer, followed by
a softmax over each head entity's edge segment.  Because W_r projects from
the entity space, attention is a function of the layer-0 (TransR) embeddings
— scores are computed once per forward pass and shared across propagation
layers (the same design as the KGAT reference implementation, whose
attention matrix is refreshed from the embedding layer).

Aggregators (Eqs. 6–7)
----------------------
``ConcatAggregator``: LeakyReLU(W · (e_h ‖ e_Nh)), the paper's default;
``SumAggregator``:    LeakyReLU(W · (e_h + e_Nh)), the Table-IV alternative.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.kernels import dispatch
from repro.kg.adjacency import CSRAdjacency

__all__ = [
    "compute_edge_attention",
    "uniform_edge_weights",
    "ConcatAggregator",
    "SumAggregator",
    "PropagationLayer",
]


def compute_edge_attention(
    entity_emb: Tensor,
    relation_emb: Tensor,
    proj: Tensor,
    adj: CSRAdjacency,
) -> Tensor:
    """Normalized attention weight per edge (Eqs. 4–5), shape (num_edges,).

    Edges are processed grouped by relation so each group shares one
    ``W_r`` matmul; results are scattered back to edge order (which is
    sorted by head, as :func:`repro.autograd.functional.segment_softmax`
    requires).  Fully differentiable: wrap in
    :func:`repro.autograd.tensor.no_grad` for frozen-attention training.
    """
    if adj.num_edges == 0:
        # F.concat rejects an empty piece list; a graph with no triples has
        # an empty (but well-formed) attention vector.
        return F.astensor(np.zeros(0, dtype=np.float64))
    if dispatch.fused_enabled():
        scores_sorted = dispatch.edge_attention_scores(entity_emb, relation_emb, proj, adj)
    else:
        scores_sorted = _edge_attention_scores_oracle(entity_emb, relation_emb, proj, adj)
    return F.segment_softmax(scores_sorted, adj.offsets)


def _edge_attention_scores_oracle(
    entity_emb: Tensor,
    relation_emb: Tensor,
    proj: Tensor,
    adj: CSRAdjacency,
) -> Tensor:
    """Per-op reference chain for the unnormalized scores (fusion oracle).

    This is the original fine-grained implementation — one autograd node per
    gather/matmul/tanh/mul/rowsum/concat/scatter step.  It stays as the
    parity and gradcheck oracle for
    :func:`repro.kernels.dispatch.edge_attention_scores` and runs when the
    ``oracle`` backend is selected.
    """
    order, bounds = adj.relation_edge_groups()
    pieces: List[Tensor] = []
    d = entity_emb.shape[1]
    for r in range(adj.num_relations):
        lo, hi = bounds[r], bounds[r + 1]
        if hi == lo:
            continue
        idx = order[lo:hi]
        Wr = F.reshape(F.take_rows(proj, np.array([r])), (proj.shape[1], d))  # (k, d)
        e_h = F.take_rows(entity_emb, adj.heads[idx])  # (m, d)
        e_t = F.take_rows(entity_emb, adj.tails[idx])
        r_vec = F.reshape(F.take_rows(relation_emb, np.array([r])), (1, proj.shape[1]))
        proj_h = e_h @ F.transpose(Wr)  # (m, k)
        proj_t = e_t @ F.transpose(Wr)
        scores = F.sum(F.mul(proj_t, F.tanh(F.add(proj_h, r_vec))), axis=1)  # (m,)
        pieces.append(scores)
    flat = F.concat(pieces, axis=0)
    # Scatter back from relation order to head-sorted edge order (cached:
    # concatenating the non-empty relation slices reproduces the full
    # grouping permutation, so its inverse is the precomputed scatter index).
    return F.take_rows(flat, adj.relation_scatter_index())


def uniform_edge_weights(adj: CSRAdjacency) -> np.ndarray:
    """Degree-normalized uniform weights (the w/o-attention ablation).

    Each edge of head ``h`` gets weight ``1 / |N_h|`` — GCN-style mean
    aggregation, which is what CKAT degenerates to without the knowledge-
    aware attention mechanism (Table IV, row 3).
    """
    degrees = adj.degree()
    seg_ids = np.repeat(np.arange(adj.num_entities, dtype=np.int64), degrees)
    return 1.0 / degrees[seg_ids].astype(np.float64)


class ConcatAggregator:
    """Eq. 6: LeakyReLU(W (e_h ‖ e_Nh) + b)."""

    mode = "concat"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, name: str = "agg"):
        self.W = Parameter(xavier_uniform((2 * in_dim, out_dim), rng), name=f"{name}.W")
        self.b = Parameter(np.zeros(out_dim, dtype=np.float64), name=f"{name}.b")

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def __call__(self, self_emb: Tensor, neigh_emb: Tensor) -> Tensor:
        joint = F.concat([self_emb, neigh_emb], axis=1)
        return F.leaky_relu(F.add(joint @ self.W, self.b))


class SumAggregator:
    """Eq. 7: LeakyReLU(W (e_h + e_Nh) + b)."""

    mode = "sum"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, name: str = "agg"):
        self.W = Parameter(xavier_uniform((in_dim, out_dim), rng), name=f"{name}.W")
        self.b = Parameter(np.zeros(out_dim, dtype=np.float64), name=f"{name}.b")

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def __call__(self, self_emb: Tensor, neigh_emb: Tensor) -> Tensor:
        return F.leaky_relu(F.add(F.add(self_emb, neigh_emb) @ self.W, self.b))


class PropagationLayer:
    """One knowledge-aware attentive embedding propagation step (Eqs. 8–9).

    Given all-entity embeddings ``e^(l-1)`` and per-edge weights, computes

        e_Nh = Σ_{(h,r,t)∈N_h} fa(h,r,t) · e_t^(l-1)
        e^(l) = agg(e^(l-1), e_Nh)

    with optional message dropout and L2 normalization of the output (both
    standard in the KGAT family).  ``normalize`` controls whether the layer's
    output is L2-normalized where it enters the final layer concatenation —
    :meth:`repro.models.ckat.model.CKAT.propagate` consults the flag, since
    the *raw* output always feeds the next propagation step.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        aggregator: str,
        rng: np.random.Generator,
        dropout: float = 0.1,
        normalize: bool = True,
        name: str = "layer",
    ):
        if aggregator == "concat":
            self.aggregator = ConcatAggregator(in_dim, out_dim, rng, name=name)
        elif aggregator == "sum":
            self.aggregator = SumAggregator(in_dim, out_dim, rng, name=name)
        else:
            raise ValueError(f"aggregator must be 'concat' or 'sum', got {aggregator!r}")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.dropout = dropout
        self.normalize = normalize

    def parameters(self) -> List[Parameter]:
        return self.aggregator.parameters()

    def __call__(
        self,
        embeddings: Tensor,
        adj: CSRAdjacency,
        edge_weights,
        rng: Optional[np.random.Generator] = None,
        training: bool = False,
        sparse_matrix=None,
    ) -> Tensor:
        """Propagate one step.

        ``edge_weights`` may be a Tensor (differentiable attention, the
        exact Eq. 4–5 path) or a constant array; when ``sparse_matrix`` (a
        CSR matrix with the weights already scattered, see
        :func:`build_weighted_adjacency`) is supplied, the gather → weight →
        segment-sum pipeline runs as one sparse matmul instead.
        """
        if sparse_matrix is not None and not isinstance(edge_weights, Tensor):
            neigh = F.spmm(sparse_matrix, embeddings)
        elif dispatch.fused_enabled():
            # Fused gather → scale → segment-sum: the (E, d_in) weighted-
            # messages temporary is never materialized.
            neigh = dispatch.weighted_neighbor_sum(embeddings, edge_weights, adj)
        else:
            tails = F.take_rows(embeddings, adj.tails)  # (E, d_in)
            if isinstance(edge_weights, Tensor):
                weighted = F.mul(tails, F.reshape(edge_weights, (adj.num_edges, 1)))
            else:
                weighted = F.mul(tails, F.astensor(np.asarray(edge_weights)[:, None]))
            neigh = F.segment_sum(weighted, adj.offsets)  # (Ent, d_in)
        out = self.aggregator(embeddings, neigh)
        if training and self.dropout > 0 and rng is not None:
            out = F.dropout(out, self.dropout, rng, training=True)
        return out


def build_weighted_adjacency(adj: CSRAdjacency, edge_weights: np.ndarray):
    """CSR matrix A with A[h, t] = Σ attention(h, r, t) over parallel edges.

    Used by the frozen-attention fast path: propagation's neighbor sum is
    then ``A @ embeddings``.  Delegates to
    :func:`repro.kernels.dispatch.build_weighted_csr`, which uses
    ``scipy.sparse`` when importable and the pure-NumPy CSR fallback
    otherwise — scipy is no longer a hard dependency of this path.
    """
    return dispatch.build_weighted_csr(adj, edge_weights)
