"""Factorization Machines over user / item / KG-entity features.

Following the paper's baseline setup (Section VI-C): "we convert the user
IDs, data objects, and CKG entities as the input features".  A (user, item)
pair activates the binary features {user u} ∪ {item v} ∪ {attribute entities
of v in the item–attribute graph}.

With binary features, the FM score

    ŷ = w₀ + Σ_x w_x + ½ (‖Σ_x v_x‖² − Σ_x ‖v_x‖²)

decomposes over the user side and a per-item aggregate, so full-catalog
scoring is two matrix products (see :meth:`FM.score_users`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.subgraphs import INTERACT
from repro.models.base import Recommender, batch_l2
from repro.utils.rng import ensure_rng

__all__ = ["FM", "ItemFeatureTable"]


class ItemFeatureTable:
    """CSR table of each item's attribute entities in the CKG.

    Feature id space: CKG global entity ids — users, items and attribute
    entities all live in one embedding table, which is exactly the FM/NFM
    input design the paper describes.
    """

    def __init__(self, ckg: CollaborativeKnowledgeGraph):
        item_off, item_size = ckg.space.block("item")
        store = ckg.store
        interact_id = (
            store.relations.id_of(INTERACT) if INTERACT in store.relations else -1
        )
        is_item_head = (store.heads >= item_off) & (store.heads < item_off + item_size)
        mask = is_item_head & (store.rels != interact_id)
        item_local = store.heads[mask] - item_off
        attr_entity = store.tails[mask]
        order = np.argsort(item_local, kind="stable")
        self._items = item_local[order]
        self._attrs = attr_entity[order]
        counts = np.bincount(self._items, minlength=item_size)
        self.offsets = np.zeros(item_size + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        self.num_items = item_size
        self.num_entities = ckg.num_entities
        self.item_offset = item_off
        self.user_offset = ckg.space.block("user")[0]

    def attrs_of(self, item: int) -> np.ndarray:
        """Attribute entity ids (global) of one item."""
        lo, hi = self.offsets[item], self.offsets[item + 1]
        return self._attrs[lo:hi]

    def batch_attrs(self, items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Ragged gather: (flat attribute ids, segment offsets) for a batch."""
        items = np.asarray(items, dtype=np.int64)
        lengths = self.offsets[items + 1] - self.offsets[items]
        total = int(lengths.sum())
        flat = np.empty(total, dtype=np.int64)
        seg_offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(lengths, out=seg_offsets[1:])
        pos = 0
        for idx, item in enumerate(items):
            lo, hi = self.offsets[item], self.offsets[item + 1]
            flat[pos : pos + hi - lo] = self._attrs[lo:hi]
            pos += hi - lo
        return flat, seg_offsets

    def max_attrs(self) -> int:
        """Largest attribute count of any item."""
        return int(np.max(np.diff(self.offsets))) if self.num_items else 0


class FM(Recommender):
    """Second-order Factorization Machine with KG-entity features."""

    name = "FM"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        features: ItemFeatureTable,
        dim: int = 64,
        l2: float = 1e-5,
        seed=0,
    ):
        super().__init__(num_users, num_items)
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        rng = ensure_rng(seed)
        self.features = features
        self.dim = dim
        self.l2 = l2
        n_feat = features.num_entities
        self.factors = Parameter(xavier_uniform((n_feat, dim), rng, gain=0.5), name="fm.v")
        self.linear = Parameter(np.zeros((n_feat, 1), dtype=np.float64), name="fm.w")
        self.bias = Parameter(np.zeros(1, dtype=np.float64), name="fm.w0")

    def parameters(self) -> List[Parameter]:
        return [self.factors, self.linear, self.bias]

    # ---------------------------------------------------------------- score
    def _user_feature_ids(self, users: np.ndarray) -> np.ndarray:
        return np.asarray(users, dtype=np.int64) + self.features.user_offset

    def _item_feature_ids(self, items: np.ndarray) -> np.ndarray:
        return np.asarray(items, dtype=np.int64) + self.features.item_offset

    def _pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable FM scores for parallel (user, item) arrays."""
        u_ids = self._user_feature_ids(users)
        i_ids = self._item_feature_ids(items)
        attr_flat, seg = self.features.batch_attrs(items)
        vu = F.take_rows(self.factors, u_ids)  # (B, d)
        vi = F.take_rows(self.factors, i_ids)  # (B, d)
        va = F.take_rows(self.factors, attr_flat)  # (A, d)
        attr_sum = F.segment_sum(va, seg)  # (B, d)
        attr_sq_sum = F.segment_sum(F.mul(va, va), seg)  # (B, d)
        total = F.add(F.add(vu, vi), attr_sum)
        sq_of_sum = F.sum(F.mul(total, total), axis=1)
        sum_of_sq = F.add(
            F.add(F.sum(F.mul(vu, vu), axis=1), F.sum(F.mul(vi, vi), axis=1)),
            F.sum(attr_sq_sum, axis=1),
        )
        pairwise = F.mul(F.sub(sq_of_sum, sum_of_sq), F.astensor(0.5))
        wu = F.reshape(F.take_rows(self.linear, u_ids), (len(users),))
        wi = F.reshape(F.take_rows(self.linear, i_ids), (len(users),))
        wa = F.reshape(
            F.segment_sum(F.take_rows(self.linear, attr_flat), seg), (len(users),)
        )
        return F.add(F.add(F.add(F.add(wu, wi), wa), pairwise), F.reshape(self.bias, (1,)))

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        pos_scores = self._pair_scores(users, pos)
        neg_scores = self._pair_scores(users, neg)
        loss = F.bpr_loss(pos_scores, neg_scores)
        vu = F.take_rows(self.factors, self._user_feature_ids(users))
        vi = F.take_rows(self.factors, self._item_feature_ids(pos))
        vj = F.take_rows(self.factors, self._item_feature_ids(neg))
        reg = F.mul(batch_l2(vu, vi, vj), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Vectorized full-catalog scoring via item-side aggregates.

        Per item i: S_i = v_i + Σ_a v_a, L_i = w_i + Σ_a w_a,
        Q_i = ‖v_i‖² + Σ_a ‖v_a‖².  Then

            ŷ(u, i) = const_u + L_i + v_uᵀ S_i + ½(‖S_i‖² − Q_i)

        and const_u does not change the per-user ranking but is included for
        score interpretability.
        """
        users = np.asarray(users, dtype=np.int64)
        V = self.factors.data
        w = self.linear.data[:, 0]
        item_ids = self._item_feature_ids(np.arange(self.num_items, dtype=np.int64))
        S = V[item_ids].copy()
        L = w[item_ids].copy()
        Q = (V[item_ids] ** 2).sum(axis=1)
        flat, seg = self.features.batch_attrs(np.arange(self.num_items, dtype=np.int64))
        seg_ids = np.repeat(np.arange(self.num_items, dtype=np.int64), np.diff(seg))
        np.add.at(S, seg_ids, V[flat])
        np.add.at(L, seg_ids, w[flat])
        np.add.at(Q, seg_ids, (V[flat] ** 2).sum(axis=1))
        u_ids = self._user_feature_ids(users)
        vu = V[u_ids]
        const_u = float(self.bias.data[0]) + w[u_ids]
        cross = vu @ S.T
        item_term = L + 0.5 * ((S**2).sum(axis=1) - Q)
        return const_u[:, None] + cross + item_term[None, :]
