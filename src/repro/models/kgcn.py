"""KGCN: Knowledge Graph Convolutional Networks (Wang et al., 2019).

KGCN computes an item representation *conditioned on the user*: a fixed-size
neighborhood is sampled for every entity, and neighbors are aggregated with
user-specific relation attention

    π_r^u = u ᵀ e_r,    weights = softmax over the sampled neighbors,

followed by a sum aggregator ``σ(W (e_v + Σ w_i e_i) + b)``.  With ``n_iter``
hops the receptive field grows recursively.

The neighbor table is sampled once at construction (size ``(E, k)``), as in
the original minibatch implementation where re-sampling per batch changes
little at small k.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.kg.adjacency import sample_fixed_neighbors
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import INTERACT
from repro.models.base import Recommender, batch_l2
from repro.utils.rng import ensure_rng

__all__ = ["KGCN"]


class KGCN(Recommender):
    """Graph-convolutional item representations with user-relation attention."""

    name = "KGCN"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        ckg: CollaborativeKnowledgeGraph,
        dim: int = 64,
        neighbor_size: int = 8,
        n_iter: int = 1,
        l2: float = 1e-5,
        seed=0,
        graph: Optional[PreparedGraph] = None,
    ):
        super().__init__(num_users, num_items)
        if dim <= 0 or neighbor_size <= 0 or n_iter <= 0:
            raise ValueError("dim, neighbor_size and n_iter must be positive")
        rng = ensure_rng(seed)
        self.dim = dim
        self.k = neighbor_size
        self.n_iter = n_iter
        self.l2 = l2
        self.ckg = ckg
        # The knowledge-only adjacency can come pre-built from a shared
        # PreparedGraph; the neighbor table itself is still drawn with this
        # model's rng (it is a modeling choice, not graph structure), and
        # both spellings sample identically from the same sorted layout.
        if graph is not None:
            kg_store = graph.check_compatible(ckg).knowledge
        else:
            kg_relations = [n for n in ckg.propagation_store.relations.names if n != INTERACT]
            kg_store = ckg.propagation_store.filter_relations(kg_relations)
        self.neigh_ent, self.neigh_rel = sample_fixed_neighbors(
            kg_store, k=neighbor_size, seed=rng, num_entities=ckg.num_entities
        )
        self._item_entities = ckg.all_item_entities()
        self.user_emb = Parameter(xavier_uniform((num_users, dim), rng), name="kgcn.user")
        self.entity_emb = Parameter(
            xavier_uniform((ckg.num_entities, dim), rng), name="kgcn.entity"
        )
        n_rel = max(kg_store.num_relations, 1)
        self.relation_emb = Parameter(xavier_uniform((n_rel, dim), rng), name="kgcn.rel")
        self.agg_W = [
            Parameter(xavier_uniform((dim, dim), rng), name=f"kgcn.W{i}") for i in range(n_iter)
        ]
        self.agg_b = [Parameter(np.zeros(dim, dtype=np.float64), name=f"kgcn.b{i}") for i in range(n_iter)]

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.entity_emb, self.relation_emb] + self.agg_W + self.agg_b

    # -------------------------------------------------------------- internals
    def _item_repr(self, users: np.ndarray, item_entities: np.ndarray) -> Tensor:
        """User-conditioned item representations, shape (B, d).

        ``users`` and ``item_entities`` are parallel arrays; each row's
        receptive field is aggregated with that row's user attention.
        """
        B, k, d = len(users), self.k, self.dim
        u = F.take_rows(self.user_emb, users)  # (B, d)
        # Hop-0 entity list per row: the item itself, then recursively its
        # sampled neighbors.  entities[h] has shape (B, k^h).
        entities = [np.asarray(item_entities, dtype=np.int64)[:, None]]
        relations = []
        for h in range(self.n_iter):
            ents = entities[h]
            entities.append(self.neigh_ent[ents].reshape(B, -1))
            relations.append(self.neigh_rel[ents].reshape(B, -1))
        # Aggregate inside-out: at iteration i, vectors[h] holds the current
        # representation of hop-h entities.
        vectors = [F.take_rows(self.entity_emb, e.ravel()) for e in entities]
        vectors = [F.reshape(v, (B, -1, d)) for v, e in zip(vectors, entities)]
        for i in range(self.n_iter):
            W, b = self.agg_W[i], self.agg_b[i]
            new_vectors = []
            for h in range(self.n_iter - i):
                self_vec = vectors[h]  # (B, m, d)
                m = entities[h].shape[1]
                neigh_vec = F.reshape(vectors[h + 1], (B, m, k, d))
                rel = F.reshape(
                    F.take_rows(self.relation_emb, relations[h].ravel()), (B, m, k, d)
                )
                # π = u·r per neighbor, softmax over k.
                scores = F.sum(F.mul(rel, F.reshape(u, (B, 1, 1, d))), axis=3)  # (B, m, k)
                weights = F.softmax(scores, axis=2)
                agg_neigh = F.sum(F.mul(neigh_vec, F.reshape(weights, (B, m, k, 1))), axis=2)
                combined = F.add(self_vec, agg_neigh)  # sum aggregator
                out = F.tanh(
                    F.add(F.reshape(F.reshape(combined, (B * m, d)) @ W, (B, m, d)), b)
                )
                new_vectors.append(out)
            vectors = new_vectors
        return F.reshape(vectors[0], (B, d))

    def _pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        item_ent = self._item_entities[np.asarray(items, dtype=np.int64)]
        i_repr = self._item_repr(users, item_ent)
        u = F.take_rows(self.user_emb, users)
        return F.sum(F.mul(u, i_repr), axis=1)

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        loss = F.bpr_loss(self._pair_scores(users, pos), self._pair_scores(users, neg))
        u = F.take_rows(self.user_emb, users)
        vi = F.take_rows(self.entity_emb, self._item_entities[pos])
        vj = F.take_rows(self.entity_emb, self._item_entities[neg])
        reg = F.mul(batch_l2(u, vi, vj), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    def score_users(self, users: np.ndarray, item_chunk: int = 512) -> np.ndarray:
        """Full-catalog scores, chunked over items to bound memory.

        For each user the item representation depends on the user's relation
        attention, so scores require user × item receptive-field evaluation;
        chunking keeps peak allocation at ``len(users) × item_chunk × k × d``.
        """
        users = np.asarray(users, dtype=np.int64)
        out = np.empty((len(users), self.num_items), dtype=np.float64)
        U = self.user_emb.data[users]  # (B, d)
        E = self.entity_emb.data
        R = self.relation_emb.data
        B, k, d = len(users), self.k, self.dim
        for start in range(0, self.num_items, item_chunk):
            items = np.arange(start, min(start + item_chunk, self.num_items), dtype=np.int64)
            ents = self._item_entities[items]  # (m,)
            m = len(items)
            hop_ents = [ents.reshape(1, m)]  # hop lists shared across users
            hop_rels = []
            for h in range(self.n_iter):
                e = hop_ents[h]
                hop_ents.append(self.neigh_ent[e].reshape(1, -1))
                hop_rels.append(self.neigh_rel[e].reshape(1, -1))
            # vectors[h]: (B, m*k^h, d) — user-independent at start.
            vectors = [np.broadcast_to(E[e[0]], (B,) + E[e[0]].shape).copy() for e in hop_ents]
            for i in range(self.n_iter):
                W, b = self.agg_W[i].data, self.agg_b[i].data
                new_vectors = []
                for h in range(self.n_iter - i):
                    mm = hop_ents[h].shape[1]
                    self_vec = vectors[h]
                    neigh_vec = vectors[h + 1].reshape(B, mm, k, d)
                    rel = R[hop_rels[h][0]].reshape(mm, k, d)
                    scores = np.einsum("bd,mkd->bmk", U, rel)
                    scores -= scores.max(axis=2, keepdims=True)
                    w = np.exp(scores)
                    w /= w.sum(axis=2, keepdims=True)
                    agg = np.einsum("bmkd,bmk->bmd", neigh_vec, w)
                    combined = self_vec + agg
                    new_vectors.append(np.tanh(combined @ W + b))
                vectors = new_vectors
            item_repr = vectors[0]  # (B, m, d)
            out[:, items] = np.einsum("bd,bmd->bm", U, item_repr)
        return out
