"""CKE: Collaborative Knowledge-base Embedding (Zhang et al., 2016).

The regularization-based baseline: matrix factorization where each item's
representation is the sum of a collaborative latent vector and the item's
structural (TransR) knowledge embedding:

    score(u, v) = e_uᵀ (γ_v + e_v^TransR)

The TransR embeddings are trained on the item–attribute knowledge graph with
the margin loss; both objectives are optimized jointly (one TransR phase per
epoch via ``extra_epoch_step``, matching the alternating schedule used by
the KGAT-family reference code).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import INTERACT
from repro.models.base import FitConfig, Recommender, batch_l2
from repro.models.embeddings import TransR
from repro.train.engine import StepFn
from repro.utils.rng import ensure_rng

__all__ = ["CKE"]


class CKE(Recommender):
    """BPRMF + TransR item-knowledge regularization."""

    name = "CKE"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        ckg: CollaborativeKnowledgeGraph,
        dim: int = 64,
        relation_dim: int = 64,
        l2: float = 1e-5,
        kg_batch_size: int = 1024,
        kg_steps_per_epoch: int = 20,
        seed=0,
        graph: Optional[PreparedGraph] = None,
    ):
        super().__init__(num_users, num_items)
        rng = ensure_rng(seed)
        self.dim = dim
        self.l2 = l2
        self.kg_batch_size = kg_batch_size
        self.kg_steps_per_epoch = kg_steps_per_epoch
        self.ckg = ckg
        # Knowledge triples only (drop the interact relation) — CKE's TransR
        # component models item structure, not interactions.  The filtered
        # store keeps the canonical triple order (TransR sampling indexes it
        # uniformly), which is exactly what PreparedGraph.canonical_kg
        # preserves on the shared/cached path.
        if graph is not None:
            self.kg_store = graph.check_compatible(ckg).canonical_kg
        else:
            kg_relations = [n for n in ckg.store.relations.names if n != INTERACT]
            self.kg_store = ckg.store.filter_relations(kg_relations)
        self.user_emb = Parameter(xavier_uniform((num_users, dim), rng), name="cke.user")
        self.item_emb = Parameter(xavier_uniform((num_items, dim), rng), name="cke.item")
        self.transr = TransR(
            num_entities=ckg.num_entities,
            num_relations=max(ckg.store.num_relations, 1),
            entity_dim=dim,
            relation_dim=relation_dim,
            seed=rng,
        )
        self._item_entities = ckg.all_item_entities()

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb] + self.transr.parameters()

    def row_partitioned_parameters(self) -> List[Parameter]:
        # Only user_emb is gathered strictly at the batch's users; item and
        # TransR tables are touched by negatives/triples and stay shared.
        return [self.user_emb]

    def _item_repr(self, items: np.ndarray) -> Tensor:
        """γ_v + e_v^TransR for a batch of item indices."""
        base = F.take_rows(self.item_emb, items)
        structural = F.take_rows(self.transr.entity_emb, self._item_entities[items])
        return F.add(base, structural)

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        u = F.take_rows(self.user_emb, users)
        i = self._item_repr(pos)
        j = self._item_repr(neg)
        loss = F.bpr_loss(F.sum(F.mul(u, i), axis=1), F.sum(F.mul(u, j), axis=1))
        reg = F.mul(batch_l2(u, i, j), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    def extra_epoch_step(
        self, step: StepFn, rng: np.random.Generator, config: FitConfig
    ) -> float:
        """One TransR phase per epoch over the knowledge triples."""
        if len(self.kg_store) == 0:
            return 0.0
        total = 0.0
        for _ in range(self.kg_steps_per_epoch):
            h, r, t = self.transr.sample_triples(self.kg_store, self.kg_batch_size, rng)
            total += step(lambda: self.transr.margin_loss(h, r, t, rng))
        return total / self.kg_steps_per_epoch

    def score_users(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        item_repr = self.item_emb.data + self.transr.entity_emb.data[self._item_entities]
        return self.user_emb.data[users] @ item_repr.T
