"""BPRMF: Bayesian-Personalized-Ranking matrix factorization.

The collaborative-filtering baseline of Table II (Rendle et al., 2012):
user and item embeddings, inner-product scoring, pairwise BPR loss.  Uses no
knowledge graph — its gap to the KG-aware models is the paper's evidence for
the value of auxiliary knowledge.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.models.base import Recommender, batch_l2
from repro.utils.rng import ensure_rng

__all__ = ["BPRMF"]


class BPRMF(Recommender):
    """Pairwise matrix factorization from implicit feedback."""

    name = "BPRMF"

    def __init__(self, num_users: int, num_items: int, dim: int = 64, l2: float = 1e-5, seed=0):
        super().__init__(num_users, num_items)
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        rng = ensure_rng(seed)
        self.dim = dim
        self.l2 = l2
        self.user_emb = Parameter(xavier_uniform((num_users, dim), rng), name="bprmf.user")
        self.item_emb = Parameter(xavier_uniform((num_items, dim), rng), name="bprmf.item")

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb]

    def row_partitioned_parameters(self) -> List[Parameter]:
        # batch_loss gathers user_emb rows only at the batch's users, which a
        # sharded sampler keeps within one user shard — item rows are shared.
        return [self.user_emb]

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        u = F.take_rows(self.user_emb, users)
        i = F.take_rows(self.item_emb, pos)
        j = F.take_rows(self.item_emb, neg)
        pos_scores = F.sum(F.mul(u, i), axis=1)
        neg_scores = F.sum(F.mul(u, j), axis=1)
        loss = F.bpr_loss(pos_scores, neg_scores)
        reg = F.mul(batch_l2(u, i, j), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    def score_users(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        return self.user_emb.data[users] @ self.item_emb.data.T

    def scoring_factors(self):
        return self.user_emb.data, self.item_emb.data
