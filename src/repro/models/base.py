"""Shared model interface over the :mod:`repro.train` engine.

Every model implements three hooks:

- ``parameters()`` — trainable :class:`~repro.autograd.tensor.Parameter` list;
- ``batch_loss(users, pos, neg, rng)`` — the training objective for one
  minibatch of (user, positive item, negative item) triples;
- ``score_users(users)`` — dense float scores (B × num_items) for ranking.

:meth:`Recommender.fit` drives the paper's optimization recipe — Adam, batch
size 512, epoch-wise BPR batches with fresh negative sampling — by
delegating to :class:`repro.train.TrainEngine`; the default
:class:`~repro.train.SerialExecutor` reproduces the historical in-process
loop bit-for-bit, and ``executor=ShardedExecutor(...)`` trains the same
model data-parallel.  Models with auxiliary objectives (TransR/TransE phases
in CKE, CFKG, CKAT) override ``extra_epoch_step`` to run their alternating
phase once per epoch through the engine-provided step callable — model code
never touches the optimizer directly (reprolint RPL015).

``FitConfig``/``FitResult`` live in :mod:`repro.train.engine` and are
re-exported here for compatibility.
"""

from __future__ import annotations

import pathlib
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.autograd import Parameter, Tensor
from repro.autograd import functional as F
from repro.data.interactions import InteractionDataset
from repro.train.engine import FitConfig, FitResult, StepExecutor, StepFn, TrainEngine
from repro.utils.telemetry import RunLogger

__all__ = ["FitConfig", "FitResult", "Recommender", "batch_l2"]

PathLike = Union[str, pathlib.Path]


def batch_l2(*tensors: Tensor) -> Tensor:
    """Sum of squared norms of the given (batch-gathered) tensors.

    The paper's λ‖Θ‖² regularizer is applied per batch to the embeddings the
    batch touched — standard BPR practice, which regularizes active rows
    proportionally to how often they are trained.
    """
    total = F.squared_norm(tensors[0])
    for t in tensors[1:]:
        total = F.add(total, F.squared_norm(t))
    return total


class Recommender:
    """Base class for all recommendation models."""

    name: str = "recommender"

    def __init__(self, num_users: int, num_items: int):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = num_users
        self.num_items = num_items

    # ------------------------------------------------------------ interface
    def parameters(self) -> List[Parameter]:
        """Trainable parameters (used to build the optimizer)."""
        raise NotImplementedError

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        """Scalar training loss for one (user, pos, neg) batch."""
        raise NotImplementedError

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Dense prediction scores, shape (len(users), num_items)."""
        raise NotImplementedError

    def scoring_factors(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Optional factorization of ``score_users`` as an inner product.

        Models whose scores are ``user_vecs[u] @ item_vecs.T`` return the two
        dense factor matrices ``(user_vecs, item_vecs)`` — shapes
        ``(num_users, d)`` and ``(num_items, d)`` — letting
        :meth:`repro.eval.evaluator.RankingEvaluator.evaluate_model` compute
        representations once per evaluation and rank through the fused
        score+mask+top-k kernel.  Default ``None``: scores do not factor (or
        nobody has bothered), so evaluation falls back to ``score_users``.
        """
        return None

    def extra_epoch_step(
        self, step: StepFn, rng: np.random.Generator, config: FitConfig
    ) -> float:
        """Auxiliary per-epoch training phase (e.g. TransR); returns its loss.

        ``step`` is the engine-provided optimization funnel:
        ``step(loss_fn)`` zero-grads, evaluates ``loss_fn()``,
        backpropagates, applies the optimizer, and returns the loss value.
        Models run their alternating phase through it instead of holding the
        optimizer (reprolint RPL015) — which is what lets executors schedule
        the phase (the sharded executor runs it on the master between
        epochs).  Default: nothing to do.
        """
        return 0.0

    def on_epoch_end(self) -> None:
        """Hook invoked after each epoch (CKAT refreshes attention here)."""

    def extra_rng_state(self) -> Optional[dict]:
        """State of model-owned generators beyond the training-loop RNG.

        Models that seed private generators at construction (CKAT's and
        NFM's dropout RNGs) return a JSON-serializable dict of
        ``bit_generator.state`` dicts keyed by their own labels, so
        checkpoints capture *all* randomness and kill-and-resume stays
        bit-identical even with dropout active.  Default: ``None`` (no
        private generators).
        """
        return None

    def restore_extra_rng_state(self, state: dict) -> None:
        """Restore the generator states captured by :meth:`extra_rng_state`.

        Only called with a non-``None`` state; the default raises because a
        checkpoint carrying extra RNG state but a model with nowhere to put
        it means the save/restore hooks are out of sync.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement restore_extra_rng_state "
            "but the checkpoint carries extra RNG state"
        )

    def row_partitioned_parameters(self) -> List[Parameter]:
        """Parameters whose rows partition along the sampler's user shards.

        The sharded executor applies these locally on the worker that owns
        the rows (no cross-worker reduction).  A parameter belongs here only
        if a (user, pos, neg) batch drawn from user shard ``[lo, hi)``
        gathers *exclusively* rows ``[lo, hi)`` of it — true for per-user
        embedding tables indexed by the batch's users, false for anything a
        negative sample or graph propagation can touch.  Default: none (all
        parameters reduce as shared).
        """
        return []

    # ------------------------------------------------------------- training
    def fit(
        self,
        train: InteractionDataset,
        config: Optional[FitConfig] = None,
        eval_callback: Optional[Callable[[], dict]] = None,
        *,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[PathLike] = None,
        resume_from: Optional[PathLike] = None,
        logger: Optional[RunLogger] = None,
        sampler: Optional[object] = None,
        executor: Optional[StepExecutor] = None,
    ) -> FitResult:
        """Train with epoch-wise BPR minibatches and Adam.

        Thin wrapper over :class:`repro.train.TrainEngine`; with the default
        executor this is bit-identical to the historical in-process loop.

        Parameters
        ----------
        train:
            Training interactions (num_users/num_items must match the model).
        config:
            Hyperparameters; defaults to :class:`FitConfig`.
        eval_callback:
            Optional callable returning a metrics dict, invoked every
            ``config.eval_every`` epochs (and recorded in the result).
        checkpoint_every:
            If >0, write a full :class:`~repro.io.checkpoints.TrainingCheckpoint`
            (parameters, Adam moments, RNG state, histories, best snapshot) to
            ``checkpoint_path`` every this many epochs.
        checkpoint_path:
            Destination for periodic checkpoints (overwritten atomically each
            time); required when ``checkpoint_every > 0``.
        resume_from:
            Resume a killed run from this checkpoint.  The restored run is
            **bit-identical** to the uninterrupted one (same executor
            required — the checkpoint records the executor/shard layout and
            refuses to load into a different one): all training randomness
            flows through generators whose states the checkpoint captured.
        logger:
            Optional :class:`~repro.utils.telemetry.RunLogger`; emits one
            JSONL event per epoch plus run/eval/checkpoint events (and
            merged per-worker events under data-parallel executors).
        sampler:
            Optional replacement for the executor's default sampler;
            anything exposing ``epoch_batches(batch_size, seed)`` yielding
            (users, pos, neg) triples works serially, while the sharded
            executor additionally needs the shard-batch interface of
            :class:`~repro.data.sampling.ShardedBPRSampler`.
        executor:
            Optional :class:`~repro.train.StepExecutor`; default
            :class:`~repro.train.SerialExecutor` (the historical loop).
            Pass :class:`~repro.train.ShardedExecutor` for data-parallel
            training over partitioned embedding tables.
        """
        return TrainEngine(self, executor=executor).fit(
            train,
            config,
            eval_callback,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
            logger=logger,
            sampler=sampler,
        )

    # ------------------------------------------------------------ inference
    def recommend(self, user: int, k: int = 20, exclude: Optional[np.ndarray] = None) -> np.ndarray:
        """Top-``k`` item ids for one user, optionally excluding seen items."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self.score_users(np.array([user]))[0].astype(np.float64, copy=True)
        if exclude is not None and len(exclude):
            exclude = np.asarray(exclude, dtype=np.int64)
            # Validate before masking: a negative id wraps around and masks
            # the wrong item; an id >= num_items raises a bare IndexError
            # deep in numpy.  Both reach here straight from serving-layer
            # request payloads, so fail loudly with the offending ids.
            bad = exclude[(exclude < 0) | (exclude >= self.num_items)]
            if bad.size:
                raise ValueError(
                    f"exclude contains item ids outside [0, {self.num_items}): "
                    f"{np.unique(bad).tolist()[:10]}"
                )
            scores[exclude] = -np.inf
        # Clamp to the number of rankable candidates: with a large exclude
        # set, argpartition on the raw k would let -inf-masked ids survive
        # into the output.
        k = min(k, int(np.count_nonzero(scores > -np.inf)))
        if k == 0:
            return np.array([], dtype=np.int64)
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="stable")]
        return top[scores[top] > -np.inf]
