"""Shared model interface and the BPR training loop.

Every model implements three hooks:

- ``parameters()`` — trainable :class:`~repro.autograd.tensor.Parameter` list;
- ``batch_loss(users, pos, neg, rng)`` — the training objective for one
  minibatch of (user, positive item, negative item) triples;
- ``score_users(users)`` — dense float scores (B × num_items) for ranking.

:meth:`Recommender.fit` then drives the paper's optimization recipe: Adam,
batch size 512, epoch-wise BPR batches with fresh negative sampling.  Models
with auxiliary objectives (TransR/TransE phases in CKE, CFKG, CKAT) override
``extra_epoch_step`` to run their alternating phase once per epoch, mirroring
the KGAT training schedule.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.autograd import Adam, Parameter, Tensor, no_grad
from repro.autograd import functional as F
from repro.data.interactions import InteractionDataset
from repro.data.sampling import BPRSampler
from repro.io.checkpoints import (
    TrainingCheckpoint,
    load_training_checkpoint,
    parameter_keys,
    save_training_checkpoint,
)
from repro.utils.rng import ensure_rng
from repro.utils.telemetry import RunLogger

__all__ = ["FitConfig", "FitResult", "Recommender", "batch_l2"]

PathLike = Union[str, pathlib.Path]


def batch_l2(*tensors: Tensor) -> Tensor:
    """Sum of squared norms of the given (batch-gathered) tensors.

    The paper's λ‖Θ‖² regularizer is applied per batch to the embeddings the
    batch touched — standard BPR practice, which regularizes active rows
    proportionally to how often they are trained.
    """
    total = F.squared_norm(tensors[0])
    for t in tensors[1:]:
        total = F.add(total, F.squared_norm(t))
    return total


@dataclasses.dataclass
class FitConfig:
    """Training hyperparameters (defaults follow Section VI-D)."""

    epochs: int = 40
    batch_size: int = 512
    lr: float = 0.01
    l2: float = 1e-5
    seed: int = 0
    verbose: bool = False
    eval_every: int = 0
    """If >0 and an evaluator callback is given to fit(), evaluate every
    this many epochs."""
    keep_best_metric: str = ""
    """When set (e.g. ``"recall@20"``) together with ``eval_every`` and an
    eval callback, parameters are snapshotted at each evaluation and the
    best-scoring snapshot is restored after the final epoch — the best-epoch
    selection protocol of the KGAT-family reference implementations."""

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.l2 < 0:
            raise ValueError("l2 must be nonnegative")
        if self.eval_every < 0:
            raise ValueError(f"eval_every must be >= 0, got {self.eval_every}")
        if self.keep_best_metric and self.eval_every <= 0:
            raise ValueError(
                "keep_best_metric requires eval_every > 0 — without evaluations no "
                "snapshot is ever taken, silently corrupting best-epoch results"
            )

    def fingerprint(self) -> dict:
        """The fields a resumed run must match for bit-identical replay."""
        return {
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "l2": self.l2,
            "seed": self.seed,
            "eval_every": self.eval_every,
            "keep_best_metric": self.keep_best_metric,
        }


@dataclasses.dataclass
class FitResult:
    """Training record: per-epoch losses and wall-clock time."""

    losses: List[float]
    extra_losses: List[float]
    seconds: float
    eval_history: List[dict]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Recommender:
    """Base class for all recommendation models."""

    name: str = "recommender"

    def __init__(self, num_users: int, num_items: int):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = num_users
        self.num_items = num_items

    # ------------------------------------------------------------ interface
    def parameters(self) -> List[Parameter]:
        """Trainable parameters (used to build the optimizer)."""
        raise NotImplementedError

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        """Scalar training loss for one (user, pos, neg) batch."""
        raise NotImplementedError

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Dense prediction scores, shape (len(users), num_items)."""
        raise NotImplementedError

    def scoring_factors(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Optional factorization of ``score_users`` as an inner product.

        Models whose scores are ``user_vecs[u] @ item_vecs.T`` return the two
        dense factor matrices ``(user_vecs, item_vecs)`` — shapes
        ``(num_users, d)`` and ``(num_items, d)`` — letting
        :meth:`repro.eval.evaluator.RankingEvaluator.evaluate_model` compute
        representations once per evaluation and rank through the fused
        score+mask+top-k kernel.  Default ``None``: scores do not factor (or
        nobody has bothered), so evaluation falls back to ``score_users``.
        """
        return None

    def extra_epoch_step(
        self, optimizer: Adam, rng: np.random.Generator, config: FitConfig
    ) -> float:
        """Auxiliary per-epoch training phase (e.g. TransR); returns its loss.

        Default: nothing to do.
        """
        return 0.0

    def on_epoch_end(self) -> None:
        """Hook invoked after each epoch (CKAT refreshes attention here)."""

    def extra_rng_state(self) -> Optional[dict]:
        """State of model-owned generators beyond the training-loop RNG.

        Models that seed private generators at construction (CKAT's and
        NFM's dropout RNGs) return a JSON-serializable dict of
        ``bit_generator.state`` dicts keyed by their own labels, so
        checkpoints capture *all* randomness and kill-and-resume stays
        bit-identical even with dropout active.  Default: ``None`` (no
        private generators).
        """
        return None

    def restore_extra_rng_state(self, state: dict) -> None:
        """Restore the generator states captured by :meth:`extra_rng_state`.

        Only called with a non-``None`` state; the default raises because a
        checkpoint carrying extra RNG state but a model with nowhere to put
        it means the save/restore hooks are out of sync.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement restore_extra_rng_state "
            "but the checkpoint carries extra RNG state"
        )

    # ------------------------------------------------------------- training
    def _restore_checkpoint(
        self,
        ckpt: TrainingCheckpoint,
        config: FitConfig,
        params: List[Parameter],
        keys: List[str],
        optimizer: Adam,
        rng: np.random.Generator,
    ) -> None:
        """Load a :class:`TrainingCheckpoint` into live training state.

        Validates that the checkpoint matches both the architecture (same
        parameter keys and shapes) and the replay-relevant config fields —
        resuming under a different batch size, learning rate, or seed could
        not possibly reproduce the uninterrupted run, so it raises instead.
        """
        fp = config.fingerprint()
        saved = ckpt.config
        mismatched = {
            k: (saved.get(k), fp[k]) for k in fp if k != "epochs" and saved.get(k) != fp[k]
        }
        if mismatched:
            raise ValueError(
                f"cannot resume: config mismatch {mismatched} (checkpoint vs current); "
                "resume-exactness requires identical training configuration"
            )
        if config.epochs < ckpt.epoch:
            raise ValueError(
                f"cannot resume: checkpoint has {ckpt.epoch} completed epochs but the "
                f"config only trains {config.epochs}"
            )
        if set(ckpt.params) != set(keys):
            raise ValueError(
                f"cannot resume: parameter set mismatch (checkpoint {sorted(ckpt.params)}, "
                f"model {sorted(keys)})"
            )
        with no_grad():
            for key, p in zip(keys, params):
                arr = ckpt.params[key]
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"cannot resume: shape mismatch for {key}: "
                        f"checkpoint {arr.shape} vs model {p.data.shape}"
                    )
                p.data[...] = arr
        optimizer.load_state_dict(ckpt.optimizer_state)
        rng.bit_generator.state = ckpt.rng_state
        if ckpt.extra_rng_state is not None:
            self.restore_extra_rng_state(ckpt.extra_rng_state)
        self.on_epoch_end()  # rebuild derived state (e.g. CKAT attention) from params

    def fit(
        self,
        train: InteractionDataset,
        config: Optional[FitConfig] = None,
        eval_callback: Optional[Callable[[], dict]] = None,
        *,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[PathLike] = None,
        resume_from: Optional[PathLike] = None,
        logger: Optional[RunLogger] = None,
        sampler: Optional[object] = None,
    ) -> FitResult:
        """Train with epoch-wise BPR minibatches and Adam.

        Parameters
        ----------
        train:
            Training interactions (num_users/num_items must match the model).
        config:
            Hyperparameters; defaults to :class:`FitConfig`.
        eval_callback:
            Optional callable returning a metrics dict, invoked every
            ``config.eval_every`` epochs (and recorded in the result).
        checkpoint_every:
            If >0, write a full :class:`~repro.io.checkpoints.TrainingCheckpoint`
            (parameters, Adam moments, RNG state, histories, best snapshot) to
            ``checkpoint_path`` every this many epochs.
        checkpoint_path:
            Destination for periodic checkpoints (overwritten atomically each
            time); required when ``checkpoint_every > 0``.
        resume_from:
            Resume a killed run from this checkpoint.  The restored run is
            **bit-identical** to the uninterrupted one: all training
            randomness flows through the single generator whose state the
            checkpoint captured, so replaying epochs ``[epoch, epochs)`` on
            the restored parameters/moments reproduces the exact arrays.
        logger:
            Optional :class:`~repro.utils.telemetry.RunLogger`; emits one
            JSONL event per epoch plus run/eval/checkpoint events.
        sampler:
            Optional replacement for the default
            :class:`~repro.data.sampling.BPRSampler`; anything exposing
            ``epoch_batches(batch_size, seed)`` yielding (users, pos, neg)
            triples works (e.g. the shard-blocked sampler for
            million-user training sets).
        """
        config = config or FitConfig()
        if train.num_users != self.num_users or train.num_items != self.num_items:
            raise ValueError(
                f"dataset shape ({train.num_users}×{train.num_items}) does not match model "
                f"({self.num_users}×{self.num_items})"
            )
        if config.eval_every < 0:
            raise ValueError(f"eval_every must be >= 0, got {config.eval_every}")
        if config.keep_best_metric and (config.eval_every <= 0 or eval_callback is None):
            raise ValueError(
                "keep_best_metric requires eval_every > 0 and an eval_callback — "
                "without both no snapshot is ever taken, silently corrupting "
                "best-epoch results"
            )
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every > 0 requires checkpoint_path")
        rng = ensure_rng(config.seed)
        # An injected sampler only needs epoch_batches(batch_size, seed) —
        # e.g. data.ShardedBPRSampler, whose shard-local membership keys keep
        # million-user training sets out of the global-key memory regime.
        if sampler is None:
            sampler = BPRSampler(train)
        params = self.parameters()
        keys = parameter_keys(params)
        optimizer = Adam(params, lr=config.lr)
        losses: List[float] = []
        extra_losses: List[float] = []
        eval_history: List[dict] = []
        best_score = -np.inf
        best_snapshot: Optional[List[np.ndarray]] = None
        start_epoch = 0
        base_seconds = 0.0
        if resume_from is not None:
            ckpt = load_training_checkpoint(resume_from)
            self._restore_checkpoint(ckpt, config, params, keys, optimizer, rng)
            losses = list(ckpt.losses)
            extra_losses = list(ckpt.extra_losses)
            eval_history = list(ckpt.eval_history)
            best_score = ckpt.best_score
            if ckpt.best_snapshot is not None:
                best_snapshot = [ckpt.best_snapshot[key].copy() for key in keys]
            start_epoch = ckpt.epoch
            base_seconds = ckpt.seconds
            if logger is not None:
                logger.log("resume", epoch=start_epoch, path=str(resume_from))
        start = time.perf_counter()
        if logger is not None:
            logger.log(
                "run_start",
                model=self.name,
                start_epoch=start_epoch,
                **config.fingerprint(),
            )
        for epoch in range(start_epoch, config.epochs):
            epoch_start = time.perf_counter()
            extra = self.extra_epoch_step(optimizer, rng, config)
            extra_losses.append(extra)
            epoch_loss, n_batches = 0.0, 0
            for users, pos, neg in sampler.epoch_batches(config.batch_size, seed=rng):
                optimizer.zero_grad()
                loss = self.batch_loss(users, pos, neg, rng)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            losses.append(epoch_loss / max(n_batches, 1))
            self.on_epoch_end()
            if logger is not None:
                logger.log(
                    "epoch",
                    epoch=epoch + 1,
                    loss=losses[-1],
                    aux_loss=extra,
                    seconds=time.perf_counter() - epoch_start,
                )
            if config.verbose:
                msg = f"[{self.name}] epoch {epoch + 1}/{config.epochs} loss={losses[-1]:.4f}"
                if extra:
                    msg += f" aux={extra:.4f}"
                print(msg)
            if eval_callback is not None and config.eval_every and (epoch + 1) % config.eval_every == 0:
                metrics = eval_callback()
                metrics["epoch"] = epoch + 1
                eval_history.append(metrics)
                if logger is not None:
                    logger.log("eval", **metrics)
                if config.verbose:
                    print(f"[{self.name}]   eval: {metrics}")
                if config.keep_best_metric:
                    score = metrics.get(config.keep_best_metric)
                    if score is None:
                        raise KeyError(
                            f"keep_best_metric {config.keep_best_metric!r} missing from "
                            f"eval callback result {sorted(metrics)}"
                        )
                    if score > best_score:
                        best_score = score
                        best_snapshot = [p.data.copy() for p in params]
                        if logger is not None:
                            logger.log("best_snapshot", epoch=epoch + 1, score=float(score))
            if checkpoint_every and (epoch + 1) % checkpoint_every == 0:
                ckpt = TrainingCheckpoint(
                    epoch=epoch + 1,
                    params={key: p.data.copy() for key, p in zip(keys, params)},
                    optimizer_state=optimizer.state_dict(),
                    rng_state=rng.bit_generator.state,
                    extra_rng_state=self.extra_rng_state(),
                    losses=list(losses),
                    extra_losses=list(extra_losses),
                    eval_history=list(eval_history),
                    best_score=float(best_score),
                    best_snapshot=(
                        {key: arr.copy() for key, arr in zip(keys, best_snapshot)}
                        if best_snapshot is not None
                        else None
                    ),
                    seconds=base_seconds + (time.perf_counter() - start),
                    config=config.fingerprint(),
                )
                written = save_training_checkpoint(checkpoint_path, ckpt)
                if logger is not None:
                    logger.log("checkpoint", epoch=epoch + 1, path=str(written))
        if best_snapshot is not None:
            with no_grad():
                for p, data in zip(params, best_snapshot):
                    p.data[...] = data
            self.on_epoch_end()  # refresh derived state (e.g. CKAT attention)
        seconds = base_seconds + (time.perf_counter() - start)
        if logger is not None:
            logger.log(
                "run_end",
                model=self.name,
                epochs=config.epochs,
                seconds=seconds,
                final_loss=losses[-1] if losses else None,
            )
        return FitResult(
            losses=losses,
            extra_losses=extra_losses,
            seconds=seconds,
            eval_history=eval_history,
        )

    # ------------------------------------------------------------ inference
    def recommend(self, user: int, k: int = 20, exclude: Optional[np.ndarray] = None) -> np.ndarray:
        """Top-``k`` item ids for one user, optionally excluding seen items."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self.score_users(np.array([user]))[0].astype(np.float64, copy=True)
        if exclude is not None and len(exclude):
            exclude = np.asarray(exclude, dtype=np.int64)
            # Validate before masking: a negative id wraps around and masks
            # the wrong item; an id >= num_items raises a bare IndexError
            # deep in numpy.  Both reach here straight from serving-layer
            # request payloads, so fail loudly with the offending ids.
            bad = exclude[(exclude < 0) | (exclude >= self.num_items)]
            if bad.size:
                raise ValueError(
                    f"exclude contains item ids outside [0, {self.num_items}): "
                    f"{np.unique(bad).tolist()[:10]}"
                )
            scores[exclude] = -np.inf
        # Clamp to the number of rankable candidates: with a large exclude
        # set, argpartition on the raw k would let -inf-masked ids survive
        # into the output.
        k = min(k, int(np.count_nonzero(scores > -np.inf)))
        if k == 0:
            return np.array([], dtype=np.int64)
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="stable")]
        return top[scores[top] > -np.inf]
