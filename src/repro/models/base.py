"""Shared model interface and the BPR training loop.

Every model implements three hooks:

- ``parameters()`` — trainable :class:`~repro.autograd.tensor.Parameter` list;
- ``batch_loss(users, pos, neg, rng)`` — the training objective for one
  minibatch of (user, positive item, negative item) triples;
- ``score_users(users)`` — dense float scores (B × num_items) for ranking.

:meth:`Recommender.fit` then drives the paper's optimization recipe: Adam,
batch size 512, epoch-wise BPR batches with fresh negative sampling.  Models
with auxiliary objectives (TransR/TransE phases in CKE, CFKG, CKAT) override
``extra_epoch_step`` to run their alternating phase once per epoch, mirroring
the KGAT training schedule.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional

import numpy as np

from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.data.interactions import InteractionDataset
from repro.data.sampling import BPRSampler
from repro.utils.rng import ensure_rng

__all__ = ["FitConfig", "FitResult", "Recommender", "batch_l2"]


def batch_l2(*tensors: Tensor) -> Tensor:
    """Sum of squared norms of the given (batch-gathered) tensors.

    The paper's λ‖Θ‖² regularizer is applied per batch to the embeddings the
    batch touched — standard BPR practice, which regularizes active rows
    proportionally to how often they are trained.
    """
    total = F.squared_norm(tensors[0])
    for t in tensors[1:]:
        total = F.add(total, F.squared_norm(t))
    return total


@dataclasses.dataclass
class FitConfig:
    """Training hyperparameters (defaults follow Section VI-D)."""

    epochs: int = 40
    batch_size: int = 512
    lr: float = 0.01
    l2: float = 1e-5
    seed: int = 0
    verbose: bool = False
    eval_every: int = 0
    """If >0 and an evaluator callback is given to fit(), evaluate every
    this many epochs."""
    keep_best_metric: str = ""
    """When set (e.g. ``"recall@20"``) together with ``eval_every`` and an
    eval callback, parameters are snapshotted at each evaluation and the
    best-scoring snapshot is restored after the final epoch — the best-epoch
    selection protocol of the KGAT-family reference implementations."""

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.l2 < 0:
            raise ValueError("l2 must be nonnegative")


@dataclasses.dataclass
class FitResult:
    """Training record: per-epoch losses and wall-clock time."""

    losses: List[float]
    extra_losses: List[float]
    seconds: float
    eval_history: List[dict]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Recommender:
    """Base class for all recommendation models."""

    name: str = "recommender"

    def __init__(self, num_users: int, num_items: int):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = num_users
        self.num_items = num_items

    # ------------------------------------------------------------ interface
    def parameters(self) -> List[Parameter]:
        """Trainable parameters (used to build the optimizer)."""
        raise NotImplementedError

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        """Scalar training loss for one (user, pos, neg) batch."""
        raise NotImplementedError

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Dense prediction scores, shape (len(users), num_items)."""
        raise NotImplementedError

    def extra_epoch_step(
        self, optimizer: Adam, rng: np.random.Generator, config: FitConfig
    ) -> float:
        """Auxiliary per-epoch training phase (e.g. TransR); returns its loss.

        Default: nothing to do.
        """
        return 0.0

    def on_epoch_end(self) -> None:
        """Hook invoked after each epoch (CKAT refreshes attention here)."""

    # ------------------------------------------------------------- training
    def fit(
        self,
        train: InteractionDataset,
        config: Optional[FitConfig] = None,
        eval_callback: Optional[Callable[[], dict]] = None,
    ) -> FitResult:
        """Train with epoch-wise BPR minibatches and Adam.

        Parameters
        ----------
        train:
            Training interactions (num_users/num_items must match the model).
        config:
            Hyperparameters; defaults to :class:`FitConfig`.
        eval_callback:
            Optional callable returning a metrics dict, invoked every
            ``config.eval_every`` epochs (and recorded in the result).
        """
        config = config or FitConfig()
        if train.num_users != self.num_users or train.num_items != self.num_items:
            raise ValueError(
                f"dataset shape ({train.num_users}×{train.num_items}) does not match model "
                f"({self.num_users}×{self.num_items})"
            )
        rng = ensure_rng(config.seed)
        sampler = BPRSampler(train)
        params = self.parameters()
        optimizer = Adam(params, lr=config.lr)
        losses: List[float] = []
        extra_losses: List[float] = []
        eval_history: List[dict] = []
        best_score = -np.inf
        best_snapshot: Optional[List[np.ndarray]] = None
        start = time.perf_counter()
        for epoch in range(config.epochs):
            extra = self.extra_epoch_step(optimizer, rng, config)
            extra_losses.append(extra)
            epoch_loss, n_batches = 0.0, 0
            for users, pos, neg in sampler.epoch_batches(config.batch_size, seed=rng):
                optimizer.zero_grad()
                loss = self.batch_loss(users, pos, neg, rng)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            losses.append(epoch_loss / max(n_batches, 1))
            self.on_epoch_end()
            if config.verbose:
                msg = f"[{self.name}] epoch {epoch + 1}/{config.epochs} loss={losses[-1]:.4f}"
                if extra:
                    msg += f" aux={extra:.4f}"
                print(msg)
            if eval_callback is not None and config.eval_every and (epoch + 1) % config.eval_every == 0:
                metrics = eval_callback()
                metrics["epoch"] = epoch + 1
                eval_history.append(metrics)
                if config.verbose:
                    print(f"[{self.name}]   eval: {metrics}")
                if config.keep_best_metric:
                    score = metrics.get(config.keep_best_metric)
                    if score is None:
                        raise KeyError(
                            f"keep_best_metric {config.keep_best_metric!r} missing from "
                            f"eval callback result {sorted(metrics)}"
                        )
                    if score > best_score:
                        best_score = score
                        best_snapshot = [p.data.copy() for p in params]
        if best_snapshot is not None:
            for p, data in zip(params, best_snapshot):
                p.data[...] = data
            self.on_epoch_end()  # refresh derived state (e.g. CKAT attention)
        return FitResult(
            losses=losses,
            extra_losses=extra_losses,
            seconds=time.perf_counter() - start,
            eval_history=eval_history,
        )

    # ------------------------------------------------------------ inference
    def recommend(self, user: int, k: int = 20, exclude: Optional[np.ndarray] = None) -> np.ndarray:
        """Top-``k`` item ids for one user, optionally excluding seen items."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self.score_users(np.array([user]))[0].astype(np.float64, copy=True)
        if exclude is not None and len(exclude):
            scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
        k = min(k, self.num_items)
        top = np.argpartition(-scores, k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")]
