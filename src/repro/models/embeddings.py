"""Translation-based knowledge-graph embedding modules: TransR and TransE.

TransR (Section V-A, Eqs. 1–2) is CKAT's embedding layer: entities live in a
d-dimensional space, each relation r in its own k-dimensional space reached
through a projection matrix ``W_r``; a triple (h, r, t) is plausible when
``W_r e_h + e_r ≈ W_r e_t``.  Training minimizes the margin loss over
corrupted triples (Eq. 2).

TransE (used by the CFKG baseline) is the special case with identity
projection and shared dimensionality.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.kernels import dispatch
from repro.kg.triples import TripleStore
from repro.utils.rng import ensure_rng

__all__ = ["TransR", "TransE", "corrupt_triples"]


def corrupt_triples(
    heads: np.ndarray,
    tails: np.ndarray,
    num_entities: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Corrupt each triple by replacing head or tail with a random entity.

    Follows the standard protocol (Bordes et al., 2013): for each triple a
    fair coin decides which side to replace; the replacement is uniform over
    the entity space.  (Collisions with true triples are rare at our scale
    and tolerated, as in the reference implementations.)
    """
    n = len(heads)
    corrupt_head = rng.random(n) < 0.5
    random_entities = rng.integers(0, num_entities, size=n)
    new_heads = np.where(corrupt_head, random_entities, heads)
    new_tails = np.where(corrupt_head, tails, random_entities)
    return new_heads.astype(np.int64), new_tails.astype(np.int64)


class TransR:
    """TransR embeddings over a triple store.

    Parameters
    ----------
    num_entities, num_relations:
        Sizes of the id spaces.
    entity_dim (d), relation_dim (k):
        Entity-space and relation-space dimensionalities.
    shared_entity_embedding:
        Optional externally-owned entity embedding Parameter to train
        against (CKAT shares one table between TransR and propagation).
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        entity_dim: int = 64,
        relation_dim: int = 64,
        seed=0,
        shared_entity_embedding: Parameter = None,
        margin: float = 1.0,
    ):
        if num_entities <= 0 or num_relations <= 0:
            raise ValueError("num_entities and num_relations must be positive")
        if entity_dim <= 0 or relation_dim <= 0:
            raise ValueError("entity_dim and relation_dim must be positive")
        if margin < 0:
            raise ValueError("margin must be nonnegative")
        rng = ensure_rng(seed)
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.entity_dim = entity_dim
        self.relation_dim = relation_dim
        self.margin = margin
        if shared_entity_embedding is not None:
            if shared_entity_embedding.shape != (num_entities, entity_dim):
                raise ValueError(
                    f"shared embedding shape {shared_entity_embedding.shape} != "
                    f"({num_entities}, {entity_dim})"
                )
            self.entity_emb = shared_entity_embedding
        else:
            self.entity_emb = Parameter(
                xavier_uniform((num_entities, entity_dim), rng), name="transr.entity"
            )
        self.relation_emb = Parameter(
            xavier_uniform((num_relations, relation_dim), rng), name="transr.relation"
        )
        # W_r ∈ R^{k×d} per relation, stored (R, k, d).
        self.proj = Parameter(
            xavier_uniform((num_relations, relation_dim, entity_dim), rng), name="transr.proj"
        )

    def parameters(self) -> List[Parameter]:
        return [self.entity_emb, self.relation_emb, self.proj]

    def project(self, rels: np.ndarray, entities: np.ndarray) -> Tensor:
        """``W_r e`` for parallel arrays of relation and entity ids, (B, k).

        Triples are grouped by relation so each group shares one (d → k)
        matmul — materializing a per-triple (B, k, d) stack of projection
        matrices would copy megabytes per batch for nothing.
        """
        rels = np.asarray(rels, dtype=np.int64)
        entities = np.asarray(entities, dtype=np.int64)
        order = np.argsort(rels, kind="stable")
        sorted_rels = rels[order]
        # Group boundaries of equal relations in the sorted batch.
        starts = np.flatnonzero(np.r_[True, sorted_rels[1:] != sorted_rels[:-1]])
        bounds = np.r_[starts, len(sorted_rels)]
        pieces = []
        for gi in range(len(starts)):
            lo, hi = bounds[gi], bounds[gi + 1]
            r = int(sorted_rels[lo])
            idx = order[lo:hi]
            e = F.take_rows(self.entity_emb, entities[idx])  # (m, d)
            Wr = F.reshape(F.take_rows(self.proj, np.array([r])), (self.relation_dim, self.entity_dim))
            pieces.append(e @ F.transpose(Wr))  # (m, k)
        flat = F.concat(pieces, axis=0)
        inverse = np.empty(len(rels), dtype=np.int64)
        inverse[order] = np.arange(len(rels), dtype=np.int64)
        return F.take_rows(flat, inverse)

    def energy(self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray) -> Tensor:
        """Plausibility score f_r(h, r, t) = ‖W_r e_h + e_r − W_r e_t‖² (Eq. 1).

        Lower is more plausible.  Returns shape (B,).
        """
        if dispatch.fused_enabled():
            return dispatch.transr_energy(
                self.entity_emb, self.relation_emb, self.proj, heads, rels, tails
            )
        return self._energy_oracle(heads, rels, tails)

    def _energy_oracle(
        self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray
    ) -> Tensor:
        """Per-op chain for :meth:`energy` — the fused kernel's parity oracle."""
        ph = self.project(rels, heads)
        pt = self.project(rels, tails)
        r = F.take_rows(self.relation_emb, rels)
        diff = F.sub(F.add(ph, r), pt)
        return F.sum(F.mul(diff, diff), axis=1)

    def margin_loss(
        self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        """Eq. 2: hinge over corrupted triples, mean-reduced."""
        ch, ct = corrupt_triples(heads, tails, self.num_entities, rng)
        pos = self.energy(heads, rels, tails)
        neg = self.energy(ch, rels, ct)
        return F.margin_ranking_loss(pos, neg, self.margin)

    def sample_triples(
        self, store: TripleStore, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Uniformly sample a triple batch from ``store``."""
        if len(store) == 0:
            raise ValueError("triple store is empty")
        idx = rng.integers(0, len(store), size=batch_size)
        return store.heads[idx], store.rels[idx], store.tails[idx]


class TransE:
    """TransE embeddings: ``e_h + e_r ≈ e_t`` in one shared space.

    Used by CFKG, which folds the ``interact`` relation into the graph and
    ranks items by translation distance from ``e_u + e_interact``.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int = 64,
        seed=0,
        margin: float = 1.0,
    ):
        if num_entities <= 0 or num_relations <= 0 or dim <= 0:
            raise ValueError("sizes must be positive")
        rng = ensure_rng(seed)
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.margin = margin
        self.entity_emb = Parameter(xavier_uniform((num_entities, dim), rng), name="transe.entity")
        self.relation_emb = Parameter(
            xavier_uniform((num_relations, dim), rng), name="transe.relation"
        )

    def parameters(self) -> List[Parameter]:
        return [self.entity_emb, self.relation_emb]

    def energy(self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray) -> Tensor:
        """Squared translation distance ‖e_h + e_r − e_t‖², shape (B,)."""
        h = F.take_rows(self.entity_emb, heads)
        r = F.take_rows(self.relation_emb, rels)
        t = F.take_rows(self.entity_emb, tails)
        diff = F.sub(F.add(h, r), t)
        return F.sum(F.mul(diff, diff), axis=1)

    def margin_loss(
        self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        """Margin ranking loss over corrupted triples."""
        ch, ct = corrupt_triples(heads, tails, self.num_entities, rng)
        pos = self.energy(heads, rels, tails)
        neg = self.energy(ch, rels, ct)
        return F.margin_ranking_loss(pos, neg, self.margin)
