"""CFKG: learning heterogeneous knowledge-base embeddings (Ai et al., 2018).

The unified-graph baseline: TransE is applied to the *whole* CKG including
the ``interact`` relation, so user–item preference becomes a translation —
``e_u + e_interact ≈ e_v`` for observed queries.  Recommendation scores are
negative translation distances.

Training has two parts, both per epoch: the standard TransE margin loss over
all triples (``extra_epoch_step``) and a BPR ranking loss over interaction
distances in ``batch_loss`` (ranking-calibrated distances substantially
stabilize top-K evaluation; the original paper ranks by distance as well).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Parameter, Tensor
from repro.autograd import functional as F
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import INTERACT
from repro.models.base import FitConfig, Recommender, batch_l2
from repro.models.embeddings import TransE
from repro.train.engine import StepFn
from repro.utils.rng import ensure_rng

__all__ = ["CFKG"]


class CFKG(Recommender):
    """TransE over the unified user–item–knowledge graph."""

    name = "CFKG"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        ckg: CollaborativeKnowledgeGraph,
        dim: int = 64,
        l2: float = 1e-5,
        kg_batch_size: int = 1024,
        kg_steps_per_epoch: int = 20,
        seed=0,
        graph: Optional[PreparedGraph] = None,
    ):
        super().__init__(num_users, num_items)
        rng = ensure_rng(seed)
        self.l2 = l2
        self.kg_batch_size = kg_batch_size
        self.kg_steps_per_epoch = kg_steps_per_epoch
        self.ckg = ckg
        # CFKG trains TransE on ckg.store directly; a supplied graph is only
        # validated so the harness can pass one uniformly to every model.
        if graph is not None:
            graph.check_compatible(ckg)
        self.transe = TransE(
            num_entities=ckg.num_entities,
            num_relations=max(ckg.store.num_relations, 1),
            dim=dim,
            seed=rng,
        )
        self._interact_rel = ckg.store.relations.id_of(INTERACT)
        self._user_entities = ckg.all_user_entities()
        self._item_entities = ckg.all_item_entities()

    def parameters(self) -> List[Parameter]:
        return self.transe.parameters()

    def _pair_distance(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """‖e_u + e_interact − e_v‖² (lower = preferred)."""
        heads = self._user_entities[np.asarray(users, dtype=np.int64)]
        tails = self._item_entities[np.asarray(items, dtype=np.int64)]
        rels = np.full(len(heads), self._interact_rel, dtype=np.int64)
        return self.transe.energy(heads, rels, tails)

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        # As in Ai et al.: the interaction is just another triple
        # (u, interact, v) trained with the TransE margin loss — the sampled
        # negative item plays the corrupted-tail role.  (No BPR head; CFKG
        # models connectivity only at triple granularity, which is exactly
        # why the paper finds it weaker than the propagation models.)
        pos_d = self._pair_distance(users, pos)
        neg_d = self._pair_distance(users, neg)
        loss = F.margin_ranking_loss(pos_d, neg_d, self.transe.margin)
        u = F.take_rows(self.transe.entity_emb, self._user_entities[users])
        i = F.take_rows(self.transe.entity_emb, self._item_entities[pos])
        j = F.take_rows(self.transe.entity_emb, self._item_entities[neg])
        reg = F.mul(batch_l2(u, i, j), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    def extra_epoch_step(
        self, step: StepFn, rng: np.random.Generator, config: FitConfig
    ) -> float:
        """TransE margin phase over the full CKG (knowledge + interact)."""
        store = self.ckg.store
        if len(store) == 0:
            return 0.0
        total = 0.0
        for _ in range(self.kg_steps_per_epoch):
            idx = rng.integers(0, len(store), size=self.kg_batch_size)
            total += step(
                lambda: self.transe.margin_loss(
                    store.heads[idx], store.rels[idx], store.tails[idx], rng
                )
            )
        return total / self.kg_steps_per_epoch

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Negative squared distance to every item, vectorized.

        ‖q_u − e_v‖² expands to ‖q_u‖² − 2 q_uᵀ e_v + ‖e_v‖² with
        q_u = e_u + e_interact, so scoring is one matrix product.
        """
        users = np.asarray(users, dtype=np.int64)
        E = self.transe.entity_emb.data
        q = E[self._user_entities[users]] + self.transe.relation_emb.data[self._interact_rel]
        items = E[self._item_entities]
        sq = (q**2).sum(axis=1)[:, None] - 2.0 * q @ items.T + (items**2).sum(axis=1)[None, :]
        return -sq
