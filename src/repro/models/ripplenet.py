"""RippleNet: propagating user preferences over the knowledge graph
(Wang et al., 2018).

Each user's clicked items seed *ripple sets*: hop-1 is the set of KG triples
headed at the user's history items, hop-2 the triples headed at hop-1 tails,
and so on.  An item-aware attention over each hop's triples

    p_i = softmax_i( v ᵀ R_{r_i} h_i )

produces hop responses ``o^k = Σ_i p_i t_i``; the user representation is the
sum of hop responses and the score is its inner product with the item
embedding.

Per Section VI-D the embedding size is 16 (RippleNet's computational cost)
and ``n_hop = 2``.  Ripple sets are sampled once at construction with a fixed
memory size per hop, as in the reference implementation.  Training uses the
shared BPR protocol.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Parameter, Tensor, xavier_uniform
from repro.autograd import functional as F
from repro.data.interactions import InteractionDataset
from repro.kg.adjacency import CSRAdjacency
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import INTERACT
from repro.models.base import Recommender, batch_l2
from repro.utils.rng import ensure_rng

__all__ = ["RippleNet"]


class RippleNet(Recommender):
    """Preference propagation with per-user ripple memories."""

    name = "RippleNet"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        ckg: CollaborativeKnowledgeGraph,
        train: InteractionDataset,
        dim: int = 16,
        n_hop: int = 2,
        n_memory: int = 32,
        l2: float = 1e-5,
        seed=0,
        graph: Optional[PreparedGraph] = None,
    ):
        super().__init__(num_users, num_items)
        if dim <= 0 or n_hop <= 0 or n_memory <= 0:
            raise ValueError("dim, n_hop and n_memory must be positive")
        rng = ensure_rng(seed)
        self.dim = dim
        self.n_hop = n_hop
        self.n_memory = n_memory
        self.l2 = l2
        self.ckg = ckg
        # Ripples flow over knowledge triples (+inverses), not interactions;
        # a shared PreparedGraph supplies that adjacency pre-built.
        if graph is not None:
            self._adj = graph.check_compatible(ckg).knowledge
        else:
            kg_relations = [n for n in ckg.propagation_store.relations.names if n != INTERACT]
            self._adj = CSRAdjacency(ckg.propagation_store.filter_relations(kg_relations))
        self._item_entities = ckg.all_item_entities()
        self.entity_emb = Parameter(
            xavier_uniform((ckg.num_entities, dim), rng), name="ripple.entity"
        )
        n_rel = max(self._adj.num_relations, 1)
        self.relation_mats = Parameter(
            xavier_uniform((n_rel, dim, dim), rng), name="ripple.R"
        )
        self.mem_h, self.mem_r, self.mem_t = self._build_ripple_sets(train, rng)

    def _build_ripple_sets(
        self, train: InteractionDataset, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (U, n_hop, n_memory) ripple memories from train history.

        Users whose frontier dies out (no outgoing KG triples) repeat their
        previous hop's memories — the reference implementation's fallback.
        """
        U, H, M = self.num_users, self.n_hop, self.n_memory
        mem_h = np.zeros((U, H, M), dtype=np.int64)
        mem_r = np.zeros((U, H, M), dtype=np.int64)
        mem_t = np.zeros((U, H, M), dtype=np.int64)
        adj = self._adj
        for u in range(U):
            seeds = self._item_entities[train.items_of_user(u)]
            for hop in range(H):
                # Collect candidate edge index ranges for the frontier.
                if seeds.size:
                    starts = adj.offsets[seeds]
                    ends = adj.offsets[seeds + 1]
                    widths = ends - starts
                    valid = widths > 0
                    starts, widths = starts[valid], widths[valid]
                else:
                    starts = widths = np.zeros(0, dtype=np.int64)
                if starts.size == 0:
                    if hop > 0:
                        mem_h[u, hop] = mem_h[u, hop - 1]
                        mem_r[u, hop] = mem_r[u, hop - 1]
                        mem_t[u, hop] = mem_t[u, hop - 1]
                    else:
                        # Cold user: self-loops on a random item entity.
                        ent = self._item_entities[int(rng.integers(self.num_items))]
                        mem_h[u, hop] = ent
                        mem_t[u, hop] = ent
                    seeds = np.unique(mem_t[u, hop])
                    continue
                # Sample M edges: pick a seed proportional to its degree,
                # then a uniform edge within it.
                probs = widths / widths.sum()
                pick = rng.choice(len(starts), size=M, p=probs)
                offs = (rng.random(M) * widths[pick]).astype(np.int64)
                edge_idx = starts[pick] + offs
                mem_h[u, hop] = adj.heads[edge_idx]
                mem_r[u, hop] = adj.rels[edge_idx]
                mem_t[u, hop] = adj.tails[edge_idx]
                seeds = np.unique(mem_t[u, hop])
        return mem_h, mem_r, mem_t

    def parameters(self) -> List[Parameter]:
        return [self.entity_emb, self.relation_mats]

    # ----------------------------------------------------------------- score
    def _relation_grouped_Rh(self, h_ids: np.ndarray, r_ids: np.ndarray) -> "Tensor":
        """Compute R_r · e_h for flat parallel id arrays, grouped by relation.

        Avoids gathering a (B·M, d, d) stack of relation matrices — each
        relation's slots share one (d, d) matmul instead.
        """
        d = self.dim
        flat_r = r_ids.ravel()
        flat_h = h_ids.ravel()
        order = np.argsort(flat_r, kind="stable")
        sorted_r = flat_r[order]
        starts = np.flatnonzero(np.r_[True, sorted_r[1:] != sorted_r[:-1]])
        bounds = np.r_[starts, len(sorted_r)]
        pieces = []
        for gi in range(len(starts)):
            lo, hi = bounds[gi], bounds[gi + 1]
            r = int(sorted_r[lo])
            idx = order[lo:hi]
            h = F.take_rows(self.entity_emb, flat_h[idx])  # (m, d)
            Rm = F.reshape(F.take_rows(self.relation_mats, np.array([r])), (d, d))
            pieces.append(h @ F.transpose(Rm))
        flat = F.concat(pieces, axis=0)
        inverse = np.empty(len(flat_r), dtype=np.int64)
        inverse[order] = np.arange(len(flat_r), dtype=np.int64)
        return F.take_rows(flat, inverse)

    def _pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for parallel (user, item) arrays."""
        B, M, d = len(users), self.n_memory, self.dim
        v = F.take_rows(self.entity_emb, self._item_entities[items])  # (B, d)
        user_repr = None
        for hop in range(self.n_hop):
            h_ids = self.mem_h[users, hop]  # (B, M)
            r_ids = self.mem_r[users, hop]
            t_ids = self.mem_t[users, hop]
            Rh = F.reshape(self._relation_grouped_Rh(h_ids, r_ids), (B, M, d))
            logits = F.sum(F.mul(Rh, F.reshape(v, (B, 1, d))), axis=2)  # (B, M)
            p = F.softmax(logits, axis=1)
            t = F.reshape(F.take_rows(self.entity_emb, t_ids.ravel()), (B, M, d))
            o = F.sum(F.mul(t, F.reshape(p, (B, M, 1))), axis=1)  # (B, d)
            user_repr = o if user_repr is None else F.add(user_repr, o)
        return F.sum(F.mul(user_repr, v), axis=1)

    def batch_loss(
        self, users: np.ndarray, pos: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> Tensor:
        loss = F.bpr_loss(self._pair_scores(users, pos), self._pair_scores(users, neg))
        vi = F.take_rows(self.entity_emb, self._item_entities[pos])
        vj = F.take_rows(self.entity_emb, self._item_entities[neg])
        reg = F.mul(batch_l2(vi, vj), F.astensor(self.l2 / len(users)))
        return F.add(loss, reg)

    def score_users(self, users: np.ndarray) -> np.ndarray:
        """Full-catalog scores; item-aware attention computed per user."""
        users = np.asarray(users, dtype=np.int64)
        E = self.entity_emb.data
        R = self.relation_mats.data
        V = E[self._item_entities]  # (N, d)
        out = np.zeros((len(users), self.num_items), dtype=np.float64)
        for row, u in enumerate(users):
            user_repr = np.zeros((self.num_items, self.dim), dtype=np.float64)
            for hop in range(self.n_hop):
                h = E[self.mem_h[u, hop]]  # (M, d)
                Rm = R[self.mem_r[u, hop]]  # (M, d, d)
                Rh = np.einsum("mij,mj->mi", Rm, h)  # (M, d)
                logits = V @ Rh.T  # (N, M)
                logits -= logits.max(axis=1, keepdims=True)
                p = np.exp(logits)
                p /= p.sum(axis=1, keepdims=True)
                t = E[self.mem_t[u, hop]]  # (M, d)
                user_repr += p @ t  # (N, d)
            out[row] = (user_repr * V).sum(axis=1)
        return out
