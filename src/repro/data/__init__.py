"""Dataset pipeline: trace → implicit-feedback interactions → splits → batches.

Follows the paper's Section VI-A protocol: MovieLens-style preprocessing of
the raw query trace into deduplicated user–item pairs (with a minimum-
interaction filter), an 80/20 per-user random split, and BPR negative
sampling that pairs each observed interaction with an item the user has not
consumed.
"""

from repro.data.interactions import InteractionDataset, trace_to_interactions
from repro.data.sampling import BPRSampler, ShardedBPRSampler, check_pair_key_space
from repro.data.split import TrainTestSplit, per_user_split
from repro.data.streaming import (
    blocked_per_user_split,
    interaction_pair_chunks,
    streamed_trace_to_interactions,
)

__all__ = [
    "InteractionDataset",
    "trace_to_interactions",
    "streamed_trace_to_interactions",
    "TrainTestSplit",
    "per_user_split",
    "blocked_per_user_split",
    "interaction_pair_chunks",
    "BPRSampler",
    "ShardedBPRSampler",
    "check_pair_key_space",
]
