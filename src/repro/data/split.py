"""Train/test splitting.

Section VI-A: "For each dataset, we randomly select 80% of each user's query
history for the training set and treat the remaining percentage as the test
set."  The split is therefore *per user*, and users with a single interaction
keep it in training (an empty training history would make them untrainable
and an empty test history makes them unevaluable — we prefer the former).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.utils.rng import ensure_rng

__all__ = ["TrainTestSplit", "per_user_split"]


@dataclasses.dataclass(frozen=True)
class TrainTestSplit:
    """A train/test pair of interaction datasets over the same id spaces."""

    train: InteractionDataset
    test: InteractionDataset

    def __post_init__(self):
        if (
            self.train.num_users != self.test.num_users
            or self.train.num_items != self.test.num_items
        ):
            raise ValueError("train and test must share id spaces")

    def assert_disjoint(self) -> None:
        """Raise if any (user, item) pair appears in both splits."""
        n = self.train.num_items
        train_keys = set((self.train.user_ids * n + self.train.item_ids).tolist())
        test_keys = set((self.test.user_ids * n + self.test.item_ids).tolist())
        overlap = train_keys & test_keys
        if overlap:
            raise AssertionError(f"{len(overlap)} interactions leak between splits")


def per_user_split(
    data: InteractionDataset, train_fraction: float = 0.8, seed=0
) -> TrainTestSplit:
    """Randomly split each user's interactions into train/test.

    Every user with ≥2 interactions contributes at least one to each side
    (ceil for train, at least 1 test), matching the paper's evaluation
    protocol where all retained users are rankable.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = ensure_rng(seed)
    train_mask = np.zeros(len(data), dtype=bool)
    for user in range(data.num_users):
        lo, hi = data.user_offsets[user], data.user_offsets[user + 1]
        count = hi - lo
        if count == 0:
            continue
        if count == 1:
            train_mask[lo] = True
            continue
        n_train = int(np.ceil(count * train_fraction))
        n_train = min(n_train, count - 1)  # keep at least one test item
        chosen = rng.choice(count, size=n_train, replace=False)
        train_mask[lo + chosen] = True
    train = InteractionDataset(
        data.user_ids[train_mask], data.item_ids[train_mask], data.num_users, data.num_items
    )
    test = InteractionDataset(
        data.user_ids[~train_mask], data.item_ids[~train_mask], data.num_users, data.num_items
    )
    return TrainTestSplit(train=train, test=test)
