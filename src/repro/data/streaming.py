"""Chunked (out-of-core) constructors for the dataset path.

Companions to :mod:`repro.facility.stream`: given a
:class:`~repro.facility.stream.TraceReader` these build the same
:class:`~repro.data.interactions.InteractionDataset` and train/test split the
monolithic path builds, without ever materializing the raw trace.  Bounded
scratch is the design rule throughout — per-block arrays plus degree-vector
accumulators; the only full-size allocation is the *output*.

Bit-identity arguments (each locked by tests):

- **Dedup.**  Blocks partition the user space in ascending order, so each
  block's sorted unique ``user * num_items + item`` keys occupy a disjoint,
  ascending key interval; their concatenation equals the globally sorted
  global unique — exactly what ``QueryTrace.unique_pairs`` produces.
- **Filtering.**  Both paths call the same
  :func:`~repro.data.interactions.kcore_filter_masks` fixed point; chunking
  only changes the order degree counts accumulate in (integer adds —
  associative).
- **Splitting.**  :func:`blocked_per_user_split` is a vectorized protocol
  with the same per-user guarantees as ``per_user_split`` (ceil train
  fraction, ≥1 test item for users with ≥2, singletons to train) but a
  different RNG realization — it ranks one uniform draw per interaction
  instead of ``rng.choice`` per user, which is what makes it O(n log n)
  total instead of a million-iteration Python loop.  It is therefore a
  *separate* function: cached splits produced by ``per_user_split`` keep
  their bits.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.data.interactions import (
    InteractionDataset,
    KCORE_MAX_ROUNDS,
    kcore_filter_masks,
)
from repro.data.sampling import check_pair_key_space
from repro.data.split import TrainTestSplit
from repro.facility.stream import TraceReader
from repro.utils.rng import ensure_rng

__all__ = [
    "streamed_trace_to_interactions",
    "blocked_per_user_split",
    "interaction_pair_chunks",
]


def _dedup_block(
    users: np.ndarray, objects: np.ndarray, num_objects: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique (user, object) pairs of one block."""
    keys = np.unique(
        np.asarray(users, dtype=np.int64) * np.int64(num_objects)
        + np.asarray(objects, dtype=np.int64)
    )
    return keys // num_objects, keys % num_objects


def streamed_trace_to_interactions(
    reader: TraceReader,
    min_user_interactions: int = 5,
    min_item_interactions: int = 1,
    max_rounds: int = KCORE_MAX_ROUNDS,
) -> InteractionDataset:
    """Chunked ``trace_to_interactions``: dedup and filter block by block.

    Bit-identical to ``trace_to_interactions(reader.materialize())`` (same
    pairs, same order) while touching only one block of raw records at a
    time.  The deduplicated per-block pairs are retained across the k-core
    rounds — that working set is the size class of the *output*, not of the
    raw trace, which at query-trace densities is an order of magnitude
    smaller.
    """
    if min_user_interactions < 1 or min_item_interactions < 1:
        raise ValueError("minimum interaction counts must be >= 1")
    check_pair_key_space(reader.num_users, reader.num_objects)
    chunks: List[Tuple[np.ndarray, np.ndarray]] = [
        _dedup_block(users, objects, reader.num_objects)
        for users, objects in reader.pair_chunks()
    ]
    user_keep, item_keep = kcore_filter_masks(
        lambda: iter(chunks),
        reader.num_users,
        reader.num_objects,
        min_user_interactions,
        min_item_interactions,
        max_rounds=max_rounds,
    )
    kept_users: List[np.ndarray] = []
    kept_items: List[np.ndarray] = []
    for users, items in chunks:
        alive = user_keep[users] & item_keep[items]
        kept_users.append(users[alive])
        kept_items.append(items[alive])
    return InteractionDataset(
        np.concatenate(kept_users) if kept_users else np.zeros(0, np.int64),
        np.concatenate(kept_items) if kept_items else np.zeros(0, np.int64),
        reader.num_users,
        reader.num_objects,
    )


def blocked_per_user_split(
    data: InteractionDataset, train_fraction: float = 0.8, seed=0
) -> TrainTestSplit:
    """Vectorized per-user train/test split (the streaming protocol).

    Per-user guarantees match ``per_user_split`` exactly: each user with
    ``d ≥ 2`` interactions contributes ``min(ceil(d * train_fraction),
    d - 1)`` to train and the rest to test; singletons go to train.  The
    mechanism differs — each interaction draws one uniform and a user's
    lowest draws train — so the two functions realize different (equally
    valid) splits from the same seed; pick one per experiment and key caches
    accordingly.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = ensure_rng(seed)
    n = len(data)
    draws = rng.random(n)
    # data is user-major, so lexsort by (user, draw) orders each user's
    # segment by draw; an interaction's within-segment position is its rank.
    order = np.lexsort((draws, data.user_ids))
    within = np.arange(n, dtype=np.int64) - data.user_offsets[data.user_ids]
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = within
    degree = data.user_degree()
    n_train = np.where(
        degree <= 1,
        degree,
        np.minimum(np.ceil(degree * train_fraction).astype(np.int64), degree - 1),
    )
    train_mask = ranks < n_train[data.user_ids]
    train = InteractionDataset(
        data.user_ids[train_mask], data.item_ids[train_mask], data.num_users, data.num_items
    )
    test = InteractionDataset(
        data.user_ids[~train_mask], data.item_ids[~train_mask], data.num_users, data.num_items
    )
    return TrainTestSplit(train=train, test=test)


def interaction_pair_chunks(
    data: InteractionDataset, users_per_chunk: int
) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
    """(user_ids, item_ids) views of contiguous user ranges.

    Views, not copies — the CSR layout makes a user range a contiguous
    slice, so chunked consumers (e.g. the adjacency builders) iterate the
    dataset with zero additional memory.
    """
    if users_per_chunk <= 0:
        raise ValueError(f"users_per_chunk must be positive, got {users_per_chunk}")
    for user_lo in range(0, data.num_users, users_per_chunk):
        user_hi = min(user_lo + users_per_chunk, data.num_users)
        lo = int(data.user_offsets[user_lo])
        hi = int(data.user_offsets[user_hi])
        if hi > lo:
            yield data.user_ids[lo:hi], data.item_ids[lo:hi]
