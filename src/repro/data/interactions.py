"""Implicit-feedback interaction dataset.

The paper preprocesses its query traces "building on the mechanisms used by
existing efforts for benchmark datasets, e.g., MovieLens" (Section VI-A):
repeated queries collapse to a single positive interaction ``y_uv = 1``, and
users below a minimum interaction count are dropped (they carry no learnable
signal and would make recall@20 degenerate).
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.facility.trace import QueryTrace

__all__ = [
    "InteractionDataset",
    "trace_to_interactions",
    "kcore_filter_masks",
    "KCORE_MAX_ROUNDS",
]


class InteractionDataset:
    """Deduplicated user–item pairs with CSR indexing by user.

    Attributes
    ----------
    user_ids, item_ids:
        Parallel int64 arrays of interaction pairs, sorted by user then item.
    num_users, num_items:
        Id-space sizes (row/column counts of the interaction matrix).
    """

    def __init__(self, user_ids: np.ndarray, item_ids: np.ndarray, num_users: int, num_items: int):
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape:
            raise ValueError("user_ids and item_ids must have equal length")
        if user_ids.size:
            if user_ids.min() < 0 or user_ids.max() >= num_users:
                raise ValueError("user id out of range")
            if item_ids.min() < 0 or item_ids.max() >= num_items:
                raise ValueError("item id out of range")
        order = np.lexsort((item_ids, user_ids))
        self.user_ids = user_ids[order]
        self.item_ids = item_ids[order]
        self.num_users = num_users
        self.num_items = num_items
        counts = np.bincount(self.user_ids, minlength=num_users)
        self.user_offsets = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(counts, out=self.user_offsets[1:])

    def __len__(self) -> int:
        return len(self.user_ids)

    def items_of_user(self, user: int) -> np.ndarray:
        """Sorted item ids this user interacted with."""
        lo, hi = self.user_offsets[user], self.user_offsets[user + 1]
        return self.item_ids[lo:hi]

    def user_degree(self) -> np.ndarray:
        """Interactions per user."""
        return np.diff(self.user_offsets)

    def item_degree(self) -> np.ndarray:
        """Interactions per item (item popularity)."""
        return np.bincount(self.item_ids, minlength=self.num_items)

    def to_csr(self) -> sp.csr_matrix:
        """Binary interaction matrix as ``scipy.sparse.csr_matrix``."""
        data = np.ones(len(self.user_ids), dtype=np.float64)
        return sp.csr_matrix(
            (data, (self.user_ids, self.item_ids)), shape=(self.num_users, self.num_items)
        )

    def density(self) -> float:
        """Fraction of the user×item matrix that is observed."""
        total = self.num_users * self.num_items
        return len(self) / total if total else 0.0

    def active_users(self) -> np.ndarray:
        """Users with at least one interaction."""
        return np.flatnonzero(self.user_degree() > 0)

    def __repr__(self) -> str:
        return (
            f"InteractionDataset({len(self)} interactions, "
            f"{self.num_users} users × {self.num_items} items, "
            f"density {self.density():.4f})"
        )


#: Safety bound on k-core rounds.  Each round that does not converge drops at
#: least one user or item, so ``max(num_users, num_items)`` rounds always
#: suffice; this constant only exists to turn a logic bug into a loud error
#: instead of an unbounded loop.
KCORE_MAX_ROUNDS = 10_000


def kcore_filter_masks(
    pair_chunks,
    num_users: int,
    num_items: int,
    min_user_interactions: int,
    min_item_interactions: int,
    max_rounds: int = KCORE_MAX_ROUNDS,
) -> "tuple[np.ndarray, np.ndarray]":
    """Fixed point of the alternating item/user degree filter.

    ``pair_chunks`` is a callable returning a fresh iterator of deduplicated
    ``(users, items)`` array chunks; it is consumed twice per round (once per
    degree recount), so scratch memory stays at degree-vector size however
    large the pair set is.  Each round recounts item degrees over surviving
    pairs, drops items below ``min_item_interactions``, then does the same
    for users — the item-then-user order of the original single pass —
    until neither mask changes.  Returns boolean ``(user_keep, item_keep)``.
    """
    user_keep = np.ones(num_users, dtype=bool)
    item_keep = np.ones(num_items, dtype=bool)
    for _ in range(max_rounds):
        changed = False
        item_deg = np.zeros(num_items, dtype=np.int64)
        for users, items in pair_chunks():
            alive = user_keep[users] & item_keep[items]
            item_deg += np.bincount(items[alive], minlength=num_items)
        new_item = item_keep & (item_deg >= min_item_interactions)
        if not np.array_equal(new_item, item_keep):
            item_keep = new_item
            changed = True
        user_deg = np.zeros(num_users, dtype=np.int64)
        for users, items in pair_chunks():
            alive = user_keep[users] & item_keep[items]
            user_deg += np.bincount(users[alive], minlength=num_users)
        new_user = user_keep & (user_deg >= min_user_interactions)
        if not np.array_equal(new_user, user_keep):
            user_keep = new_user
            changed = True
        if not changed:
            return user_keep, item_keep
    raise RuntimeError(
        f"k-core filtering did not converge within {max_rounds} rounds "
        "(every non-final round must drop a user or item — this is a bug)"
    )


def trace_to_interactions(
    trace: QueryTrace,
    min_user_interactions: int = 5,
    min_item_interactions: int = 1,
) -> InteractionDataset:
    """MovieLens-style preprocessing: dedup, then k-core filtering.

    Users with fewer than ``min_user_interactions`` distinct items and items
    below ``min_item_interactions`` distinct users are removed, alternating
    item and user passes **to a fixed point**: dropping a thin user lowers
    item degrees, which can push items back under ``min_item_interactions``
    (and vice versa), so a single pass of each is not enough on heavy-tailed
    traces.  With the default ``min_item_interactions=1`` the fixed point
    coincides with the historical single pass — dropping a user cannot
    reduce a *surviving* item's degree to zero without deleting the item's
    last pair — so cached splits keep their bits.  Id spaces are preserved:
    filtered users/items simply have no pairs, and catalog indices stay
    valid.
    """
    if min_user_interactions < 1 or min_item_interactions < 1:
        raise ValueError("minimum interaction counts must be >= 1")
    users, items = trace.unique_pairs()
    user_keep, item_keep = kcore_filter_masks(
        lambda: iter([(users, items)]),
        trace.num_users,
        trace.num_objects,
        min_user_interactions,
        min_item_interactions,
    )
    alive = user_keep[users] & item_keep[items]
    return InteractionDataset(users[alive], items[alive], trace.num_users, trace.num_objects)
