"""Implicit-feedback interaction dataset.

The paper preprocesses its query traces "building on the mechanisms used by
existing efforts for benchmark datasets, e.g., MovieLens" (Section VI-A):
repeated queries collapse to a single positive interaction ``y_uv = 1``, and
users below a minimum interaction count are dropped (they carry no learnable
signal and would make recall@20 degenerate).
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.facility.trace import QueryTrace

__all__ = ["InteractionDataset", "trace_to_interactions"]


class InteractionDataset:
    """Deduplicated user–item pairs with CSR indexing by user.

    Attributes
    ----------
    user_ids, item_ids:
        Parallel int64 arrays of interaction pairs, sorted by user then item.
    num_users, num_items:
        Id-space sizes (row/column counts of the interaction matrix).
    """

    def __init__(self, user_ids: np.ndarray, item_ids: np.ndarray, num_users: int, num_items: int):
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape:
            raise ValueError("user_ids and item_ids must have equal length")
        if user_ids.size:
            if user_ids.min() < 0 or user_ids.max() >= num_users:
                raise ValueError("user id out of range")
            if item_ids.min() < 0 or item_ids.max() >= num_items:
                raise ValueError("item id out of range")
        order = np.lexsort((item_ids, user_ids))
        self.user_ids = user_ids[order]
        self.item_ids = item_ids[order]
        self.num_users = num_users
        self.num_items = num_items
        counts = np.bincount(self.user_ids, minlength=num_users)
        self.user_offsets = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(counts, out=self.user_offsets[1:])

    def __len__(self) -> int:
        return len(self.user_ids)

    def items_of_user(self, user: int) -> np.ndarray:
        """Sorted item ids this user interacted with."""
        lo, hi = self.user_offsets[user], self.user_offsets[user + 1]
        return self.item_ids[lo:hi]

    def user_degree(self) -> np.ndarray:
        """Interactions per user."""
        return np.diff(self.user_offsets)

    def item_degree(self) -> np.ndarray:
        """Interactions per item (item popularity)."""
        return np.bincount(self.item_ids, minlength=self.num_items)

    def to_csr(self) -> sp.csr_matrix:
        """Binary interaction matrix as ``scipy.sparse.csr_matrix``."""
        data = np.ones(len(self.user_ids), dtype=np.float64)
        return sp.csr_matrix(
            (data, (self.user_ids, self.item_ids)), shape=(self.num_users, self.num_items)
        )

    def density(self) -> float:
        """Fraction of the user×item matrix that is observed."""
        total = self.num_users * self.num_items
        return len(self) / total if total else 0.0

    def active_users(self) -> np.ndarray:
        """Users with at least one interaction."""
        return np.flatnonzero(self.user_degree() > 0)

    def __repr__(self) -> str:
        return (
            f"InteractionDataset({len(self)} interactions, "
            f"{self.num_users} users × {self.num_items} items, "
            f"density {self.density():.4f})"
        )


def trace_to_interactions(
    trace: QueryTrace,
    min_user_interactions: int = 5,
    min_item_interactions: int = 1,
) -> InteractionDataset:
    """MovieLens-style preprocessing: dedup, then k-core-style filtering.

    Users with fewer than ``min_user_interactions`` distinct items and items
    below ``min_item_interactions`` distinct users are removed (one pass of
    each; the paper does not iterate to a full k-core and with our traces a
    single pass converges anyway).  Id spaces are preserved — filtered
    users/items simply have no pairs — so catalog indices stay valid.
    """
    if min_user_interactions < 1 or min_item_interactions < 1:
        raise ValueError("minimum interaction counts must be >= 1")
    users, items = trace.unique_pairs()
    # Filter items first (rare items carry noise), then users.
    item_deg = np.bincount(items, minlength=trace.num_objects)
    keep = item_deg[items] >= min_item_interactions
    users, items = users[keep], items[keep]
    user_deg = np.bincount(users, minlength=trace.num_users)
    keep = user_deg[users] >= min_user_interactions
    users, items = users[keep], items[keep]
    return InteractionDataset(users, items, trace.num_users, trace.num_objects)
