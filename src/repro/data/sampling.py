"""BPR negative sampling and minibatching.

Section VI-A: "For each observed user–item interaction, we consider it as a
positive instance and then conduct the negative sampling strategy to pair it
with one negative item that the user did not consume before."

:class:`BPRSampler` draws (user, positive, negative) triples in vectorized
batches; negatives are rejection-sampled against the user's positive set,
which at facility-data densities (≲5%) converges in one or two rounds.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.utils.rng import ensure_rng

__all__ = ["BPRSampler", "ShardedBPRSampler", "check_pair_key_space"]


def check_pair_key_space(num_users: int, num_items: int) -> None:
    """Guard the ``user * num_items + item`` key encoding against overflow.

    The largest key is ``num_users * num_items - 1``; past ``2**63 - 1`` the
    int64 product wraps silently and membership tests start comparing
    garbage.  No plausible catalog gets there by accident, but a mistyped id
    space does — fail loudly at construction, not probabilistically at
    sample time.
    """
    if int(num_users) * int(num_items) - 1 > np.iinfo(np.int64).max:
        raise ValueError(
            f"user/item key space {num_users} * {num_items} overflows int64; "
            "pair-membership keys (user * num_items + item) would wrap"
        )


def _sorted_membership(sorted_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Vectorized ``keys ∈ sorted_keys`` via searchsorted.

    An empty key array returns all-False: the old clip-then-compare probe
    clipped the searchsorted index to ``-1`` and fancy-indexed whatever lived
    past the end — unreachable when samplers reject empty datasets, but any
    empty user shard of :class:`ShardedBPRSampler` hits it.
    """
    if sorted_keys.size == 0:
        return np.zeros(np.asarray(keys).shape, dtype=bool)
    idx = np.searchsorted(sorted_keys, keys)
    idx = np.minimum(idx, len(sorted_keys) - 1)
    return sorted_keys[idx] == keys


class BPRSampler:
    """Vectorized (user, pos, neg) triple sampler over a training set.

    Parameters
    ----------
    data:
        Training interactions.
    max_rejection_rounds:
        Safety bound on rejection resampling; users whose positive set
        covers the whole catalog (degenerate) keep a random item after the
        bound is hit.
    """

    def __init__(self, data: InteractionDataset, max_rejection_rounds: int = 50):
        if len(data) == 0:
            raise ValueError("cannot sample from an empty interaction dataset")
        check_pair_key_space(data.num_users, data.num_items)
        self.data = data
        self.max_rejection_rounds = max_rejection_rounds
        # Membership test structure: key = user * num_items + item, sorted.
        self._keys = np.sort(data.user_ids * np.int64(data.num_items) + data.item_ids)

    def is_positive(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized membership test for (user, item) pairs."""
        keys = np.asarray(users, dtype=np.int64) * np.int64(self.data.num_items) + np.asarray(
            items, dtype=np.int64
        )
        return _sorted_membership(self._keys, keys)

    def _reject_negatives(
        self, users: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Redraw (in place) negatives that collide with ``users``' positives.

        Bounded rejection sampling: any entry still positive after
        ``max_rejection_rounds`` redraws keeps its last random item (only
        reachable for users whose positives cover the whole catalog).
        """
        bad = self.is_positive(users, neg)
        rounds = 0
        while bad.any() and rounds < self.max_rejection_rounds:
            neg[bad] = rng.integers(0, self.data.num_items, size=int(bad.sum()))
            bad = self.is_positive(users, neg)
            rounds += 1
        return neg

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one batch of (users, positive items, negative items).

        Positives are drawn uniformly over interactions (so heavy users are
        proportionally represented, as in standard BPR); negatives are
        uniform over the catalog with rejection against the user's
        positives.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        pick = rng.integers(0, len(self.data), size=batch_size)
        users = self.data.user_ids[pick]
        pos = self.data.item_ids[pick]
        neg = rng.integers(0, self.data.num_items, size=batch_size)
        return users, pos, self._reject_negatives(users, neg, rng)

    def epoch_batches(
        self, batch_size: int, seed=0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``ceil(len(data)/batch_size)`` batches covering one epoch.

        Interactions are visited in a fresh random permutation; negatives
        are sampled per batch.
        """
        rng = ensure_rng(seed)
        order = rng.permutation(len(self.data))
        for start in range(0, len(order), batch_size):
            pick = order[start : start + batch_size]
            users = self.data.user_ids[pick]
            pos = self.data.item_ids[pick]
            neg = rng.integers(0, self.data.num_items, size=len(pick))
            yield users, pos, self._reject_negatives(users, neg, rng)


class ShardedBPRSampler:
    """BPR sampler over contiguous user shards with shard-local key arrays.

    :class:`BPRSampler` keeps one sorted key per training interaction — fine
    until the training set itself is the memory budget.  This sampler visits
    users in contiguous shards of ``users_per_shard`` and builds each shard's
    membership keys lazily from the dataset's CSR slice
    (``user_offsets[lo:hi]``): because interactions are sorted by (user,
    item), the slice's ``user * num_items + item`` keys are already sorted
    and cost one shard's worth of scratch, freed when the shard completes.
    The global sorted key array is never materialized.

    An epoch still covers every interaction exactly once: shards are visited
    in ascending order and each shard's interactions in a fresh random
    permutation.  (The trade against :class:`BPRSampler` is permutation
    locality — batches mix users within one shard rather than globally —
    which leaves BPR's per-interaction gradient unbiased.)
    """

    def __init__(
        self,
        data: InteractionDataset,
        users_per_shard: int = 8192,
        max_rejection_rounds: int = 50,
    ):
        if len(data) == 0:
            raise ValueError("cannot sample from an empty interaction dataset")
        if users_per_shard <= 0:
            raise ValueError(f"users_per_shard must be positive, got {users_per_shard}")
        check_pair_key_space(data.num_users, data.num_items)
        self.data = data
        self.users_per_shard = int(users_per_shard)
        self.max_rejection_rounds = max_rejection_rounds
        self.num_shards = -(-data.num_users // self.users_per_shard)

    def shard_users(self, shard: int) -> Tuple[int, int]:
        """The user id range ``[lo, hi)`` of one shard."""
        if not 0 <= shard < self.num_shards:
            raise IndexError(f"shard {shard} out of range [0, {self.num_shards})")
        lo = shard * self.users_per_shard
        return lo, min(lo + self.users_per_shard, self.data.num_users)

    def shard_records(self, shard: int) -> Tuple[int, int]:
        """The interaction index range ``[lo, hi)`` of one shard's users."""
        user_lo, user_hi = self.shard_users(shard)
        return int(self.data.user_offsets[user_lo]), int(self.data.user_offsets[user_hi])

    def shard_keys(self, shard: int) -> np.ndarray:
        """Sorted membership keys of one shard (shard-sized scratch)."""
        lo, hi = self.shard_records(shard)
        return self.data.user_ids[lo:hi] * np.int64(self.data.num_items) + self.data.item_ids[
            lo:hi
        ]

    def shard_is_positive(
        self, shard: int, users: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        """Membership test against one shard's keys.

        Callers must pass users belonging to the shard — pairs of foreign
        users always test False (their keys cannot appear in this slice).
        An empty shard (users with no training interactions) is all-False.
        """
        keys = np.asarray(users, dtype=np.int64) * np.int64(self.data.num_items) + np.asarray(
            items, dtype=np.int64
        )
        return _sorted_membership(self.shard_keys(shard), keys)

    def _reject_negatives(
        self,
        keys: np.ndarray,
        users: np.ndarray,
        neg: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        num_items = self.data.num_items
        bad = _sorted_membership(keys, users * np.int64(num_items) + neg)
        rounds = 0
        while bad.any() and rounds < self.max_rejection_rounds:
            neg[bad] = rng.integers(0, num_items, size=int(bad.sum()))
            bad = _sorted_membership(keys, users * np.int64(num_items) + neg)
            rounds += 1
        return neg

    def shard_num_batches(self, shard: int, batch_size: int) -> int:
        """Batches one shard contributes to an epoch (0 for empty shards)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        rec_lo, rec_hi = self.shard_records(shard)
        return -(-(rec_hi - rec_lo) // batch_size)

    def shard_epoch_batches(
        self, shard: int, batch_size: int, rng: np.random.Generator
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield one shard's epoch batches, drawing only from ``rng``.

        This is the data-parallel entry point: the training engine gives
        each (epoch, shard) pair its own deterministic generator, so any
        worker that owns the shard produces byte-identical batches — batch
        content depends on the shard and the seed, never on which process
        draws it or how shards are assigned to workers.  The arithmetic is
        exactly one shard's slice of :meth:`epoch_batches`: a fresh
        permutation of the shard's interactions, negatives rejection-sampled
        per batch against the shard's membership keys.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        rec_lo, rec_hi = self.shard_records(shard)
        if rec_hi == rec_lo:
            return
        keys = self.shard_keys(shard)
        order = rng.permutation(rec_hi - rec_lo) + rec_lo
        for start in range(0, len(order), batch_size):
            pick = order[start : start + batch_size]
            users = self.data.user_ids[pick]
            pos = self.data.item_ids[pick]
            neg = rng.integers(0, self.data.num_items, size=len(pick))
            yield users, pos, self._reject_negatives(keys, users, neg, rng)

    def epoch_batches(
        self, batch_size: int, seed=0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield one epoch of (users, pos, neg) batches, shard by shard."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        rng = ensure_rng(seed)
        for shard in range(self.num_shards):
            rec_lo, rec_hi = self.shard_records(shard)
            if rec_hi == rec_lo:
                continue
            keys = self.shard_keys(shard)
            order = rng.permutation(rec_hi - rec_lo) + rec_lo
            for start in range(0, len(order), batch_size):
                pick = order[start : start + batch_size]
                users = self.data.user_ids[pick]
                pos = self.data.item_ids[pick]
                neg = rng.integers(0, self.data.num_items, size=len(pick))
                yield users, pos, self._reject_negatives(keys, users, neg, rng)
