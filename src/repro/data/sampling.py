"""BPR negative sampling and minibatching.

Section VI-A: "For each observed user–item interaction, we consider it as a
positive instance and then conduct the negative sampling strategy to pair it
with one negative item that the user did not consume before."

:class:`BPRSampler` draws (user, positive, negative) triples in vectorized
batches; negatives are rejection-sampled against the user's positive set,
which at facility-data densities (≲5%) converges in one or two rounds.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.utils.rng import ensure_rng

__all__ = ["BPRSampler"]


class BPRSampler:
    """Vectorized (user, pos, neg) triple sampler over a training set.

    Parameters
    ----------
    data:
        Training interactions.
    max_rejection_rounds:
        Safety bound on rejection resampling; users whose positive set
        covers the whole catalog (degenerate) keep a random item after the
        bound is hit.
    """

    def __init__(self, data: InteractionDataset, max_rejection_rounds: int = 50):
        if len(data) == 0:
            raise ValueError("cannot sample from an empty interaction dataset")
        self.data = data
        self.max_rejection_rounds = max_rejection_rounds
        # Membership test structure: key = user * num_items + item, sorted.
        self._keys = np.sort(data.user_ids * np.int64(data.num_items) + data.item_ids)

    def is_positive(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized membership test for (user, item) pairs."""
        keys = np.asarray(users, dtype=np.int64) * np.int64(self.data.num_items) + np.asarray(
            items, dtype=np.int64
        )
        idx = np.searchsorted(self._keys, keys)
        idx = np.clip(idx, 0, len(self._keys) - 1)
        return self._keys[idx] == keys

    def _reject_negatives(
        self, users: np.ndarray, neg: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Redraw (in place) negatives that collide with ``users``' positives.

        Bounded rejection sampling: any entry still positive after
        ``max_rejection_rounds`` redraws keeps its last random item (only
        reachable for users whose positives cover the whole catalog).
        """
        bad = self.is_positive(users, neg)
        rounds = 0
        while bad.any() and rounds < self.max_rejection_rounds:
            neg[bad] = rng.integers(0, self.data.num_items, size=int(bad.sum()))
            bad = self.is_positive(users, neg)
            rounds += 1
        return neg

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw one batch of (users, positive items, negative items).

        Positives are drawn uniformly over interactions (so heavy users are
        proportionally represented, as in standard BPR); negatives are
        uniform over the catalog with rejection against the user's
        positives.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        pick = rng.integers(0, len(self.data), size=batch_size)
        users = self.data.user_ids[pick]
        pos = self.data.item_ids[pick]
        neg = rng.integers(0, self.data.num_items, size=batch_size)
        return users, pos, self._reject_negatives(users, neg, rng)

    def epoch_batches(
        self, batch_size: int, seed=0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``ceil(len(data)/batch_size)`` batches covering one epoch.

        Interactions are visited in a fresh random permutation; negatives
        are sampled per batch.
        """
        rng = ensure_rng(seed)
        order = rng.permutation(len(self.data))
        for start in range(0, len(order), batch_size):
            pick = order[start : start + batch_size]
            users = self.data.user_ids[pick]
            pos = self.data.item_ids[pick]
            neg = rng.integers(0, self.data.num_items, size=len(pick))
            yield users, pos, self._reject_negatives(users, neg, rng)
