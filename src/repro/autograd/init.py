"""Parameter initializers.

The paper uses the Xavier/Glorot initializer (Section VI-D) for all models.
Every initializer takes an explicit :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "normal_init", "fan_in_out"]


def fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight shape.

    For 2-D weights ``(in, out)`` these are the two dims; for 1-D (bias-like)
    both equal the length; higher-rank tensors treat trailing dims as the
    receptive field, matching the Glorot convention.
    """
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = gain * sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain² · 2 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal_init(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain scaled-normal initializer (used by matrix-factorization models)."""
    return rng.normal(0.0, std, size=shape)
