"""Minimal vectorized reverse-mode automatic differentiation over NumPy.

This subpackage is the numerical substrate for every recommendation model in
:mod:`repro.models`.  It provides:

- :class:`~repro.autograd.tensor.Tensor` — an ndarray wrapper that records a
  tape of operations and supports broadcasting-aware backpropagation;
- :mod:`~repro.autograd.functional` — the op library (matmul, embedding
  gather/scatter, segment reductions and segment softmax for ragged graph
  neighborhoods, activations, dropout, ranking losses);
- :mod:`~repro.autograd.sparse` — row-sparse gradients
  (:class:`~repro.autograd.sparse.SparseRowGrad`) that embedding gathers emit
  for leaf parameters, keeping backward and optimizer work O(batch · dim)
  instead of O(table · dim);
- :mod:`~repro.autograd.optim` — SGD / Adam / AdaGrad optimizers with
  sparse scatter-updates (lazy per-row moment decay for Adam);
- :mod:`~repro.autograd.init` — Xavier and scaled-normal initializers.

The engine is deliberately small: dense float64/float32 arrays, define-by-run
tape, topological-order backward.  At the scale of the paper's collaborative
knowledge graphs (thousands of entities, 64-dim embeddings) this trains all
models in seconds to minutes on one core, which is all the reproduction needs.
"""

from repro.autograd import functional
from repro.autograd.gradcheck import GradcheckError, gradcheck, numerical_gradient
from repro.autograd.init import xavier_uniform, xavier_normal, normal_init
from repro.autograd.optim import SGD, Adam, AdaGrad, Optimizer
from repro.autograd.sparse import SparseRowGrad, dense_grads, sparse_grads_enabled
from repro.autograd.tensor import Tensor, Parameter, no_grad, is_grad_enabled

__all__ = [
    "Tensor",
    "Parameter",
    "SparseRowGrad",
    "dense_grads",
    "sparse_grads_enabled",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "xavier_uniform",
    "xavier_normal",
    "normal_init",
    "gradcheck",
    "numerical_gradient",
    "GradcheckError",
]
