"""Minimal vectorized reverse-mode automatic differentiation over NumPy.

This subpackage is the numerical substrate for every recommendation model in
:mod:`repro.models`.  It provides:

- :class:`~repro.autograd.tensor.Tensor` — an ndarray wrapper that records a
  tape of operations and supports broadcasting-aware backpropagation;
- :mod:`~repro.autograd.functional` — the op library (matmul, embedding
  gather/scatter, segment reductions and segment softmax for ragged graph
  neighborhoods, activations, dropout, ranking losses);
- :mod:`~repro.autograd.optim` — SGD / Adam / AdaGrad optimizers;
- :mod:`~repro.autograd.init` — Xavier and scaled-normal initializers.

The engine is deliberately small: dense float64/float32 arrays, define-by-run
tape, topological-order backward.  At the scale of the paper's collaborative
knowledge graphs (thousands of entities, 64-dim embeddings) this trains all
models in seconds to minutes on one core, which is all the reproduction needs.
"""

from repro.autograd import functional
from repro.autograd.gradcheck import GradcheckError, gradcheck, numerical_gradient
from repro.autograd.init import xavier_uniform, xavier_normal, normal_init
from repro.autograd.optim import SGD, Adam, AdaGrad, Optimizer
from repro.autograd.tensor import Tensor, Parameter, no_grad, is_grad_enabled

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "xavier_uniform",
    "xavier_normal",
    "normal_init",
    "gradcheck",
    "numerical_gradient",
    "GradcheckError",
]
