"""First-order optimizers for the autodiff engine.

All models in the paper are trained with Adam (Section VI-D); SGD and AdaGrad
are provided for ablations and tests.  Optimizers operate on the ``.grad``
buffers that :meth:`repro.autograd.tensor.Tensor.backward` fills in and update
``.data`` in place (guides: in-place ops avoid large temporaries).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.autograd.tensor import Parameter

_STATE_VERSION = 1

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad", "clip_grad_norm"]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters with ``grad is None`` are
    skipped.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters, zeroes grads, applies steps."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear every parameter's gradient buffer."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one update using the current gradients."""
        self.step_count += 1
        for p in self.params:
            if p.grad is not None:
                self._update(p)

    def _update(self, p: Parameter) -> None:
        raise NotImplementedError

    def state_size(self) -> int:
        """Number of floats of optimizer state (for memory accounting)."""
        return 0

    # --------------------------------------------------------- serialization
    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        """Named per-parameter state buffers, keyed internally by ``id(p)``.

        Subclasses with state (momentum, moments, accumulators) expose their
        buffers here; the base class has none.
        """
        return {}

    def state_dict(self) -> dict:
        """Full optimizer state as plain arrays and scalars.

        Per-parameter buffers are re-keyed from ``id(p)`` (process-local) to
        the parameter's *position* in ``self.params``, which is stable across
        processes as long as the model rebuilds its parameter list in the
        same order — the same contract :mod:`repro.io.checkpoints` relies on.
        Arrays are copied, so the snapshot is immune to further steps.
        """
        index = {id(p): i for i, p in enumerate(self.params)}
        slots = {
            name: {index[pid]: arr.copy() for pid, arr in buf.items()}
            for name, buf in self._slots().items()
        }
        return {
            "version": _STATE_VERSION,
            "type": type(self).__name__,
            "lr": float(self.lr),
            "step_count": int(self.step_count),
            "slots": slots,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place).

        Raises ``ValueError`` if the state came from a different optimizer
        class or if any buffer's shape does not match its parameter —
        optimizer state only loads into the parameter list that produced it.
        """
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, not {type(self).__name__!r}"
            )
        slots = self._slots()
        expected = set(slots)
        stored = set(state.get("slots", {}))
        if stored - expected:
            raise ValueError(f"unknown optimizer state slots {sorted(stored - expected)}")
        for name, buf in slots.items():
            loaded: Dict[int, np.ndarray] = {}
            for idx, arr in state.get("slots", {}).get(name, {}).items():
                idx = int(idx)
                if not 0 <= idx < len(self.params):
                    raise ValueError(f"optimizer state slot {name!r} indexes parameter {idx}")
                p = self.params[idx]
                arr = np.asarray(arr)
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"optimizer state {name}[{idx}] shape {arr.shape} does not match "
                        f"parameter shape {p.data.shape}"
                    )
                loaded[id(p)] = arr.astype(p.data.dtype, copy=True)
            buf.clear()
            buf.update(loaded)
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[id(p)] = v
            v *= self.momentum
            v += g
            g = v
        p.data -= self.lr * g  # reprolint: disable=RPL007

    def state_size(self) -> int:
        return sum(v.size for v in self._velocity.values())

    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the paper's optimizer for every model."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        b1, b2 = self.betas
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        m = self._m.get(id(p))
        if m is None:
            m = np.zeros_like(p.data)
            v = np.zeros_like(p.data)
            self._m[id(p)], self._v[id(p)] = m, v
        else:
            v = self._v[id(p)]
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * (g * g)
        t = self.step_count
        mhat = m / (1 - b1**t)
        vhat = v / (1 - b2**t)
        p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)  # reprolint: disable=RPL007

    def state_size(self) -> int:
        return sum(m.size for m in self._m.values()) + sum(v.size for v in self._v.values())

    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"m": self._m, "v": self._v}


class AdaGrad(Optimizer):
    """AdaGrad with per-coordinate accumulated squared gradients."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.05,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.eps = eps
        self.weight_decay = weight_decay
        self._acc: Dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        acc = self._acc.get(id(p))
        if acc is None:
            acc = np.zeros_like(p.data)
            self._acc[id(p)] = acc
        acc += g * g
        p.data -= self.lr * g / (np.sqrt(acc) + self.eps)  # reprolint: disable=RPL007

    def state_size(self) -> int:
        return sum(a.size for a in self._acc.values())

    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"acc": self._acc}
