"""First-order optimizers for the autodiff engine.

All models in the paper are trained with Adam (Section VI-D); SGD and AdaGrad
are provided for ablations and tests.  Optimizers operate on the ``.grad``
buffers that :meth:`repro.autograd.tensor.Tensor.backward` fills in and update
``.data`` in place (guides: in-place ops avoid large temporaries).

Sparse row gradients
--------------------
Embedding gathers emit :class:`~repro.autograd.sparse.SparseRowGrad` for leaf
parameters, and :meth:`Optimizer.step` dispatches on the gradient type: a
parameter with a sparse grad is coalesced once and handed to the subclass's
``_update_sparse`` (scatter-update over the touched rows only), while dense
grads take the unchanged ``_update`` path — bit-for-bit the pre-sparse
behavior.  Configurations whose update couples untouched rows (SGD momentum,
any weight decay) fall back to densifying the grad, so sparse mode never
changes semantics, only cost.

Adam is the subtle case: its moments decay every step even for rows that
received no gradient.  The sparse path is *lazy* — it records the step at
which each row was last touched and, on the row's next appearance, applies
the accumulated decay ``beta**(t - last)`` in one multiply before folding in
the new gradient.  Moment values therefore match an eager per-step decay up
to the associativity of repeated multiplication; what lazy Adam skips is the
(tiny) parameter drift dense Adam applies to untouched rows from their
decaying first moment.  See DESIGN.md for the full semantics note.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.autograd.sparse import SparseRowGrad
from repro.autograd.tensor import Parameter

_STATE_VERSION = 1

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "clip_grad_norm",
    "assemble_row_sharded_state",
]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters with ``grad is None`` are
    skipped.  Sparse grads are coalesced first — summing squares of
    uncoalesced duplicates would overcount ((v1+v2)² ≠ v1²+v2²).
    """
    total = 0.0
    for p in params:
        if p.grad is None:
            continue
        if isinstance(p.grad, SparseRowGrad):
            p.grad = p.grad.coalesce()
            vals = p.grad.values
            total += float((vals * vals).sum())
        else:
            total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is None:
                continue
            if isinstance(p.grad, SparseRowGrad):
                p.grad.scale_(scale)
            else:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters, zeroes grads, applies steps."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear every parameter's gradient buffer."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one update using the current gradients.

        Parameters holding a :class:`SparseRowGrad` are coalesced and routed
        to ``_update_sparse`` when the subclass supports it in its current
        configuration; otherwise the grad is densified and the dense path
        runs, preserving exact dense semantics.
        """
        self.step_count += 1
        for p in self.params:
            grad = p.grad
            if grad is None:
                continue
            if isinstance(grad, SparseRowGrad):
                grad = grad.coalesce()
                if self._supports_sparse():
                    p.grad = grad
                    self._update_sparse(p, grad)
                    continue
                p.grad = grad.to_dense()
            self._update(p)

    def _update(self, p: Parameter) -> None:
        raise NotImplementedError

    def _supports_sparse(self) -> bool:
        """Whether ``_update_sparse`` is exact under the current config."""
        return False

    def _update_sparse(self, p: Parameter, grad: SparseRowGrad) -> None:
        raise NotImplementedError

    def state_size(self) -> int:
        """Number of floats of optimizer state (for memory accounting)."""
        return 0

    # --------------------------------------------------------- serialization
    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        """Named per-parameter state buffers, keyed internally by ``id(p)``.

        Subclasses with state (momentum, moments, accumulators) expose their
        buffers here; the base class has none.
        """
        return {}

    def state_dict(self) -> dict:
        """Full optimizer state as plain arrays and scalars.

        Per-parameter buffers are re-keyed from ``id(p)`` (process-local) to
        the parameter's *position* in ``self.params``, which is stable across
        processes as long as the model rebuilds its parameter list in the
        same order — the same contract :mod:`repro.io.checkpoints` relies on.
        Arrays are copied, so the snapshot is immune to further steps.
        """
        index = {id(p): i for i, p in enumerate(self.params)}
        slots = {
            name: {index[pid]: arr.copy() for pid, arr in buf.items()}
            for name, buf in self._slots().items()
        }
        return {
            "version": _STATE_VERSION,
            "type": type(self).__name__,
            "lr": float(self.lr),
            "step_count": int(self.step_count),
            "slots": slots,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place).

        Raises ``ValueError`` if the state came from a different optimizer
        class or if any buffer's shape does not match its parameter —
        optimizer state only loads into the parameter list that produced it.
        """
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, not {type(self).__name__!r}"
            )
        slots = self._slots()
        expected = set(slots)
        stored = set(state.get("slots", {}))
        if stored - expected:
            raise ValueError(f"unknown optimizer state slots {sorted(stored - expected)}")
        for name, buf in slots.items():
            loaded: Dict[int, np.ndarray] = {}
            for idx, arr in state.get("slots", {}).get(name, {}).items():
                idx = int(idx)
                if not 0 <= idx < len(self.params):
                    raise ValueError(f"optimizer state slot {name!r} indexes parameter {idx}")
                p = self.params[idx]
                arr = np.asarray(arr)
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"optimizer state {name}[{idx}] shape {arr.shape} does not match "
                        f"parameter shape {p.data.shape}"
                    )
                loaded[id(p)] = arr.astype(p.data.dtype, copy=True)
            buf.clear()
            buf.update(loaded)
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[id(p)] = v
            v *= self.momentum
            v += g
            g = v
        p.data -= self.lr * g  # reprolint: disable=RPL007

    def _supports_sparse(self) -> bool:
        # Momentum and weight decay touch every row every step; densify.
        return self.momentum == 0.0 and self.weight_decay == 0.0

    def _update_sparse(self, p: Parameter, grad: SparseRowGrad) -> None:
        # Same arithmetic as the dense update on the touched rows; untouched
        # rows would see ``p -= lr * 0.0``, which is exactly a no-op.
        p.data[grad.indices] -= self.lr * grad.values  # reprolint: disable=RPL007

    def state_size(self) -> int:
        return sum(v.size for v in self._velocity.values())

    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the paper's optimizer for every model.

    With sparse row gradients the moment decay is applied *lazily*: each
    parameter that has ever received a sparse grad carries an int64 row
    vector of last-touched step numbers, and a row's accumulated decay
    ``beta**(t - last)`` is applied when the row next appears (or caught up
    in bulk when a dense grad arrives).  Checkpoint compatibility: the
    ``m``/``v`` slots stay dense param-shaped arrays holding *unflushed*
    moments, and the row-step vectors travel as a separate top-level
    ``row_steps`` key that older readers ignore (they then see exactly the
    slot format PR 2 defined) and older checkpoints simply lack (all rows
    are treated as current, which is exact for dense-only histories).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        #: per-parameter int64 vector (one entry per row) of the step at
        #: which that row's moments were last decayed; only parameters that
        #: have received a sparse grad have an entry.
        self._last: Dict[int, np.ndarray] = {}

    def _moments(self, p: Parameter):
        m = self._m.get(id(p))
        if m is None:
            m = np.zeros_like(p.data)
            v = np.zeros_like(p.data)
            self._m[id(p)], self._v[id(p)] = m, v
        else:
            v = self._v[id(p)]
        return m, v

    def _update(self, p: Parameter) -> None:
        b1, b2 = self.betas
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        m, v = self._moments(p)
        last = self._last.get(id(p))
        if last is not None:
            # Catch up lazily-deferred decay so the standard ``m *= b1``
            # below lands every row on beta**(t - last) total decay.
            lag = (self.step_count - 1) - last
            if lag.any():
                expand = (-1,) + (1,) * (p.data.ndim - 1)
                m *= (b1 ** lag.astype(np.float64)).reshape(expand)
                v *= (b2 ** lag.astype(np.float64)).reshape(expand)
            last[:] = self.step_count
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * (g * g)
        t = self.step_count
        mhat = m / (1 - b1**t)
        vhat = v / (1 - b2**t)
        p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)  # reprolint: disable=RPL007

    def _supports_sparse(self) -> bool:
        # Decoupled weight decay would have to touch every row; densify.
        return self.weight_decay == 0.0

    def _update_sparse(self, p: Parameter, grad: SparseRowGrad) -> None:
        b1, b2 = self.betas
        m, v = self._moments(p)
        last = self._last.get(id(p))
        if last is None:
            # Moments are current as of the previous step (zeros decay to
            # zeros, so this is exact for fresh parameters too).
            last = np.full(p.data.shape[0], self.step_count - 1, dtype=np.int64)
            self._last[id(p)] = last
        t = self.step_count
        idx, val = grad.indices, grad.values
        delta = (t - last[idx]).astype(np.float64)
        expand = (-1,) + (1,) * (val.ndim - 1)
        m_rows = m[idx] * (b1**delta).reshape(expand) + (1 - b1) * val
        v_rows = v[idx] * (b2**delta).reshape(expand) + (1 - b2) * (val * val)
        m[idx] = m_rows
        v[idx] = v_rows
        last[idx] = t
        mhat = m_rows / (1 - b1**t)
        vhat = v_rows / (1 - b2**t)
        update = self.lr * mhat / (np.sqrt(vhat) + self.eps)
        p.data[idx] -= update  # reprolint: disable=RPL007

    def state_size(self) -> int:
        return sum(m.size for m in self._m.values()) + sum(v.size for v in self._v.values())

    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def state_dict(self) -> dict:
        state = super().state_dict()
        if self._last:
            index = {id(p): i for i, p in enumerate(self.params)}
            # Plain ints so the vector survives the checkpoint meta-JSON
            # channel; stored *unflushed* — folding the pending decay into
            # m/v here would break bit-identical resume (beta**(a+b) is not
            # beta**a * beta**b in floating point).
            state["row_steps"] = {
                index[pid]: [int(s) for s in steps] for pid, steps in self._last.items()
            }
        return state

    # ---------------------------------------------------- row-shard views
    def export_row_shard(self, p: Parameter) -> dict:
        """One parameter's lazy-Adam state as plain row-aligned arrays.

        Returns copies of the ``m``/``v`` moment rows and the ``row_steps``
        last-touched vector for ``p`` — the per-row-shard view the
        data-parallel engine gathers from each worker's shard-local
        optimizer.  State that was never materialized reads back as its
        mathematical value: zero moments, and ``row_steps`` equal to the
        current ``step_count`` (zeros decay to zeros, so "current" is exact).
        """
        if id(p) not in {id(q) for q in self.params}:
            raise ValueError("export_row_shard: parameter is not owned by this optimizer")
        m = self._m.get(id(p))
        v = self._v.get(id(p))
        if m is None:
            m = np.zeros_like(p.data)
            v = np.zeros_like(p.data)
        last = self._last.get(id(p))
        if last is None:
            last = np.full(p.data.shape[0], self.step_count, dtype=np.int64)
        return {"m": m.copy(), "v": v.copy(), "row_steps": last.copy()}

    def install_row_shard(self, p: Parameter, state: dict) -> None:
        """Install an :meth:`export_row_shard` view into this optimizer.

        The inverse scatter: a worker restoring from a checkpoint installs
        its shard's slice of the full ``m``/``v``/``row_steps`` arrays into
        its shard-local optimizer, whose parameter covers exactly those rows.
        """
        if id(p) not in {id(q) for q in self.params}:
            raise ValueError("install_row_shard: parameter is not owned by this optimizer")
        m = np.asarray(state["m"], dtype=p.data.dtype)
        v = np.asarray(state["v"], dtype=p.data.dtype)
        last = np.asarray(state["row_steps"], dtype=np.int64)
        if m.shape != p.data.shape or v.shape != p.data.shape:
            raise ValueError(
                f"row shard moment shape {m.shape}/{v.shape} does not match "
                f"parameter shape {p.data.shape}"
            )
        if last.shape != (p.data.shape[0],):
            raise ValueError(
                f"row shard has {last.shape} row_steps for parameter with "
                f"{p.data.shape[0]} rows"
            )
        self._m[id(p)] = m.copy()
        self._v[id(p)] = v.copy()
        self._last[id(p)] = last.copy()

    def load_state_dict(self, state: dict) -> None:
        state = dict(state)
        row_steps = state.pop("row_steps", None)
        super().load_state_dict(state)
        self._last = {}
        if row_steps:
            for key, steps in row_steps.items():
                idx = int(key)  # JSON round-trips dict keys as strings
                if not 0 <= idx < len(self.params):
                    raise ValueError(f"optimizer row_steps indexes parameter {idx}")
                p = self.params[idx]
                arr = np.asarray(steps, dtype=np.int64)
                if arr.shape != (p.data.shape[0],):
                    raise ValueError(
                        f"row_steps[{idx}] has {arr.shape[0] if arr.ndim else 0} entries "
                        f"for parameter with {p.data.shape[0]} rows"
                    )
                self._last[id(p)] = arr


def assemble_row_sharded_state(
    state: dict,
    param_index: int,
    shards: Sequence[tuple],
) -> dict:
    """Fold per-row-shard Adam views into a full ``state_dict`` (in place).

    ``shards`` is a sequence of ``(lo, hi, view)`` with ``view`` an
    :meth:`Adam.export_row_shard` dict covering rows ``[lo, hi)`` of
    parameter ``param_index``.  Shards must tile the parameter's rows
    exactly (disjoint, covering) — the assembled ``m``/``v`` slot arrays and
    ``row_steps`` vector are indistinguishable from a serial optimizer's, so
    the result round-trips through the existing
    :mod:`repro.io.checkpoints` npz format unchanged.
    """
    if not shards:
        raise ValueError("assemble_row_sharded_state: no shards given")
    ordered = sorted(shards, key=lambda s: s[0])
    num_rows = ordered[-1][1]
    covered = 0
    for lo, hi, view in ordered:
        if lo != covered:
            raise ValueError(
                f"row shards must tile the parameter: gap/overlap at row {covered} (shard starts at {lo})"
            )
        if hi - lo != np.asarray(view["row_steps"]).shape[0]:
            raise ValueError(
                f"row shard [{lo}, {hi}) carries {np.asarray(view['row_steps']).shape[0]} rows of state"
            )
        covered = hi
    m = np.concatenate([np.asarray(view["m"]) for _, _, view in ordered], axis=0)
    v = np.concatenate([np.asarray(view["v"]) for _, _, view in ordered], axis=0)
    last = np.concatenate(
        [np.asarray(view["row_steps"], dtype=np.int64) for _, _, view in ordered]
    )
    if m.shape[0] != num_rows:
        raise ValueError(f"assembled {m.shape[0]} rows, expected {num_rows}")
    slots = state.setdefault("slots", {})
    slots.setdefault("m", {})[param_index] = m
    slots.setdefault("v", {})[param_index] = v
    state.setdefault("row_steps", {})[param_index] = [int(s) for s in last]
    return state


class AdaGrad(Optimizer):
    """AdaGrad with per-coordinate accumulated squared gradients."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.05,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.eps = eps
        self.weight_decay = weight_decay
        self._acc: Dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        acc = self._acc.get(id(p))
        if acc is None:
            acc = np.zeros_like(p.data)
            self._acc[id(p)] = acc
        acc += g * g
        p.data -= self.lr * g / (np.sqrt(acc) + self.eps)  # reprolint: disable=RPL007

    def _supports_sparse(self) -> bool:
        return self.weight_decay == 0.0

    def _update_sparse(self, p: Parameter, grad: SparseRowGrad) -> None:
        acc = self._acc.get(id(p))
        if acc is None:
            acc = np.zeros_like(p.data)
            self._acc[id(p)] = acc
        idx, val = grad.indices, grad.values
        # AdaGrad's accumulator never decays, so the sparse update performs
        # the dense arithmetic exactly: untouched rows accumulate g² = 0 and
        # receive a zero step.
        acc_rows = acc[idx] + val * val
        acc[idx] = acc_rows
        p.data[idx] -= self.lr * val / (np.sqrt(acc_rows) + self.eps)  # reprolint: disable=RPL007

    def state_size(self) -> int:
        return sum(a.size for a in self._acc.values())

    def _slots(self) -> Dict[str, Dict[int, np.ndarray]]:
        return {"acc": self._acc}
