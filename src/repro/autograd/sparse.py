"""Row-sparse gradients for embedding-table training.

A BPR/TransR minibatch gathers a few thousand rows from entity tables holding
tens of thousands, yet a dense backward pass materializes a full
``zeros_like`` of every table per gather and the optimizer then updates every
row per step — O(num_entities · dim) work for O(batch · dim) of signal.
:class:`SparseRowGrad` is the fix: the backward of
:func:`repro.autograd.functional.take_rows` emits ``(indices, values)`` pairs
instead of dense arrays, :meth:`repro.autograd.tensor.Tensor.accumulate_grad`
merges them (sparse+sparse concatenates, sparse+dense densifies), and the
optimizers in :mod:`repro.autograd.optim` scatter-update only the touched
rows.

Duplicate indices are the norm (the same entity appears many times in a
batch), so consumers call :meth:`SparseRowGrad.coalesce` first.  Coalescing
sorts with a *stable* argsort and sums each run with ``np.add.reduceat``:
rows that appear once come back bit-for-bit, and duplicated rows agree with
the dense ``np.add.at`` scatter up to summation associativity (``reduceat``
may associate a run's additions differently than ``add.at``'s strict
occurrence order — a few ulps on pathological inputs, far inside the
rtol=1e-10 agreement the benchmarks gate on).

``dense_grads()`` forces the engine back to dense emission, giving
benchmarks and debugging sessions an apples-to-apples dense baseline.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence, Tuple, Union

import numpy as np

__all__ = ["SparseRowGrad", "dense_grads", "sparse_grads_enabled"]

_SPARSE_GRADS = True


def sparse_grads_enabled() -> bool:
    """Whether ``take_rows``/``embedding`` backward emits sparse row grads."""
    return _SPARSE_GRADS


@contextlib.contextmanager
def dense_grads() -> Iterator[None]:
    """Context manager forcing dense gradient emission for the block.

    Inside the block ``take_rows`` backward scatters into a dense buffer as
    the engine originally did; the sparse machinery is bypassed entirely.
    Used by the sparse-vs-dense benchmarks and as an escape hatch when
    debugging gradient flow.
    """
    global _SPARSE_GRADS
    prev = _SPARSE_GRADS
    _SPARSE_GRADS = False
    try:
        yield
    finally:
        _SPARSE_GRADS = prev


class SparseRowGrad:
    """A gradient that is nonzero only on a set of rows of a 2-D+ buffer.

    Represents ``sum_k scatter(indices[k], values[k])`` over axis 0 of an
    array of ``shape``.  ``indices`` may contain duplicates until
    :meth:`coalesce` is called; ``to_dense()`` and the optimizer consumers
    coalesce on demand.

    Instances interoperate with NumPy through ``__array__`` (densifying), so
    test helpers like ``np.allclose(p.grad, expected)`` keep working when a
    parameter's gradient happens to be sparse.
    """

    __slots__ = ("shape", "indices", "values", "coalesced")

    def __init__(
        self,
        shape: Union[Tuple[int, ...], Sequence[int]],
        indices: np.ndarray,
        values: np.ndarray,
        *,
        coalesced: bool = False,
    ):
        shape = tuple(int(s) for s in shape)
        if not shape:
            raise ValueError("SparseRowGrad requires at least a 1-D target shape")
        indices = np.asarray(indices, dtype=np.intp).ravel()
        values = np.asarray(values)
        expected = (indices.size,) + shape[1:]
        if values.shape != expected:
            raise ValueError(
                f"values shape {values.shape} does not match {len(indices)} rows "
                f"of target shape {shape} (expected {expected})"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= shape[0]):
            raise IndexError(
                f"row indices out of range for axis 0 of target shape {shape}"
            )
        self.shape = shape
        self.indices = indices
        self.values = values
        self.coalesced = bool(coalesced)

    # ------------------------------------------------------------------ meta
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self):
        return self.values.dtype

    @property
    def nnz(self) -> int:
        """Number of stored rows (counting duplicates until coalesced)."""
        return int(self.indices.size)

    def __repr__(self) -> str:
        tag = ", coalesced" if self.coalesced else ""
        return f"SparseRowGrad(shape={self.shape}, nnz={self.nnz}{tag})"

    # ----------------------------------------------------------- conversions
    def coalesce(self) -> "SparseRowGrad":
        """Return an equivalent grad with sorted, duplicate-free indices.

        Stable argsort keeps duplicate rows in occurrence order and
        ``np.add.reduceat`` sums each run: singleton rows are returned
        bit-for-bit, duplicated rows match ``np.add.at`` up to summation
        associativity.  Returns ``self`` when already coalesced.
        """
        if self.coalesced:
            return self
        if self.indices.size == 0:
            return SparseRowGrad(self.shape, self.indices, self.values, coalesced=True)
        order = np.argsort(self.indices, kind="stable")
        sorted_idx = self.indices[order]
        sorted_vals = self.values[order]
        starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
        summed = np.add.reduceat(sorted_vals, starts, axis=0)
        return SparseRowGrad(self.shape, sorted_idx[starts], summed, coalesced=True)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array of ``self.shape``."""
        g = self.coalesce()
        dense = np.zeros(self.shape, dtype=g.values.dtype)
        dense[g.indices] = g.values
        return dense

    def add_to_dense(self, dense: np.ndarray) -> np.ndarray:
        """Add this grad into ``dense`` in place (and return it)."""
        if dense.shape != self.shape:
            raise ValueError(
                f"dense buffer shape {dense.shape} does not match grad shape {self.shape}"
            )
        g = self.coalesce()
        dense[g.indices] += g.values
        return dense

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = self.to_dense()
        return out.astype(dtype) if dtype is not None else out

    def copy(self) -> np.ndarray:
        """Dense copy — mirrors ``ndarray.copy()`` for test helpers."""
        return self.to_dense()

    # ------------------------------------------------------------- mutation
    def merge_(self, other: "SparseRowGrad") -> None:
        """Concatenate ``other``'s rows into this grad (sparse + sparse).

        Coalescing is deferred: accumulation during backward is O(batch),
        and the single sort happens once in the consumer.
        """
        if other.shape != self.shape:
            raise ValueError(
                f"cannot merge sparse grads of shapes {self.shape} and {other.shape}"
            )
        self.indices = np.concatenate([self.indices, other.indices])
        self.values = np.concatenate([self.values, other.values])
        self.coalesced = False

    def scale_(self, scale: float) -> None:
        """Multiply the stored values by a scalar (allocates; values may be
        shared with a backward closure's output-grad buffer)."""
        self.values = self.values * scale
