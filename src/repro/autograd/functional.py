"""Differentiable operations for the NumPy autodiff engine.

Every function takes and returns :class:`~repro.autograd.tensor.Tensor`
objects.  Forward passes are single vectorized NumPy expressions; backward
closures are defined alongside and capture only the arrays they need.

Graph-specific primitives
-------------------------
Knowledge-graph propagation works over *ragged* neighborhoods: every entity
has a variable number of incident triples.  We store edges sorted by head
entity (CSR layout, see :mod:`repro.kg.adjacency`) so the ragged reductions
become contiguous segment operations:

- :func:`segment_sum` — sum edge messages into per-head buckets;
- :func:`segment_softmax` — the knowledge-aware attention normalization of
  CKAT Eq. (5), a numerically-stable softmax within each head's segment;
- :func:`embedding` — row gather with scatter-add backward, the workhorse of
  every embedding-based model.

All segment ops take an ``offsets`` array of length ``num_segments + 1``
delimiting each segment in the sorted edge arrays, enabling
``np.add.reduceat`` / ``np.maximum.reduceat`` instead of Python loops.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd.sparse import SparseRowGrad, sparse_grads_enabled
from repro.autograd.tensor import Tensor, astensor, is_grad_enabled, unbroadcast

# This module shadows the builtins ``sum`` and ``abs`` with tensor ops; keep
# handles to the originals for internal use.
_sorted = sorted

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "matmul",
    "sum",
    "mean",
    "reshape",
    "transpose",
    "concat",
    "stack",
    "take_rows",
    "embedding",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "softmax",
    "log_sigmoid",
    "softplus",
    "dropout",
    "segment_sum",
    "segment_max",
    "segment_softmax",
    "spmm",
    "squared_norm",
    "bpr_loss",
    "margin_ranking_loss",
    "l2_normalize",
]


def _make(out_data: np.ndarray, parents: Sequence[Tensor], backward) -> Tensor:
    """Build an output tensor, recording on the tape only when needed."""
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(out_data, requires_grad=False)
    return Tensor(out_data, requires_grad=True, _parents=parents, _backward=backward)


# --------------------------------------------------------------- arithmetic
def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise broadcasted addition."""
    out = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad)
        if b.requires_grad:
            b.accumulate_grad(grad)

    return _make(out, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise broadcasted subtraction."""
    out = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad)
        if b.requires_grad:
            b.accumulate_grad(-grad, owned=True)

    return _make(out, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise broadcasted multiplication."""
    out = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * b.data, owned=True)
        if b.requires_grad:
            b.accumulate_grad(grad * a.data, owned=True)

    return _make(out, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise broadcasted division."""
    out = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad / b.data, owned=True)
        if b.requires_grad:
            b.accumulate_grad(-grad * a.data / (b.data * b.data), owned=True)

    return _make(out, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    out = -a.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(-grad, owned=True)

    return _make(out, (a,), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    out = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * exponent * a.data ** (exponent - 1), owned=True)

    return _make(out, (a,), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product supporting 1-D/2-D/batched operands (NumPy semantics)."""
    out = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        ad, bd = a.data, b.data
        grad = np.asarray(grad)
        if a.requires_grad:
            if ad.ndim == 1 and bd.ndim == 1:
                ga = grad * bd  # scalar grad times vector
            elif bd.ndim == 1:
                # out = ad @ b(vector): out[..., i] = sum_j ad[..., i, j] b[j]
                ga = np.expand_dims(grad, -1) * bd
            elif ad.ndim == 1:
                # out = a(vector) @ bd: out[..., j] = sum_i a[i] bd[..., i, j]
                ga = grad @ np.swapaxes(bd, -1, -2)
            else:
                ga = grad @ np.swapaxes(bd, -1, -2)
            a.accumulate_grad(unbroadcast(np.asarray(ga), ad.shape), owned=True)
        if b.requires_grad:
            if ad.ndim == 1 and bd.ndim == 1:
                gb = grad * ad
            elif ad.ndim == 1:
                gb = np.multiply.outer(ad, grad) if grad.ndim == 1 else np.swapaxes(
                    np.expand_dims(grad, -1) * ad, -1, -2
                )
            elif bd.ndim == 1:
                gb = np.swapaxes(ad, -1, -2) @ grad if ad.ndim == 2 else (
                    np.swapaxes(ad, -1, -2) @ np.expand_dims(grad, -1)
                ).squeeze(-1)
            else:
                gb = np.swapaxes(ad, -1, -2) @ grad
            b.accumulate_grad(unbroadcast(np.asarray(gb), bd.shape), owned=True)

    return _make(out, (a, b), backward)


# ----------------------------------------------------------------- reducers
def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over ``axis`` (all axes by default)."""
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if axis is None:
            a.accumulate_grad(np.broadcast_to(g, a.data.shape))
            return
        if not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in _sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a.accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(out, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis``."""
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.data.shape[ax] for ax in axes]))
    return mul(sum(a, axis=axis, keepdims=keepdims), astensor(1.0 / count))


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    """Reshape preserving element order."""
    out = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad.reshape(a.data.shape))

    return _make(out, (a,), backward)


def transpose(a: Tensor, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Axis permutation (full reversal when ``axes`` is None)."""
    out = a.data.transpose(axes)

    def backward(grad: np.ndarray) -> None:
        if axes is None:
            a.accumulate_grad(grad.transpose())
        else:
            a.accumulate_grad(grad.transpose(np.argsort(axes)))

    return _make(out, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (CKAT layer-concat, Eq. 10)."""
    tensors = [astensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, splits, axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t.accumulate_grad(piece)

    return _make(out, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shape tensors along a new axis."""
    tensors = [astensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t.accumulate_grad(piece)

    return _make(out, tuple(tensors), backward)


# ------------------------------------------------------------------- gather
def take_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows ``a[indices]`` along axis 0 with scatter-add backward.

    The backward pass builds a :class:`~repro.autograd.sparse.SparseRowGrad`
    holding only the gathered rows.  When ``a`` is a leaf (a parameter
    table), the sparse grad is accumulated as-is and the optimizer consumes
    it with a scatter-update; for intermediate tensors — whose own backward
    closures expect dense arrays — it is densified on the spot, matching the
    old ``zeros_like`` + scatter-add path exactly for unique indices and to
    summation-associativity rounding for duplicated ones (see
    :meth:`SparseRowGrad.coalesce`).
    """
    idx = np.asarray(indices, dtype=np.intp)
    out = a.data[idx]

    def backward(grad: np.ndarray) -> None:
        flat = np.asarray(grad).reshape((idx.size,) + a.data.shape[1:])
        g = SparseRowGrad(a.data.shape, idx, flat)
        if sparse_grads_enabled() and not a._parents:
            a.accumulate_grad(g)
        else:
            a.accumulate_grad(g.to_dense(), owned=True)

    return _make(out, (a,), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Embedding lookup: rows of ``weight`` selected by integer ``indices``.

    Functionally identical to :func:`take_rows`; provided as a named op so
    model code reads as the paper's embedding-layer notation.
    """
    return take_rows(weight, indices)


# -------------------------------------------------------------- activations
def tanh(a: Tensor) -> Tensor:
    """Hyperbolic tangent (used inside CKAT's attention, Eq. 4)."""
    out = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * (1.0 - out * out), owned=True)

    return _make(out, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    out = _stable_sigmoid(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out * (1.0 - out), owned=True)

    return _make(out, (a,), backward)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    out = np.maximum(a.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * (a.data > 0), owned=True)

    return _make(out, (a,), backward)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU, the aggregator nonlinearity of CKAT Eqs. (6)-(7)."""
    out = np.where(a.data > 0, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * np.where(a.data > 0, 1.0, negative_slope), owned=True)

    return _make(out, (a,), backward)


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential."""
    out = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out, owned=True)

    return _make(out, (a,), backward)


def log(a: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    out = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad / a.data, owned=True)

    return _make(out, (a,), backward)


def sqrt(a: Tensor) -> Tensor:
    """Elementwise square root."""
    out = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * 0.5 / out, owned=True)

    return _make(out, (a,), backward)


def abs(a: Tensor) -> Tensor:  # noqa: A001
    """Elementwise absolute value (subgradient 0 at 0)."""
    out = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * np.sign(a.data), owned=True)

    return _make(out, (a,), backward)


def clip(a: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the interval."""
    out = np.clip(a.data, lo, hi)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * ((a.data >= lo) & (a.data <= hi)), owned=True)

    return _make(out, (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the max-subtraction stability trick."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out).sum(axis=axis, keepdims=True)
        a.accumulate_grad(out * (grad - dot), owned=True)

    return _make(out, (a,), backward)


def log_sigmoid(a: Tensor) -> Tensor:
    """``log(sigmoid(x))`` computed stably — the BPR loss kernel (Eq. 12)."""
    x = a.data
    # min(x, 0) − log1p(exp(−|x|)) is the branch-free stable form: the exp
    # argument is always ≤ 0, so neither branch of a where() can overflow.
    out = np.minimum(x, 0.0) - np.log1p(np.exp(-np.abs(x)))

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * _stable_sigmoid(-x), owned=True)

    return _make(out, (a,), backward)


def softplus(a: Tensor) -> Tensor:
    """``log(1 + exp(x))`` computed stably."""
    x = a.data
    # max(x, 0) + log1p(exp(−|x|)) — branch-free, overflow-safe.
    out = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * _stable_sigmoid(x), owned=True)

    return _make(out, (a,), backward)


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with keep-probability scaling.

    Parameters
    ----------
    p:
        Drop probability in ``[0, 1)``.
    rng:
        Explicit generator — all stochastic components in this repo take one
        so runs are reproducible bit-for-bit.
    training:
        When False (or ``p == 0``) this is the identity.
    """
    if not training or p <= 0.0:
        return a
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(a.data.shape) >= p) / (1.0 - p)
    out = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * mask, owned=True)

    return _make(out, (a,), backward)


# --------------------------------------------------------------- segment ops
def _check_offsets(offsets: np.ndarray, total: int) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.intp)
    if offsets.ndim != 1 or offsets[0] != 0 or offsets[-1] != total:
        raise ValueError(
            f"offsets must be 1-D, start at 0 and end at {total}; got "
            f"shape={offsets.shape}, first={offsets[0] if offsets.size else None}, "
            f"last={offsets[-1] if offsets.size else None}"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be nondecreasing")
    return offsets


def segment_sum(values: Tensor, offsets: np.ndarray) -> Tensor:
    """Sum contiguous segments of ``values`` (axis 0) into one row each.

    ``offsets`` has length ``num_segments + 1``; segment ``i`` is
    ``values[offsets[i]:offsets[i+1]]``.  Empty segments produce zero rows.
    Implemented with ``np.add.reduceat`` on the non-empty segments.
    """
    offsets = _check_offsets(offsets, values.data.shape[0])
    num_segments = len(offsets) - 1
    out = np.zeros((num_segments,) + values.data.shape[1:], dtype=values.data.dtype)
    lengths = np.diff(offsets)
    nonempty = lengths > 0
    if nonempty.any():
        out[nonempty] = np.add.reduceat(values.data, offsets[:-1][nonempty], axis=0)

    def backward(grad: np.ndarray) -> None:
        seg_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
        values.accumulate_grad(grad[seg_ids], owned=True)

    return _make(out, (values,), backward)


def segment_max(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Non-differentiable per-segment maximum (stability shift for softmax)."""
    offsets = _check_offsets(offsets, values.shape[0])
    num_segments = len(offsets) - 1
    lengths = np.diff(offsets)
    out = np.full((num_segments,) + values.shape[1:], -np.inf, dtype=np.float64)
    nonempty = lengths > 0
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(values, offsets[:-1][nonempty], axis=0)
    return out


def segment_softmax(scores: Tensor, offsets: np.ndarray) -> Tensor:
    """Softmax within each contiguous segment of a 1-D score vector.

    This is CKAT Eq. (5): attention logits for the triples of each head
    entity are normalized against that head's other triples only.  Segments
    must be contiguous (edges sorted by head); empty segments are allowed.
    """
    if scores.data.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    offsets = _check_offsets(offsets, scores.data.shape[0])
    num_segments = len(offsets) - 1
    lengths = np.diff(offsets)
    seg_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)

    maxes = segment_max(scores.data, offsets)
    shifted = scores.data - maxes[seg_ids]
    e = np.exp(shifted)
    denom = np.zeros(num_segments, dtype=np.float64)
    nonempty = lengths > 0
    if nonempty.any():
        denom[nonempty] = np.add.reduceat(e, offsets[:-1][nonempty])
    out = e / denom[seg_ids]

    def backward(grad: np.ndarray) -> None:
        # d softmax: out * (grad - sum_segment(grad * out))
        weighted = grad * out
        seg_dot = np.zeros(num_segments, dtype=np.float64)
        if nonempty.any():
            seg_dot[nonempty] = np.add.reduceat(weighted, offsets[:-1][nonempty])
        scores.accumulate_grad(out * (grad - seg_dot[seg_ids]), owned=True)

    return _make(out, (scores,), backward)


def spmm(matrix, x: Tensor) -> Tensor:
    """Multiply a *constant* sparse matrix by a dense tensor: ``matrix @ x``.

    ``matrix`` is a ``scipy.sparse`` matrix treated as data (no gradient);
    backward propagates ``matrixᵀ @ grad`` into ``x``.  This fuses the
    gather → weight → segment-sum pattern of GNN propagation into one sparse
    BLAS call, which profiling showed is ~4× faster than the reduceat path
    when edge weights are frozen (CKAT's epoch-mode attention).
    """
    out = matrix @ x.data
    mt = matrix.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(mt @ grad, owned=True)

    return _make(np.asarray(out), (x,), backward)


# -------------------------------------------------------------------- losses
def squared_norm(a: Tensor) -> Tensor:
    """Sum of squares ``‖a‖²`` — the L2 regularizer of Eq. (13)."""
    out = np.asarray((a.data * a.data).sum())

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(2.0 * grad * a.data, owned=True)

    return _make(out, (a,), backward)


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian Personalized Ranking loss: ``-mean(log σ(pos - neg))`` (Eq. 12)."""
    return neg(mean(log_sigmoid(sub(pos_scores, neg_scores))))


def margin_ranking_loss(pos_energy: Tensor, neg_energy: Tensor, margin: float) -> Tensor:
    """TransR margin loss: ``mean(max(0, pos + γ - neg))`` (Eq. 2).

    ``pos_energy`` is the score ``fr`` of true triples (lower = better),
    ``neg_energy`` of corrupted ones.
    """
    return mean(relu(add(sub(pos_energy, neg_energy), astensor(margin))))


def l2_normalize(a: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows of ``a`` to unit L2 norm (entity-embedding constraint).

    ``eps`` is added under the square root so zero rows stay finite (their
    gradient is then also well-defined).
    """
    sq = sum(mul(a, a), axis=axis, keepdims=True)
    denom = sqrt(add(sq, astensor(eps)))
    return div(a, denom)
