"""Numerical gradient checking — the extension developer's safety net.

Any new op added to :mod:`repro.autograd.functional` (or any new model loss)
should be validated with :func:`gradcheck` before use; the test suite uses
this module for every existing op.  Central finite differences at ``eps``
against the tape's analytic gradients, with relative-scale tolerance.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Parameter, Tensor

__all__ = ["gradcheck", "numerical_gradient", "GradcheckError"]


class GradcheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def numerical_gradient(
    loss_fn: Callable[[], Tensor], param: Parameter, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``loss_fn()`` w.r.t. ``param``.

    ``loss_fn`` must return a scalar tensor and be a pure function of the
    current parameter values (re-invoked 2·size times).
    """
    grad = np.zeros_like(param.data)
    it = np.nditer(param.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        original = param.data[idx]
        param.data[idx] = original + eps  # reprolint: disable=RPL007
        f_plus = float(loss_fn().item())
        param.data[idx] = original - eps  # reprolint: disable=RPL007
        f_minus = float(loss_fn().item())
        param.data[idx] = original  # reprolint: disable=RPL007
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def gradcheck(
    loss_fn: Callable[[], Tensor],
    params: Sequence[Parameter],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic gradients of ``loss_fn`` against finite differences.

    Parameters
    ----------
    loss_fn:
        Zero-argument callable building the scalar loss from ``params``
        (a fresh tape every call).
    params:
        Parameters to check; their ``.grad`` buffers are clobbered.

    Returns True on success; raises :class:`GradcheckError` naming the first
    offending parameter otherwise.
    """
    if not params:
        raise ValueError("gradcheck needs at least one parameter")
    loss = loss_fn()
    if loss.data.size != 1:
        raise ValueError("loss_fn must return a scalar tensor")
    for p in params:
        p.grad = None
    loss.backward()
    analytic = [None if p.grad is None else p.grad.copy() for p in params]
    for i, p in enumerate(params):
        numeric = numerical_gradient(loss_fn, p, eps=eps)
        got = analytic[i] if analytic[i] is not None else np.zeros_like(p.data)
        scale = max(float(np.abs(numeric).max()), 1.0)
        if not np.allclose(got, numeric, atol=atol * scale, rtol=rtol):
            worst = float(np.abs(got - numeric).max())
            raise GradcheckError(
                f"gradient mismatch for parameter {i} "
                f"({p.name or 'unnamed'}): max abs error {worst:.3e} "
                f"(atol {atol * scale:.3e}, rtol {rtol})"
            )
    return True
