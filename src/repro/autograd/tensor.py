"""Core tensor type and tape machinery for the reverse-mode autodiff engine.

The design follows the classic define-by-run pattern: every differentiable
operation returns a new :class:`Tensor` holding references to its parents and
a closure that, given the output gradient, accumulates gradients into the
parents.  Calling :meth:`Tensor.backward` on a scalar loss walks the tape in
reverse topological order.

Broadcasting is handled once, centrally, by :func:`unbroadcast`: a gradient
flowing into an operand that was broadcast during the forward pass is summed
over the broadcast axes so that ``grad.shape == operand.shape`` always holds.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.sparse import SparseRowGrad

ArrayLike = Union[np.ndarray, float, int, "Tensor"]
GradLike = Union[np.ndarray, SparseRowGrad]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record onto the autodiff tape."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (e.g. during evaluation).

    Inside the block every op behaves like plain NumPy: outputs have
    ``requires_grad=False`` and no backward closures are created, which keeps
    full-ranking evaluation allocation-free of tape nodes.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were introduced or expanded by broadcasting.

    Parameters
    ----------
    grad:
        Gradient with the broadcasted (output) shape.
    shape:
        The original operand shape the gradient must be reduced back to.
    """
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the operand but expanded in the output.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == object:
        raise TypeError(f"cannot build tensor from object array: {value!r}")
    return arr


def astensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (constants get requires_grad=False)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(_as_array(value, dtype=np.float64), requires_grad=False)


class Tensor:
    """An ndarray wrapper participating in reverse-mode autodiff.

    Attributes
    ----------
    data:
        The underlying :class:`numpy.ndarray` value.
    grad:
        Accumulated gradient after ``backward`` — a dense array of
        ``data.shape``, or a :class:`~repro.autograd.sparse.SparseRowGrad`
        when every contribution came through an embedding gather; ``None``
        until gradients flow.
    requires_grad:
        Whether gradients should be computed for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Optional[GradLike] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: Tuple["Tensor", ...] = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a 0-d / single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------- gradients
    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def accumulate_grad(self, grad: GradLike, owned: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer (allocating lazily).

        ``owned=True`` asserts the caller hands over a freshly-allocated
        array that no other tensor will see — it is then stored without a
        defensive copy (later accumulations mutate it in place).  Backward
        closures that compute a new temporary (e.g. ``grad * x``) pass
        ``owned=True``; closures that forward a shared array (e.g. ``add``
        passing the same grad to both parents) use the safe default.

        ``grad`` may be a :class:`~repro.autograd.sparse.SparseRowGrad`
        (emitted by ``take_rows``/``embedding`` backward for leaf tensors):
        sparse + sparse merges row lists, sparse arriving on a dense buffer
        scatter-adds into it, and a dense grad arriving on a sparse buffer
        densifies the buffer first.  Sparse grads are never broadcast — their
        shape must match the tensor exactly.
        """
        if isinstance(grad, SparseRowGrad):
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"sparse grad shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )
            if self.grad is None:
                self.grad = grad
            elif isinstance(self.grad, SparseRowGrad):
                self.grad.merge_(grad)
            else:
                grad.add_to_dense(self.grad)
            return
        if isinstance(self.grad, SparseRowGrad):
            self.grad = self.grad.to_dense()
        shaped = unbroadcast(np.asarray(grad), self.data.shape)
        if shaped is not grad:
            owned = True  # unbroadcast allocated a reduction
        if self.grad is None:
            if (
                not owned
                or shaped.dtype != self.data.dtype
                or not shaped.flags.owndata
                or not shaped.flags.writeable
            ):
                shaped = shaped.astype(self.data.dtype, copy=True)
            self.grad = shaped
        else:
            self.grad += shaped

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Output gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        self.accumulate_grad(np.asarray(grad, dtype=self.data.dtype))

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                g = node.grad
                if isinstance(g, SparseRowGrad):
                    # Backward closures expect ndarrays; sparse grads only
                    # reach non-leaf nodes through unusual graphs (e.g. a
                    # gather whose source is itself an op output).
                    g = g.to_dense()
                node._backward(g)
                # Free intermediate gradients/tape references eagerly; keep
                # leaf grads (parameters) for the optimizer.
                if node._parents:
                    node.grad = None
            node._backward = None
            node._parents = ()

    # ------------------------------------------------------------ operators
    # The actual op implementations live in repro.autograd.functional; the
    # dunder methods below delegate so users can write natural expressions.
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.add(self, astensor(other))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.sub(self, astensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.sub(astensor(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.mul(self, astensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.div(self, astensor(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.div(astensor(other), self)

    def __neg__(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autograd import functional as F

        return F.power(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.autograd import functional as F

        return F.matmul(self, astensor(other))

    # ------------------------------------------------------------- reducers
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from repro.autograd import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        from repro.autograd import functional as F

        return F.transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable model parameter.

    Identical to ``Tensor(data, requires_grad=True)`` but the distinct type
    lets models and optimizers collect parameters generically.
    """

    __slots__ = ()

    def __init__(self, data: ArrayLike, name: str = ""):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)
        # Parameters are leaves even under no_grad construction.
        self.requires_grad = True


def collect_parameters(obj, _seen=None) -> List[Parameter]:
    """Recursively gather :class:`Parameter` instances from an object.

    Walks ``__dict__`` attributes, lists/tuples and dict values.  Used by
    model ``parameters()`` implementations so each model does not need to
    enumerate its parameters by hand.
    """
    if _seen is None:
        _seen = set()
    params: List[Parameter] = []
    if id(obj) in _seen:
        return params
    _seen.add(id(obj))
    if isinstance(obj, Parameter):
        return [obj]
    if isinstance(obj, Tensor):
        return []
    if isinstance(obj, dict):
        values: Iterable = obj.values()
    elif isinstance(obj, (list, tuple)):
        values = obj
    elif hasattr(obj, "__dict__"):
        values = vars(obj).values()
    else:
        return params
    for value in values:
        params.extend(collect_parameters(value, _seen))
    return params
