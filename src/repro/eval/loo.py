"""Leave-one-out evaluation with sampled negatives.

The paper uses full-ranking top-K (Section VI-B); much of the recommender
literature instead reports *leave-one-out* (LOO): hold out each user's
single test interaction, rank it against ``num_negatives`` sampled unseen
items, and report HR@K / NDCG@K.  Providing both protocols lets results be
compared against either convention — and quantifies how much protocol choice
alone moves the numbers (it moves them a lot; sampled metrics are inflated).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.utils.rng import ensure_rng

__all__ = ["LOOResult", "leave_one_out_split", "evaluate_loo"]


@dataclasses.dataclass(frozen=True)
class LOOResult:
    """Aggregated leave-one-out metrics."""

    hr: float
    ndcg: float
    k: int
    num_users: int
    num_negatives: int

    def __str__(self) -> str:
        return (
            f"HR@{self.k}={self.hr:.4f} NDCG@{self.k}={self.ndcg:.4f} "
            f"({self.num_users} users, {self.num_negatives} sampled negatives)"
        )


def leave_one_out_split(data: InteractionDataset, seed=0):
    """Split off one random held-out item per user (users with ≥2 items).

    Returns ``(train, heldout)`` where ``heldout`` maps user → item id
    (int64 arrays of equal length).
    """
    rng = ensure_rng(seed)
    train_mask = np.ones(len(data), dtype=bool)
    users, items = [], []
    for user in range(data.num_users):
        lo, hi = data.user_offsets[user], data.user_offsets[user + 1]
        if hi - lo < 2:
            continue
        pick = int(rng.integers(lo, hi))
        train_mask[pick] = False
        users.append(user)
        items.append(int(data.item_ids[pick]))
    train = InteractionDataset(
        data.user_ids[train_mask], data.item_ids[train_mask], data.num_users, data.num_items
    )
    return train, (np.array(users, dtype=np.int64), np.array(items, dtype=np.int64))


def evaluate_loo(
    score_fn: Callable[[np.ndarray], np.ndarray],
    train: InteractionDataset,
    heldout_users: np.ndarray,
    heldout_items: np.ndarray,
    k: int = 10,
    num_negatives: int = 99,
    seed=0,
    user_batch: int = 256,
) -> LOOResult:
    """Rank each held-out item against sampled negatives.

    Negatives are drawn uniformly from the items the user has *not*
    interacted with (training ∪ held-out); the held-out item's rank among
    the ``num_negatives + 1`` candidates yields HR@K (rank ≤ K) and NDCG@K
    (1 / log2(rank + 1) if within K).
    """
    if k <= 0 or num_negatives <= 0:
        raise ValueError("k and num_negatives must be positive")
    if len(heldout_users) != len(heldout_items):
        raise ValueError("held-out arrays must have equal length")
    if len(heldout_users) == 0:
        raise ValueError("no held-out interactions")
    rng = ensure_rng(seed)
    hrs, ndcgs = [], []
    n_items = train.num_items
    for start in range(0, len(heldout_users), user_batch):
        users = heldout_users[start : start + user_batch]
        targets = heldout_items[start : start + user_batch]
        scores = np.asarray(score_fn(users), dtype=np.float64)
        for row, (user, target) in enumerate(zip(users, targets)):
            seen = set(train.items_of_user(int(user)).tolist())
            seen.add(int(target))
            negatives = []
            while len(negatives) < num_negatives:
                cand = rng.integers(0, n_items, size=num_negatives)
                negatives.extend(int(c) for c in cand if int(c) not in seen)
            negatives = np.array(negatives[:num_negatives], dtype=np.int64)
            target_score = scores[row, int(target)]
            rank = 1 + int((scores[row, negatives] > target_score).sum())
            hrs.append(1.0 if rank <= k else 0.0)
            ndcgs.append(1.0 / np.log2(rank + 1) if rank <= k else 0.0)
    return LOOResult(
        hr=float(np.mean(hrs)),
        ndcg=float(np.mean(ndcgs)),
        k=k,
        num_users=len(hrs),
        num_negatives=num_negatives,
    )
