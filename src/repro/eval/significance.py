"""Statistical significance utilities for model comparisons.

The paper reports point estimates; on synthetic data we can do better.
These helpers quantify whether a Table-II-style gap is real:

- :func:`bootstrap_ci` — percentile bootstrap confidence interval for a
  per-user metric mean;
- :func:`paired_bootstrap_test` — one-sided paired bootstrap on per-user
  metric differences between two models (the standard IR significance test
  for top-K metrics);
- :func:`per_user_metrics` — per-user recall/ndcg vectors for a scoring
  function, the inputs to the above.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Tuple

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.utils.rng import ensure_rng

__all__ = ["per_user_metrics", "bootstrap_ci", "paired_bootstrap_test", "PairedTestResult"]


def per_user_metrics(
    score_fn: Callable[[np.ndarray], np.ndarray],
    train: InteractionDataset,
    test: InteractionDataset,
    k: int = 20,
    user_batch: int = 256,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-user (recall@k, ndcg@k) plus the evaluated user ids.

    Same protocol as :class:`repro.eval.evaluator.RankingEvaluator` but
    returning the per-user vectors instead of means.
    """
    users = test.active_users()
    recalls = np.empty(len(users), dtype=np.float64)
    ndcgs = np.empty(len(users), dtype=np.float64)
    discounts = 1.0 / np.log2(np.arange(2, k + 2, dtype=np.float64))
    pos = 0
    for start in range(0, len(users), user_batch):
        batch = users[start : start + user_batch]
        scores = np.array(score_fn(batch), dtype=np.float64, copy=True)
        for row, u in enumerate(batch):
            scores[row, train.items_of_user(int(u))] = -np.inf
        top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        row_idx = np.arange(len(batch), dtype=np.int64)[:, None]
        order = np.argsort(-scores[row_idx, top], axis=1, kind="stable")
        top = top[row_idx, order]
        for row, u in enumerate(batch):
            relevant = test.items_of_user(int(u))
            gains = np.isin(top[row], relevant).astype(np.float64)
            recalls[pos] = gains.sum() / len(relevant)
            idcg = discounts[: min(len(relevant), k)].sum()
            ndcgs[pos] = float((gains * discounts).sum() / idcg) if idcg > 0 else 0.0
            pos += 1
    return recalls, ndcgs, users


def bootstrap_ci(
    values: np.ndarray, confidence: float = 0.95, n_resamples: int = 2000, seed=0
) -> Tuple[float, float, float]:
    """(mean, low, high) percentile-bootstrap CI of the mean of ``values``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty sample")
    rng = ensure_rng(seed)
    idx = rng.integers(0, len(values), size=(n_resamples, len(values)))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


@dataclasses.dataclass(frozen=True)
class PairedTestResult:
    """Outcome of a one-sided paired bootstrap comparison (A vs B)."""

    mean_diff: float
    p_value: float
    n_users: int

    @property
    def significant(self) -> bool:
        """True at the conventional 0.05 level."""
        return self.p_value < 0.05


def paired_bootstrap_test(
    metric_a: np.ndarray,
    metric_b: np.ndarray,
    n_resamples: int = 5000,
    seed=0,
) -> PairedTestResult:
    """One-sided paired bootstrap: is mean(A − B) > 0 beyond chance?

    ``p_value`` is the bootstrap probability that the resampled mean
    difference is ≤ 0.  Per-user pairing removes between-user variance,
    which dominates top-K metrics.
    """
    a = np.asarray(metric_a, dtype=np.float64)
    b = np.asarray(metric_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired metric vectors must have equal length")
    if a.size == 0:
        raise ValueError("empty sample")
    diffs = a - b
    rng = ensure_rng(seed)
    idx = rng.integers(0, len(diffs), size=(n_resamples, len(diffs)))
    means = diffs[idx].mean(axis=1)
    p = float((means <= 0.0).mean())
    return PairedTestResult(mean_diff=float(diffs.mean()), p_value=p, n_users=len(diffs))
