"""Process-parallel evaluation sharding.

Full-ranking evaluation is embarrassingly parallel over users: each user's
metrics depend only on their own score row, train positives, and test set.
This module splits the eval-user list into contiguous shards
(:func:`repro.parallel.executor.chunk_indices`), evaluates each shard in a
worker process, and merges by concatenating the per-user metric vectors in
shard order.  Because every evaluator step is row-wise (see
:mod:`repro.eval.evaluator`), the concatenated vectors are identical to a
single serial pass, so the reduced means are **bit-identical** to the
:class:`~repro.parallel.executor.SerialExecutor` reference — the same
serial-is-the-reference discipline the sharded propagation path follows.

Workers cannot share a live model, so scoring is handed off through a
checkpoint: :class:`SnapshotScorer` pickles a model *factory* plus a
``.npz`` parameter snapshot (:mod:`repro.io.checkpoints`) and rebuilds the
model lazily on first use inside the worker.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.eval.evaluator import EvaluationResult, PerUserMetrics, RankingEvaluator
from repro.io.checkpoints import load_parameters
from repro.parallel.executor import MapExecutor, SerialExecutor, chunk_indices
from repro.pipeline import DatasetRef
from repro.utils.telemetry import RunLogger

__all__ = ["SnapshotScorer", "EvalShard", "sharded_evaluate"]


class SnapshotScorer:
    """Picklable ``score_users``-style callable backed by a checkpoint.

    Parameters
    ----------
    factory:
        Picklable callable (module-level function or class) that rebuilds
        the model architecture, e.g. ``BPRMF`` or a registry builder.
    args, kwargs:
        Arguments for ``factory``; must themselves be picklable.
    checkpoint:
        Optional path to a ``repro.io.checkpoints`` snapshot loaded into the
        rebuilt model.  Without it the factory must already produce the
        trained state (e.g. a deterministic rebuild).

    The model is constructed lazily on first call and cached per process, so
    a worker evaluating many batches pays the rebuild cost once.  Pickling
    drops the cached model — only the recipe travels across processes.
    """

    def __init__(self, factory: Callable, args: Tuple = (), kwargs=None, checkpoint=None):
        if not callable(factory):
            raise TypeError("factory must be callable")
        self.factory = factory
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.checkpoint = str(checkpoint) if checkpoint is not None else None
        self._model = None

    def _build(self):
        model = self.factory(*self.args, **self.kwargs)
        if self.checkpoint is not None:
            load_parameters(self.checkpoint, model)
        return model

    def __call__(self, users: np.ndarray) -> np.ndarray:
        if self._model is None:
            self._model = self._build()
        return self._model.score_users(users)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_model"] = None
        return state


@dataclasses.dataclass(frozen=True)
class EvalShard:
    """Picklable work unit: evaluate one contiguous user shard.

    The split travels either inline (``train``/``test`` pickled arrays —
    the legacy spelling) or by reference (``dataset_ref``): a ref-carrying
    shard materializes its split through the worker's process-cached
    :class:`~repro.pipeline.DatasetPipeline`, memory-mapping the cached
    artifact when the ref names a cache dir.  All shards of one evaluation
    then share a single split materialization per worker process instead of
    each deserializing its own copy.
    """

    train: Optional[InteractionDataset]
    test: Optional[InteractionDataset]
    users: np.ndarray
    score_fn: Callable[[np.ndarray], np.ndarray]
    k: int
    user_batch: int
    score_dtype: str
    dataset_ref: Optional[DatasetRef] = None

    def resolve_split(self) -> Tuple[InteractionDataset, InteractionDataset]:
        """(train, test) for this shard, from inline arrays or the ref."""
        if self.train is not None and self.test is not None:
            return self.train, self.test
        if self.dataset_ref is None:
            raise ValueError("EvalShard needs either train/test or a dataset_ref")
        split = self.dataset_ref.pipeline().split()
        return split.train, split.test


def _evaluate_shard(shard: EvalShard) -> Tuple[PerUserMetrics, float]:
    """Worker entry point (module-level so process pools can pickle it).

    Returns the per-user metrics plus the shard's worker-side wall-clock,
    measured here so process-pool timings reflect actual evaluation work,
    not queueing.
    """
    start = time.perf_counter()
    train, test = shard.resolve_split()
    evaluator = RankingEvaluator(
        train,
        test,
        k=shard.k,
        user_batch=shard.user_batch,
        score_dtype=np.dtype(shard.score_dtype),
    )
    metrics = evaluator.evaluate_per_user(shard.score_fn, users=shard.users)
    return metrics, time.perf_counter() - start


def sharded_evaluate(
    evaluator: RankingEvaluator,
    score_fn: Callable[[np.ndarray], np.ndarray],
    num_shards: int,
    executor: Optional[MapExecutor] = None,
    users: Optional[np.ndarray] = None,
    logger: Optional[RunLogger] = None,
    dataset_ref: Optional[DatasetRef] = None,
) -> EvaluationResult:
    """Evaluate ``score_fn`` with users split across ``num_shards`` workers.

    Parameters
    ----------
    evaluator:
        Configured :class:`RankingEvaluator`; supplies train/test, ``k``,
        ``user_batch`` and ``score_dtype`` to every shard.
    score_fn:
        Scoring callable.  With a process-backed executor it must be
        picklable — use :class:`SnapshotScorer` to ship a checkpointed
        model; plain bound methods of live models only work serially.
    num_shards:
        Number of contiguous user shards (typically the worker count).
    executor:
        Backend; defaults to :class:`SerialExecutor`, the reference the
        parallel result is guaranteed to match exactly.
    users:
        Optional explicit user subset (validated like
        :meth:`RankingEvaluator.evaluate`).
    logger:
        Optional :class:`~repro.utils.telemetry.RunLogger`; emits one
        ``eval_shard`` event per shard (index, user count, worker-side
        seconds) plus a closing ``eval_sharded`` total.
    dataset_ref:
        When given, shards carry this lightweight ref instead of the pickled
        train/test datasets; workers re-materialize the split through the
        process-cached pipeline (identical arrays by construction).  The
        ref's split MUST be the evaluator's split — it is the caller's
        contract, same as passing a matching evaluator/score_fn pair.

    Returns
    -------
    EvaluationResult equal — bit-for-bit — to
    ``evaluator.evaluate(score_fn, users)``.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    all_users = evaluator._resolve_users(users)
    if all_users.size == 0:
        raise ValueError("no users to evaluate")
    executor = executor or SerialExecutor()
    shards = [
        EvalShard(
            train=None if dataset_ref is not None else evaluator.train,
            test=None if dataset_ref is not None else evaluator.test,
            users=all_users[chunk.start : chunk.stop],
            score_fn=score_fn,
            k=evaluator.k,
            user_batch=evaluator.user_batch,
            score_dtype=evaluator.score_dtype.name,
            dataset_ref=dataset_ref,
        )
        for chunk in chunk_indices(len(all_users), num_shards)
    ]
    start = time.perf_counter()
    timed: Sequence[Tuple[PerUserMetrics, float]] = executor.map(_evaluate_shard, shards)
    if logger is not None:
        for i, (shard, (_, seconds)) in enumerate(zip(shards, timed)):
            logger.log("eval_shard", shard=i, num_users=int(shard.users.size), seconds=seconds)
        logger.log(
            "eval_sharded",
            num_shards=len(shards),
            num_users=int(all_users.size),
            seconds=time.perf_counter() - start,
        )
    return PerUserMetrics.concatenate([metrics for metrics, _ in timed]).reduce()
