"""Ranking metrics.

All functions operate on one user's *ranked list* (item ids in descending
score order, training items already removed) and a *relevant set* (the user's
test items), and return floats in [0, 1].  Batch aggregation lives in
:mod:`repro.eval.evaluator`, which computes hit matrices vectorized and calls
these only in tests as the reference implementation.

Definitions follow the paper's protocol (and the KGAT codebase conventions):

- ``recall@K`` = |top-K ∩ relevant| / |relevant|
- ``ndcg@K``   = DCG@K / IDCG@K with binary gains, log2 discounting
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

__all__ = [
    "recall_at_k",
    "precision_at_k",
    "hit_at_k",
    "ndcg_at_k",
    "mrr_at_k",
    "average_precision_at_k",
    "dcg_at_k",
]


def _hits(ranked: Sequence[int], relevant: Set[int], k: int) -> np.ndarray:
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    topk = list(ranked[:k])
    return np.array([1.0 if item in relevant else 0.0 for item in topk])


def recall_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Fraction of the relevant set retrieved in the top K."""
    if not relevant:
        return 0.0
    return float(_hits(ranked, relevant, k).sum() / len(relevant))


def precision_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Fraction of the top K that is relevant."""
    return float(_hits(ranked, relevant, k).sum() / k)


def hit_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """1 if any relevant item appears in the top K."""
    return float(_hits(ranked, relevant, k).any())


def dcg_at_k(gains: np.ndarray) -> float:
    """Discounted cumulative gain of a binary gain vector (positions 1..n)."""
    if len(gains) == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2, dtype=np.float64))
    return float((gains * discounts).sum())


def ndcg_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Normalized DCG with binary relevance.

    The ideal ranking places min(|relevant|, K) relevant items first.
    """
    if not relevant:
        return 0.0
    gains = _hits(ranked, relevant, k)
    ideal = np.ones(min(len(relevant), k), dtype=np.float64)
    idcg = dcg_at_k(ideal)
    return dcg_at_k(gains) / idcg if idcg > 0 else 0.0


def mrr_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Reciprocal rank of the first relevant item within the top K."""
    gains = _hits(ranked, relevant, k)
    nz = np.flatnonzero(gains)
    return float(1.0 / (nz[0] + 1)) if nz.size else 0.0


def average_precision_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """AP@K: mean of precision at each relevant position, over min(|rel|, K)."""
    if not relevant:
        return 0.0
    gains = _hits(ranked, relevant, k)
    cum = np.cumsum(gains)
    positions = np.arange(1, len(gains) + 1, dtype=np.float64)
    precisions = cum / positions
    denom = min(len(relevant), k)
    return float((precisions * gains).sum() / denom)
