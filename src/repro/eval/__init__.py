"""Top-K evaluation protocol (Section VI-B).

The paper adopts full-ranking top-K evaluation with recall@20 and ndcg@20:
for every test user, all items are scored, training positives are masked,
and the top K of the remainder are compared against the held-out test items.
"""

from repro.eval.evaluator import EvaluationResult, PerUserMetrics, RankingEvaluator
from repro.eval.loo import LOOResult, evaluate_loo, leave_one_out_split
from repro.eval.metrics import (
    average_precision_at_k,
    hit_at_k,
    mrr_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.eval.sharded import SnapshotScorer, sharded_evaluate
from repro.eval.significance import (
    PairedTestResult,
    bootstrap_ci,
    paired_bootstrap_test,
    per_user_metrics,
)

__all__ = [
    "recall_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "hit_at_k",
    "mrr_at_k",
    "average_precision_at_k",
    "RankingEvaluator",
    "EvaluationResult",
    "PerUserMetrics",
    "SnapshotScorer",
    "sharded_evaluate",
    "bootstrap_ci",
    "paired_bootstrap_test",
    "per_user_metrics",
    "PairedTestResult",
    "LOOResult",
    "evaluate_loo",
    "leave_one_out_split",
]
