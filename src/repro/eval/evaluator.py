"""Vectorized full-ranking evaluator.

For each batch of test users the evaluator asks the model for a dense
(users × items) score matrix, masks the users' training items out of the
ranking, takes the top K columns with ``argpartition`` (O(N) per row instead
of a full sort), and accumulates recall/ndcg/precision/hit vectorized across
the batch.

The hot path is loop-free (DESIGN.md §6):

- train/test interactions are indexed as CSR (``indptr``/``indices``) once at
  construction;
- a batch's training positives are masked with one flat fancy-index (row
  indices repeated by per-user degree, columns gathered straight from the
  CSR ``indices`` array);
- hit flags come from a single ``searchsorted`` of the batch's top-K
  ``user * num_items + item`` keys against the globally sorted test keys —
  no per-row ``np.isin``;
- per-user metrics accumulate into preallocated arrays, and the dense score
  matrix lives in a reusable buffer (optionally float32) so steady-state
  evaluation performs no per-batch ``users × items`` allocation.

Only users with at least one test interaction are evaluated (the paper's
protocol: metrics are means over test users).  Because every step is
row-wise, per-user metric values are independent of batching — the property
the sharded evaluator (:mod:`repro.eval.sharded`) relies on for exactness.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.interactions import InteractionDataset
from repro.kernels import dispatch

__all__ = ["EvaluationResult", "PerUserMetrics", "RankingEvaluator"]


@dataclasses.dataclass(frozen=True)
class EvaluationResult:
    """Aggregated ranking metrics over the evaluated users."""

    recall: float
    ndcg: float
    precision: float
    hit: float
    k: int
    num_users: int

    def as_dict(self) -> Dict[str, float]:
        return {
            f"recall@{self.k}": self.recall,
            f"ndcg@{self.k}": self.ndcg,
            f"precision@{self.k}": self.precision,
            f"hit@{self.k}": self.hit,
        }

    def __str__(self) -> str:
        return (
            f"recall@{self.k}={self.recall:.4f} ndcg@{self.k}={self.ndcg:.4f} "
            f"({self.num_users} users)"
        )


@dataclasses.dataclass(frozen=True)
class PerUserMetrics:
    """Per-user metric vectors, aligned with ``users``.

    This is the mergeable form of an evaluation: concatenating the
    per-user vectors of contiguous user shards (in shard order) rebuilds
    exactly the arrays a single serial pass would produce, so the reduced
    means are bit-identical — the exactness contract of
    :func:`repro.eval.sharded.sharded_evaluate`.
    """

    users: np.ndarray
    recall: np.ndarray
    ndcg: np.ndarray
    precision: np.ndarray
    hit: np.ndarray
    k: int

    def reduce(self) -> EvaluationResult:
        """Mean the per-user vectors into an :class:`EvaluationResult`."""
        if self.users.size == 0:
            raise ValueError("cannot reduce an empty PerUserMetrics")
        return EvaluationResult(
            recall=float(np.mean(self.recall)),
            ndcg=float(np.mean(self.ndcg)),
            precision=float(np.mean(self.precision)),
            hit=float(np.mean(self.hit)),
            k=self.k,
            num_users=int(self.users.size),
        )

    @staticmethod
    def concatenate(parts: Sequence["PerUserMetrics"]) -> "PerUserMetrics":
        """Stitch shard results back together in shard order."""
        if not parts:
            raise ValueError("no shard results to concatenate")
        ks = {p.k for p in parts}
        if len(ks) != 1:
            raise ValueError(f"shards evaluated at different k: {sorted(ks)}")
        return PerUserMetrics(
            users=np.concatenate([p.users for p in parts]),
            recall=np.concatenate([p.recall for p in parts]),
            ndcg=np.concatenate([p.ndcg for p in parts]),
            precision=np.concatenate([p.precision for p in parts]),
            hit=np.concatenate([p.hit for p in parts]),
            k=parts[0].k,
        )


class RankingEvaluator:
    """Evaluates a scoring function against a train/test interaction pair.

    Parameters
    ----------
    train, test:
        Interaction datasets sharing id spaces.  Training items are masked
        from rankings; test items are the relevance sets.
    k:
        Cutoff (paper default 20).
    user_batch:
        Number of users scored per model call — bounds the dense score
        matrix to ``user_batch × num_items`` floats.
    score_dtype:
        Dtype of the internal score buffer, ``np.float64`` (default) or
        ``np.float32``.  float32 halves the masking/top-K memory traffic; at
        K=20 the induced ranking is identical unless scores tie within
        float32 resolution.
    """

    def __init__(
        self,
        train: InteractionDataset,
        test: InteractionDataset,
        k: int = 20,
        user_batch: int = 256,
        score_dtype=np.float64,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if user_batch <= 0:
            raise ValueError(f"user_batch must be positive, got {user_batch}")
        if train.num_users != test.num_users or train.num_items != test.num_items:
            raise ValueError("train and test must share id spaces")
        score_dtype = np.dtype(score_dtype)
        if score_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"score_dtype must be float32 or float64, got {score_dtype}")
        self.train = train
        self.test = test
        self.k = k
        self.user_batch = user_batch
        self.score_dtype = score_dtype
        self.eval_users = test.active_users()
        # CSR views over the (already user-sorted) interaction arrays.
        self._train_indptr = train.user_offsets
        self._train_indices = train.item_ids
        self._test_indptr = test.user_offsets
        self._test_degree = test.user_degree()
        # Test membership keys: user-major, item-minor — globally sorted
        # because the dataset arrays are lexsorted by (user, item).
        self._test_keys = test.user_ids * np.int64(test.num_items) + test.item_ids
        # DCG position discounts and the IDCG lookup (index = min(rel, k) - 1).
        self._discounts = 1.0 / np.log2(np.arange(2, k + 2, dtype=np.float64))
        self._idcg = np.cumsum(self._discounts)
        # Reusable score buffer, grown lazily to (user_batch, num_items).
        self._score_buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------ internals
    def _resolve_users(self, users: Optional[np.ndarray]) -> np.ndarray:
        """Default to all test-active users; strictly validate subsets.

        An explicit ``users=`` array must contain in-range users that all
        have test interactions — silently dropping empty-test users would
        make ``num_users`` (and the metric means) lie about the requested
        population.
        """
        if users is None:
            return self.eval_users
        users = np.asarray(users, dtype=np.int64)
        if users.size:
            if users.min() < 0 or users.max() >= self.test.num_users:
                bad = users[(users < 0) | (users >= self.test.num_users)]
                raise ValueError(f"user ids out of range: {np.unique(bad).tolist()}")
            empty = users[self._test_degree[users] == 0]
            if empty.size:
                raise ValueError(
                    "users with no test interactions cannot be evaluated: "
                    f"{np.unique(empty).tolist()}"
                )
        return users

    def _score_buffer(self, rows: int) -> np.ndarray:
        """A reusable (rows, num_items) view of the internal score buffer."""
        n_items = self.train.num_items
        if self._score_buf is None or self._score_buf.shape[0] < rows:
            self._score_buf = np.empty((rows, n_items), dtype=self.score_dtype)
        return self._score_buf[:rows]

    def _mask_train_positives(self, neg_scores: np.ndarray, batch: np.ndarray) -> None:
        """Mask every training positive of ``batch`` in one flat fancy-index.

        ``neg_scores`` holds *negated* scores, so masking writes +inf
        (ranked last).
        """
        indptr = self._train_indptr
        deg = indptr[batch + 1] - indptr[batch]
        total = int(deg.sum())
        if total == 0:
            return
        rows = np.repeat(np.arange(len(batch), dtype=np.int64), deg)
        # Flat positions into the CSR indices array: each user's run starts
        # at indptr[user] and the within-run offset is a global arange minus
        # the run's exclusive cumulative start.
        run_starts = np.zeros(len(batch), dtype=np.int64)
        np.cumsum(deg[:-1], out=run_starts[1:])
        flat = np.repeat(indptr[batch] - run_starts, deg) + np.arange(total, dtype=np.int64)
        neg_scores[rows, self._train_indices[flat]] = np.inf

    def _top_k(self, neg_scores: np.ndarray) -> np.ndarray:
        """Row-wise top-K item ids, best first (stable under ties).

        Operates on negated scores so no ``-scores`` temporary is ever
        materialized: ascending selection over ``neg_scores`` is descending
        selection over the original scores, with identical tie behavior.
        """
        k = self.k
        top = np.argpartition(neg_scores, k - 1, axis=1)[:, :k]
        row_idx = np.arange(neg_scores.shape[0], dtype=np.int64)[:, None]
        order = np.argsort(neg_scores[row_idx, top], axis=1, kind="stable")
        return top[row_idx, order]

    def _accumulate_batch(
        self,
        top: np.ndarray,
        batch: np.ndarray,
        sl: slice,
        recall: np.ndarray,
        ndcg: np.ndarray,
        precision: np.ndarray,
        hit: np.ndarray,
    ) -> None:
        """Fill the per-user metric slices for one ranked batch.

        Shared by the score-function and factor paths, so fused and per-op
        rankings feed the identical metric pipeline.  Hit flags come from one
        ``searchsorted`` of the batch's (user, item) keys against the sorted
        global test keys.
        """
        k = self.k
        n_items = self.train.num_items
        keys = batch[:, None] * np.int64(n_items) + top
        idx = np.searchsorted(self._test_keys, keys.ravel())
        idx = np.minimum(idx, len(self._test_keys) - 1)
        gains = (self._test_keys[idx] == keys.ravel()).astype(np.float64)
        gains = gains.reshape(len(batch), k)
        n_hit = gains.sum(axis=1)
        rel = self._test_degree[batch]
        recall[sl] = n_hit / rel
        precision[sl] = n_hit / k
        hit[sl] = n_hit > 0
        ndcg[sl] = (gains @ self._discounts) / self._idcg[np.minimum(rel, k) - 1]

    # -------------------------------------------------------------- protocol
    def evaluate_per_user(
        self, score_fn, users: Optional[np.ndarray] = None
    ) -> PerUserMetrics:
        """Run the protocol, returning per-user metric vectors.

        Parameters
        ----------
        score_fn:
            Callable ``(user_ids: int64[B]) -> float[B, num_items]``.
        users:
            Subset of users to evaluate; defaults to all test-active users.
            Every explicit user must have at least one test interaction.
        """
        users = self._resolve_users(users)
        if users.size == 0:
            raise ValueError("no users to evaluate")
        k = self.k
        n_items = self.train.num_items
        if k > n_items:
            raise ValueError(f"k={k} exceeds the number of items {n_items}")
        n_users = len(users)
        recall = np.empty(n_users, dtype=np.float64)
        ndcg = np.empty(n_users, dtype=np.float64)
        precision = np.empty(n_users, dtype=np.float64)
        hit = np.empty(n_users, dtype=np.float64)
        for start in range(0, n_users, self.user_batch):
            batch = users[start : start + self.user_batch]
            raw = np.asarray(score_fn(batch))
            if raw.shape != (len(batch), n_items):
                raise ValueError(
                    f"score_fn returned shape {raw.shape}, expected {(len(batch), n_items)}"
                )
            # Fused copy + negate into the reusable buffer: one pass, no
            # per-batch (users × items) allocation.
            neg_scores = self._score_buffer(len(batch))
            np.multiply(raw, -1.0, out=neg_scores, casting="unsafe")
            self._mask_train_positives(neg_scores, batch)
            top = self._top_k(neg_scores)
            sl = slice(start, start + len(batch))
            self._accumulate_batch(top, batch, sl, recall, ndcg, precision, hit)
        return PerUserMetrics(
            users=users, recall=recall, ndcg=ndcg, precision=precision, hit=hit, k=k
        )

    def evaluate(self, score_fn, users: Optional[np.ndarray] = None) -> EvaluationResult:
        """Run the protocol and reduce to metric means (the paper's numbers)."""
        return self.evaluate_per_user(score_fn, users).reduce()

    # --------------------------------------------------------- factor scoring
    def evaluate_factors_per_user(
        self,
        user_vecs: np.ndarray,
        item_vecs: np.ndarray,
        users: Optional[np.ndarray] = None,
    ) -> PerUserMetrics:
        """Protocol over inner-product factors ``scores = user_vecs @ item_vecsᵀ``.

        For models whose scores factor through embedding matrices (CKAT,
        BPR-MF, …) this skips the score-function indirection: per batch the
        fused :func:`repro.kernels.dispatch.masked_topk` writes the negated
        product straight into the reusable score buffer, masks training
        positives and selects the top K in one call — no raw ``(B, N)``
        score matrix or separate copy-negate pass.  Under the ``oracle``
        backend it degrades to :meth:`evaluate_per_user` with an equivalent
        score function, which is the parity reference.
        """
        user_vecs = np.asarray(user_vecs)
        item_vecs = np.asarray(item_vecs)
        n_items = self.train.num_items
        if user_vecs.ndim != 2 or user_vecs.shape[0] != self.train.num_users:
            raise ValueError(
                f"user_vecs must be (num_users, dim), got {user_vecs.shape}"
            )
        if item_vecs.ndim != 2 or item_vecs.shape != (n_items, user_vecs.shape[1]):
            raise ValueError(
                f"item_vecs must be ({n_items}, {user_vecs.shape[1]}), got {item_vecs.shape}"
            )
        if not dispatch.fused_enabled():
            return self.evaluate_per_user(
                lambda batch: user_vecs[batch] @ item_vecs.T, users
            )
        users = self._resolve_users(users)
        if users.size == 0:
            raise ValueError("no users to evaluate")
        k = self.k
        if k > n_items:
            raise ValueError(f"k={k} exceeds the number of items {n_items}")
        n_users = len(users)
        recall = np.empty(n_users, dtype=np.float64)
        ndcg = np.empty(n_users, dtype=np.float64)
        precision = np.empty(n_users, dtype=np.float64)
        hit = np.empty(n_users, dtype=np.float64)
        for start in range(0, n_users, self.user_batch):
            batch = users[start : start + self.user_batch]
            top = dispatch.masked_topk(
                user_vecs[batch],
                item_vecs,
                k,
                self._score_buffer(len(batch)),
                self._train_indptr,
                self._train_indices,
                batch,
            )
            sl = slice(start, start + len(batch))
            self._accumulate_batch(top, batch, sl, recall, ndcg, precision, hit)
        return PerUserMetrics(
            users=users, recall=recall, ndcg=ndcg, precision=precision, hit=hit, k=k
        )

    def evaluate_factors(
        self,
        user_vecs: np.ndarray,
        item_vecs: np.ndarray,
        users: Optional[np.ndarray] = None,
    ) -> EvaluationResult:
        """Factor-path protocol reduced to metric means."""
        return self.evaluate_factors_per_user(user_vecs, item_vecs, users).reduce()

    def evaluate_model(self, model, users: Optional[np.ndarray] = None) -> EvaluationResult:
        """Evaluate a :class:`~repro.models.base.Recommender` the fastest way.

        Models exposing :meth:`~repro.models.base.Recommender.scoring_factors`
        take the factor path (one representation pass for the whole
        evaluation); everything else goes through ``score_users``.
        """
        factors = model.scoring_factors()
        if factors is not None:
            return self.evaluate_factors(*factors, users=users)
        return self.evaluate(model.score_users, users)

    # ------------------------------------------------------- legacy reference
    def evaluate_legacy(
        self, score_fn, users: Optional[np.ndarray] = None
    ) -> EvaluationResult:
        """Pre-vectorization reference path (per-user Python loops).

        Kept as the correctness oracle for the fast path and as the baseline
        of ``benchmarks/test_bench_eval.py``.  Matches :meth:`evaluate` to
        float tolerance on any input the fast path accepts.
        """
        users = self._resolve_users(users)
        if users.size == 0:
            raise ValueError("no users to evaluate")
        k = self.k
        n_items = self.train.num_items
        if k > n_items:
            raise ValueError(f"k={k} exceeds the number of items {n_items}")
        recalls: List[float] = []
        ndcgs: List[float] = []
        precisions: List[float] = []
        hits: List[float] = []
        ideal_discounts = 1.0 / np.log2(np.arange(2, k + 2, dtype=np.float64))
        for start in range(0, len(users), self.user_batch):
            batch = users[start : start + self.user_batch]
            scores = np.array(score_fn(batch), dtype=np.float64, copy=True)
            if scores.shape != (len(batch), n_items):
                raise ValueError(
                    f"score_fn returned shape {scores.shape}, expected {(len(batch), n_items)}"
                )
            for row, user in enumerate(batch):
                scores[row, self.train.items_of_user(int(user))] = -np.inf
            top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
            row_idx = np.arange(len(batch), dtype=np.int64)[:, None]
            order = np.argsort(-scores[row_idx, top], axis=1, kind="stable")
            top = top[row_idx, order]
            for row, user in enumerate(batch):
                relevant = self.test.items_of_user(int(user))
                rel_count = len(relevant)
                if rel_count == 0:
                    continue
                gains = np.isin(top[row], relevant).astype(np.float64)
                n_hit = gains.sum()
                recalls.append(n_hit / rel_count)
                precisions.append(n_hit / k)
                hits.append(1.0 if n_hit > 0 else 0.0)
                dcg = float((gains * ideal_discounts).sum())
                idcg = float(ideal_discounts[: min(rel_count, k)].sum())
                ndcgs.append(dcg / idcg if idcg > 0 else 0.0)
        if not recalls:
            raise ValueError("no evaluable users (every candidate had an empty test set)")
        return EvaluationResult(
            recall=float(np.mean(recalls)),
            ndcg=float(np.mean(ndcgs)),
            precision=float(np.mean(precisions)),
            hit=float(np.mean(hits)),
            k=k,
            num_users=len(recalls),
        )
