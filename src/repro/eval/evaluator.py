"""Vectorized full-ranking evaluator.

For each batch of test users the evaluator asks the model for a dense
(users × items) score matrix, masks the users' training items to −inf, takes
the top K columns with ``argpartition`` (O(N) per row instead of a full
sort), and accumulates recall/ndcg vectorized across the batch.

Only users with at least one test interaction are evaluated (the paper's
protocol: metrics are means over test users).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.interactions import InteractionDataset

__all__ = ["EvaluationResult", "RankingEvaluator"]


@dataclasses.dataclass(frozen=True)
class EvaluationResult:
    """Aggregated ranking metrics over the evaluated users."""

    recall: float
    ndcg: float
    precision: float
    hit: float
    k: int
    num_users: int

    def as_dict(self) -> Dict[str, float]:
        return {
            f"recall@{self.k}": self.recall,
            f"ndcg@{self.k}": self.ndcg,
            f"precision@{self.k}": self.precision,
            f"hit@{self.k}": self.hit,
        }

    def __str__(self) -> str:
        return (
            f"recall@{self.k}={self.recall:.4f} ndcg@{self.k}={self.ndcg:.4f} "
            f"({self.num_users} users)"
        )


class RankingEvaluator:
    """Evaluates a scoring function against a train/test interaction pair.

    Parameters
    ----------
    train, test:
        Interaction datasets sharing id spaces.  Training items are masked
        from rankings; test items are the relevance sets.
    k:
        Cutoff (paper default 20).
    user_batch:
        Number of users scored per model call — bounds the dense score
        matrix to ``user_batch × num_items`` floats.
    """

    def __init__(
        self,
        train: InteractionDataset,
        test: InteractionDataset,
        k: int = 20,
        user_batch: int = 256,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if user_batch <= 0:
            raise ValueError(f"user_batch must be positive, got {user_batch}")
        if train.num_users != test.num_users or train.num_items != test.num_items:
            raise ValueError("train and test must share id spaces")
        self.train = train
        self.test = test
        self.k = k
        self.user_batch = user_batch
        self.eval_users = test.active_users()

    def evaluate(self, score_fn, users: Optional[np.ndarray] = None) -> EvaluationResult:
        """Run the protocol.

        Parameters
        ----------
        score_fn:
            Callable ``(user_ids: int64[B]) -> float64[B, num_items]``.
        users:
            Subset of users to evaluate; defaults to all test-active users.
        """
        users = self.eval_users if users is None else np.asarray(users, dtype=np.int64)
        if users.size == 0:
            raise ValueError("no users to evaluate")
        k = self.k
        n_items = self.train.num_items
        if k > n_items:
            raise ValueError(f"k={k} exceeds the number of items {n_items}")
        recalls, ndcgs, precisions, hits = [], [], [], []
        ideal_discounts = 1.0 / np.log2(np.arange(2, k + 2))
        for start in range(0, len(users), self.user_batch):
            batch = users[start : start + self.user_batch]
            scores = np.array(score_fn(batch), dtype=np.float64, copy=True)
            if scores.shape != (len(batch), n_items):
                raise ValueError(
                    f"score_fn returned shape {scores.shape}, expected {(len(batch), n_items)}"
                )
            # Mask training positives.
            for row, user in enumerate(batch):
                scores[row, self.train.items_of_user(int(user))] = -np.inf
            # Top-K via argpartition then in-block sort.
            top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
            row_idx = np.arange(len(batch))[:, None]
            order = np.argsort(-scores[row_idx, top], axis=1, kind="stable")
            top = top[row_idx, order]
            for row, user in enumerate(batch):
                relevant = self.test.items_of_user(int(user))
                rel_count = len(relevant)
                if rel_count == 0:
                    continue
                gains = np.isin(top[row], relevant).astype(np.float64)
                n_hit = gains.sum()
                recalls.append(n_hit / rel_count)
                precisions.append(n_hit / k)
                hits.append(1.0 if n_hit > 0 else 0.0)
                dcg = float((gains * ideal_discounts).sum())
                idcg = float(ideal_discounts[: min(rel_count, k)].sum())
                ndcgs.append(dcg / idcg if idcg > 0 else 0.0)
        if not recalls:
            raise ValueError("no evaluable users (every candidate had an empty test set)")
        return EvaluationResult(
            recall=float(np.mean(recalls)),
            ndcg=float(np.mean(ndcgs)),
            precision=float(np.mean(precisions)),
            hit=float(np.mean(hits)),
            k=k,
            num_users=len(recalls),
        )
