"""repro — reproduction of "Facilitating Data Discovery for Large-scale
Science Facilities using Knowledge Networks" (Qin, Rodero, Parashar;
IPDPS 2021).

The package implements, from scratch in NumPy:

- the **CKAT** recommendation model (collaborative knowledge-aware graph
  attention network) and seven baselines (BPRMF, FM, NFM, CKE, CFKG,
  RippleNet, KGCN) — :mod:`repro.models`;
- the **collaborative knowledge graph** construction of Section IV —
  :mod:`repro.kg`;
- synthetic **facility simulators** substituting the paper's proprietary
  OOI/GAGE query traces — :mod:`repro.facility`;
- the Section-III **trace analysis** (Figures 3–5) — :mod:`repro.analysis`;
- a small reverse-mode **autodiff engine** powering all models —
  :mod:`repro.autograd`;
- the **experiment harness** regenerating every table and figure of the
  paper's evaluation — :mod:`repro.experiments`;
- **parallel propagation** building blocks (the paper's future-work note)
  — :mod:`repro.parallel`.

Quickstart
----------
>>> from repro import load_dataset, run_single_model
>>> ds = load_dataset("ooi", scale="small")
>>> result = run_single_model("CKAT", ds, epochs=5)
>>> print(result.recall, result.ndcg)  # doctest: +SKIP
"""

from repro.analysis.sanitizer import install_from_env as _install_sanitizer_from_env
from repro.eval import RankingEvaluator
from repro.experiments.datasets import BenchmarkDataset, load_dataset
from repro.experiments.runner import MODEL_NAMES, build_model, run_single_model
from repro.kg import CollaborativeKnowledgeGraph, KnowledgeSources, build_ckg
from repro.models import (
    BPRMF,
    CFKG,
    CKAT,
    CKE,
    FM,
    KGCN,
    NFM,
    CKATConfig,
    Recommender,
    RippleNet,
)

__version__ = "0.1.0"

# Honor REPRO_SANITIZE=1: instrument the autograd engine for NaN/Inf, shape,
# and dtype-upcast detection (see repro.analysis.sanitizer).
_install_sanitizer_from_env()

__all__ = [
    "__version__",
    "load_dataset",
    "BenchmarkDataset",
    "MODEL_NAMES",
    "build_model",
    "run_single_model",
    "RankingEvaluator",
    "CollaborativeKnowledgeGraph",
    "KnowledgeSources",
    "build_ckg",
    "Recommender",
    "CKAT",
    "CKATConfig",
    "BPRMF",
    "FM",
    "NFM",
    "CKE",
    "CFKG",
    "RippleNet",
    "KGCN",
]
