"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``analyze <ooi|gage>``      — Section-III trace statistics;
- ``table <1|2|3|4|5>``       — regenerate a paper table;
- ``figure <3|4|5>``          — regenerate a paper figure;
- ``train <model> <dataset>`` — train one model, report metrics, optionally
  save a checkpoint (``--save model.npz``);
- ``recommend <dataset> <user>`` — train CKAT and print top-K items;
- ``serve [dataset]``           — freeze a model into a score index and
  serve recommendations over HTTP with request micro-batching and fold-in
  (``--from-index DIGEST`` restarts from the artifact store alone);
- ``report <run.jsonl> ...``   — summarize JSONL run telemetry logs;
- ``cache <ls|gc|path>``       — inspect / clear the content-addressed
  artifact store (see ``--cache-dir``);
- ``lint [paths ...]``         — run reprolint, the project-aware static
  analyzer (exit 0 clean / 1 findings / 2 internal error);
- ``sanitize-run <model> <dataset>`` — train under the runtime numeric
  sanitizer (NaN/Inf, gradient shape, dtype-upcast detection);
- ``profile <dataset>``        — op-timer profile of CKAT training epochs,
  per-op wall-clock share under the fused kernels vs the per-op oracle
  chains (``--backend`` to pin one backend).

Common options: ``--scale small|full``, ``--seed N``, ``--epochs N``, and
``--cache-dir DIR`` (artifact store shared by every dataset-loading command;
defaults to ``$REPRO_CACHE_DIR``, caching disabled when neither is set).
Tables II–V accept ``--log-dir`` (JSONL telemetry per cell),
``--checkpoint-dir`` (resumable full-state checkpoints), and ``--resume``.
The CLI is a thin veneer over :mod:`repro.experiments`; anything it prints
can be produced programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import compute_distributions, pair_similarity_study, query_concentration
from repro.experiments import figures, load_dataset, run_single_model, tables
from repro.experiments.runner import MODEL_NAMES
from repro.store import ArtifactStore, resolve_cache_dir

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Facilitating Data Discovery for Large-scale "
        "Science Facilities using Knowledge Networks' (IPDPS 2021)",
    )
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed artifact store shared by dataset-loading "
        "commands and `repro cache`; defaults to $REPRO_CACHE_DIR "
        "(no caching when neither is set)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="Section-III trace statistics")
    p_analyze.add_argument("dataset", choices=("ooi", "gage"))

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p_table.add_argument("--epochs", type=int, default=None)
    p_table.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan independent table cells across this many worker processes "
        "(Tables II–V; results are identical to the serial run)",
    )
    p_table.add_argument(
        "--log-dir",
        type=str,
        default=None,
        help="write one JSONL telemetry log per table cell into this directory "
        "(Tables II–V; summarize with `repro report <file>`)",
    )
    p_table.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help="write resumable full-state training checkpoints per cell into "
        "this directory (Tables II–V)",
    )
    p_table.add_argument(
        "--resume",
        action="store_true",
        help="resume each cell from its checkpoint in --checkpoint-dir when one "
        "exists; resumed runs are bit-identical to uninterrupted ones",
    )

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("number", type=int, choices=(3, 4, 5))

    p_train = sub.add_parser("train", help="train one model and evaluate")
    p_train.add_argument("model", choices=MODEL_NAMES)
    p_train.add_argument("dataset", choices=("ooi", "gage"))
    p_train.add_argument("--epochs", type=int, default=None)
    p_train.add_argument("--save", type=str, default=None, help="checkpoint path (.npz)")
    p_train.add_argument(
        "--workers",
        type=int,
        default=0,
        help="data-parallel training workers (0 = serial engine); sharded "
        "checkpoints only resume under the same worker count",
    )

    p_rec = sub.add_parser("recommend", help="train CKAT and print top-K items")
    p_rec.add_argument("dataset", choices=("ooi", "gage"))
    p_rec.add_argument("user", type=int)
    p_rec.add_argument("--k", type=int, default=10)
    p_rec.add_argument("--epochs", type=int, default=15)

    p_serve = sub.add_parser(
        "serve", help="serve recommendations from a frozen score index over HTTP"
    )
    p_serve.add_argument(
        "dataset",
        choices=("ooi", "gage"),
        nargs="?",
        default=None,
        help="dataset to train/freeze from (omit with --from-index)",
    )
    p_serve.add_argument("--model", choices=MODEL_NAMES, default="BPRMF")
    p_serve.add_argument("--epochs", type=int, default=None)
    p_serve.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="load model parameters from this .npz instead of training",
    )
    p_serve.add_argument(
        "--from-index",
        type=str,
        default=None,
        metavar="DIGEST",
        help="reload a frozen score index from the artifact store by digest "
        "prefix (no dataset or training needed; requires --cache-dir or "
        "$REPRO_CACHE_DIR)",
    )
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8377)
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="micro-batch cap: concurrent /recommend requests coalesce into "
        "one fused top-k call up to this many",
    )
    p_serve.add_argument(
        "--log",
        type=str,
        default=None,
        help="append JSONL request/batch telemetry to this file "
        "(summarize with `repro report`)",
    )

    p_report = sub.add_parser("report", help="summarize a JSONL run telemetry log")
    p_report.add_argument("log", type=str, nargs="+", help="path(s) to .jsonl run logs")

    p_cache = sub.add_parser("cache", help="inspect / clear the artifact store")
    p_cache.add_argument(
        "action",
        choices=("ls", "gc", "path"),
        help="ls: list verified artifacts; gc: remove artifacts and stray "
        "tmp dirs; path: print the resolved store root",
    )
    p_cache.add_argument(
        "--kind",
        action="append",
        default=None,
        help="restrict ls/gc to an artifact kind (trace, split, ckg, graph); "
        "repeatable",
    )

    p_lint = sub.add_parser("lint", help="run reprolint (project-aware static analysis)")
    p_lint.add_argument(
        "paths", type=str, nargs="*", default=["src"], help="files or directories to lint"
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument(
        "--select",
        type=str,
        default=None,
        help="comma-separated rule codes to run (e.g. RPL001,RPL013); default all",
    )
    p_lint.add_argument(
        "--graph",
        action="store_true",
        help="also run the interprocedural graph rules (RPL011-RPL014): "
        "RNG taint, dtype mixing, async/lock discipline, funnel escape",
    )
    p_lint.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="PATH",
        help="ratchet file: findings recorded there are tolerated, only new "
        "ones fail the run (stale entries are reported to stderr)",
    )
    p_lint.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        metavar="PATH",
        help="write the current findings to PATH as the new baseline and exit 0",
    )
    p_lint.add_argument(
        "--cache",
        type=str,
        default=".reprolint-cache.json",
        metavar="PATH",
        help="graph summary cache (content-hash keyed; unchanged files skip "
        "parsing on warm runs)",
    )
    p_lint.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the graph summary cache (force a cold run)",
    )
    p_lint.add_argument(
        "--changed-since",
        type=str,
        default=None,
        metavar="REF",
        help="report only findings in files changed vs git REF (plus "
        "untracked files); graph analysis still sees the whole tree",
    )

    p_san = sub.add_parser(
        "sanitize-run", help="train one model under the runtime numeric sanitizer"
    )
    p_san.add_argument("model", choices=MODEL_NAMES)
    p_san.add_argument("dataset", choices=("ooi", "gage"))
    p_san.add_argument("--epochs", type=int, default=None)

    p_prof = sub.add_parser(
        "profile", help="op-timer profile of CKAT training (fused vs oracle)"
    )
    p_prof.add_argument("dataset", choices=("ooi", "gage"))
    p_prof.add_argument("--epochs", type=int, default=1)
    p_prof.add_argument(
        "--attention-mode",
        choices=("epoch", "batch"),
        default="batch",
        help="'batch' recomputes differentiable attention per step (the "
        "fusion target, default); 'epoch' profiles the frozen-attention "
        "fast path",
    )
    p_prof.add_argument(
        "--backend",
        choices=("auto", "numpy", "numba", "oracle"),
        default=None,
        help="profile only this kernel backend instead of oracle + fused",
    )
    p_prof.add_argument(
        "--top", type=int, default=12, help="rows of the per-op table to print"
    )
    return parser


def _cmd_analyze(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed, cache_dir=args.cache_dir)
    print(ds.describe())
    summary = compute_distributions(ds.trace, ds.catalog).summary()
    print("per-user distributions:", {k: round(v, 3) for k, v in summary.items()})
    conc = query_concentration(ds.trace, ds.catalog)
    print("query concentration:", {k: round(v, 3) for k, v in conc.items()})
    pairs = pair_similarity_study(ds.trace, ds.catalog, ds.population, num_pairs=2000, seed=0)
    print("same-city pair study:", {k: round(v, 3) for k, v in pairs.as_dict().items()})
    return 0


def _cmd_table(args) -> int:
    datasets = [
        load_dataset("ooi", scale=args.scale, seed=args.seed, cache_dir=args.cache_dir),
        load_dataset("gage", scale=args.scale, seed=args.seed, cache_dir=args.cache_dir),
    ]
    kw = dict(
        epochs=args.epochs,
        seed=args.seed,
        num_workers=args.workers,
        log_dir=args.log_dir,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    fn = {
        1: lambda: tables.table1(*datasets),
        2: lambda: tables.table2(datasets, **kw),
        3: lambda: tables.table3(datasets, **kw),
        4: lambda: tables.table4(datasets, **kw),
        5: lambda: tables.table5(datasets, **kw),
    }[args.number]
    _, text = fn()
    print(text)
    return 0


def _cmd_figure(args) -> int:
    datasets = [
        load_dataset("ooi", scale=args.scale, seed=args.seed, cache_dir=args.cache_dir),
        load_dataset("gage", scale=args.scale, seed=args.seed, cache_dir=args.cache_dir),
    ]
    if args.number == 3:
        _, text = figures.figure3(datasets)
    elif args.number == 4:
        _, text = figures.figure4(datasets[0], seed=args.seed)
    else:
        _, text = figures.figure5(datasets, seed=args.seed)
    print(text)
    return 0


def _cmd_train(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed, cache_dir=args.cache_dir)
    print(ds.describe())
    result = run_single_model(
        args.model,
        ds,
        epochs=args.epochs,
        seed=args.seed,
        best_epoch_selection=args.epochs is None or args.epochs >= 10,
        train_workers=args.workers,
    )
    print(
        f"{result.model} on {result.dataset}: recall@20={result.recall:.4f} "
        f"ndcg@20={result.ndcg:.4f} ({result.train_seconds:.1f}s train)"
    )
    if args.save:
        # Re-train once more to hold a model object for saving would waste
        # work; instead run_single_model would need to return the model.
        # Keep the CLI simple: build + fit + save directly.
        from repro.experiments.runner import build_model, default_fit_config
        from repro.io import save_parameters

        ckg = ds.build_ckg()
        model = build_model(args.model, ds, ckg, seed=args.seed)
        model.fit(ds.split.train, default_fit_config(args.model, epochs=args.epochs, seed=args.seed))
        written = save_parameters(args.save, model)
        print(f"checkpoint written to {written}")
    return 0


def _cmd_report(args) -> int:
    from repro.utils.telemetry import render_run_report

    for i, path in enumerate(args.log):
        if i:
            print()
        print(render_run_report(path))
    return 0


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(value)} B"


def _cmd_cache(args) -> int:
    root = resolve_cache_dir(args.cache_dir)
    if args.action == "path":
        print(root if root is not None else "(cache disabled: no --cache-dir / $REPRO_CACHE_DIR)")
        return 0
    if root is None:
        print("error: no cache configured (use --cache-dir or $REPRO_CACHE_DIR)", file=sys.stderr)
        return 2
    store = ArtifactStore(root)
    kinds = args.kind if args.kind else None
    if args.action == "ls":
        rows = store.ls(kinds)
        if not rows:
            print(f"{root}: empty")
            return 0
        total = 0
        for row in rows:
            total += row.nbytes
            print(f"{row.kind:8s} {row.digest[:16]}  {_format_bytes(row.nbytes):>10s}  {row.path.name}")
        print(f"{len(rows)} artifact(s), {_format_bytes(total)} in {root}")
        return 0
    removed, reclaimed = store.gc(kinds)
    print(f"removed {removed} artifact(s), reclaimed {_format_bytes(reclaimed)} from {root}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.models import CKAT, CKATConfig
    from repro.models.base import FitConfig

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if not 0 <= args.user < ds.split.train.num_users:
        print(f"error: user {args.user} out of range [0, {ds.split.train.num_users})", file=sys.stderr)
        return 2
    ckg = ds.build_ckg()
    cfg = (
        CKATConfig()
        if args.scale == "full"
        else CKATConfig(dim=32, relation_dim=32, layer_dims=(32, 16))
    )
    model = CKAT(ds.split.train.num_users, ds.split.train.num_items, ckg, cfg, seed=args.seed)
    model.fit(ds.split.train, FitConfig(epochs=args.epochs, lr=0.01, seed=args.seed))
    seen = ds.split.train.items_of_user(args.user)
    recs = model.recommend(args.user, k=args.k, exclude=seen)
    catalog = ds.catalog
    from repro.kg.paths import explain_recommendation

    print(f"top-{args.k} data objects for user {args.user}:")
    for rank, item in enumerate(recs, start=1):
        obj = catalog.objects[int(item)]
        dtype = catalog.data_types[obj.dtype_id]
        site = catalog.sites[catalog.object_site[int(item)]]
        print(f"{rank:2d}. {dtype.name} @ {site.name} ({obj.delivery_method})")
        why = explain_recommendation(ckg, args.user, int(item), max_length=3, max_paths=1)
        if why:
            print(f"     because: {why[0]}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serving import RecommendServer, RecommendService, ScoreIndex
    from repro.utils.telemetry import RunLogger

    root = resolve_cache_dir(args.cache_dir)
    if args.from_index is not None:
        if root is None:
            print(
                "error: --from-index needs an artifact store "
                "(use --cache-dir or $REPRO_CACHE_DIR)",
                file=sys.stderr,
            )
            return 2
        index = ScoreIndex.by_digest(ArtifactStore(root), args.from_index)
        if index is None:
            print(f"error: no score_index matching digest {args.from_index!r} in {root}",
                  file=sys.stderr)
            return 2
        print(f"loaded frozen index from store: {index.meta}")
    else:
        if args.dataset is None:
            print("error: pass a dataset to freeze from, or --from-index DIGEST",
                  file=sys.stderr)
            return 2
        from repro.experiments.runner import build_model, default_fit_config

        ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                          cache_dir=args.cache_dir)
        ckg = ds.build_ckg()
        model = build_model(args.model, ds, ckg, seed=args.seed)
        if args.checkpoint is not None:
            from repro.io import load_parameters

            load_parameters(args.checkpoint, model)
            # Rebuild derived state (CKAT's frozen attention) from the
            # loaded parameters before exporting scoring factors.
            model.on_epoch_end()
            print(f"loaded {args.model} parameters from {args.checkpoint}")
        else:
            cfg = default_fit_config(args.model, epochs=args.epochs, seed=args.seed)
            print(f"training {args.model} on {args.dataset} ({cfg.epochs} epochs)...")
            model.fit(ds.split.train, cfg)
        index = ScoreIndex.from_model(
            model,
            ds.split.train,
            meta={"dataset": args.dataset, "scale": args.scale, "seed": args.seed},
        )
        if root is not None:
            config = {
                "model": args.model,
                "dataset": args.dataset,
                "scale": args.scale,
                "seed": args.seed,
                "epochs": args.epochs,
                "checkpoint": args.checkpoint,
            }
            artifact = index.save(ArtifactStore(root), config)
            print(
                f"frozen index stored: digest {artifact.digest[:16]} "
                f"(restart with `repro serve --from-index {artifact.digest[:16]}`)"
            )
    logger = RunLogger(args.log, run_id="serve") if args.log else None
    service = RecommendService(index)
    server = RecommendServer(
        service, host=args.host, port=args.port, max_batch=args.max_batch, logger=logger
    )
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if logger is not None:
            logger.close()
    return 0


def _changed_files(ref: str) -> set:
    """Repo-relative paths changed vs ``ref`` plus untracked files."""
    import subprocess

    diff = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return {
        line.strip().replace("\\", "/")
        for line in (diff + untracked).splitlines()
        if line.strip()
    }


def _cmd_lint(args) -> int:
    from repro.analysis.lint import (
        EXIT_INTERNAL_ERROR,
        LintConfig,
        render_json,
        render_text,
        run_lint,
    )

    try:
        select = None
        if args.select is not None:
            select = frozenset(
                c.strip().upper() for c in args.select.split(",") if c.strip()
            )
        lex_select = select
        graph_select = None
        if select is not None and args.graph:
            # One --select serves both engines: each takes its own codes.
            from repro.analysis.lint.graph import graph_codes

            lex_select = frozenset(select - graph_codes())
            graph_select = frozenset(select & graph_codes())
        report = run_lint(args.paths, config=LintConfig(select=lex_select))
        findings = list(report.findings)
        files_checked = report.files_checked
        if args.graph:
            from repro.analysis.lint.graph import GraphConfig, run_graph_lint

            greport = run_graph_lint(
                args.paths,
                config=GraphConfig(select=graph_select),
                cache_path=None if args.no_cache else args.cache,
            )
            findings.extend(greport.findings)
        if args.changed_since is not None:
            changed = _changed_files(args.changed_since)
            findings = [f for f in findings if f.path in changed]
        findings = sorted(set(findings))
    except Exception as exc:  # missing paths, unknown codes, engine bugs
        print(f"reprolint: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR

    if args.write_baseline:
        from repro.analysis.lint.graph import write_baseline

        write_baseline(args.write_baseline, findings)
        print(
            f"reprolint: wrote baseline with {len(findings)} entries "
            f"to {args.write_baseline}"
        )
        return 0
    stale = []
    if args.baseline:
        from repro.analysis.lint.graph import apply_baseline, load_baseline

        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"reprolint: internal error: {exc}", file=sys.stderr)
            return EXIT_INTERNAL_ERROR
        findings, _matched, stale = apply_baseline(findings, entries)
    if args.format == "json":
        print(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    for entry in stale:
        print(
            "reprolint: baseline entry no longer matches (fixed?): "
            f"{entry['path']}:{entry['line']} {entry['code']}",
            file=sys.stderr,
        )
    return 1 if findings else 0


def _cmd_sanitize_run(args) -> int:
    from repro.analysis.sanitizer import SanitizerError, sanitized

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(ds.describe())
    try:
        with sanitized():
            result = run_single_model(
                args.model, ds, epochs=args.epochs, seed=args.seed, best_epoch_selection=False
            )
    except SanitizerError as exc:
        print(f"sanitizer tripped ({exc.kind}) in '{exc.op}': {exc}", file=sys.stderr)
        return 1
    print(
        f"{result.model} on {result.dataset}: recall@20={result.recall:.4f} "
        f"ndcg@20={result.ndcg:.4f} ({result.train_seconds:.1f}s train)"
    )
    print("sanitizer: clean (no NaN/Inf, shape, or dtype-upcast violations)")
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis.profiler import profiled
    from repro.experiments.runner import build_model, default_fit_config
    from repro.kernels import dispatch
    from repro.models.ckat import CKATConfig

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed, cache_dir=args.cache_dir)
    print(ds.describe())
    ckg = ds.build_ckg()
    graph = ds.prepared_graph()
    ckat_cfg = CKATConfig(attention_mode=args.attention_mode)
    if args.backend is not None:
        backends = [args.backend if args.backend != "auto" else dispatch.get_backend()]
    else:
        # Oracle first, fused second: before/after in one run.
        backends = ["oracle", dispatch.get_backend()]
    walls = {}
    for backend in backends:
        with dispatch.kernel_backend(backend):
            model = build_model(
                "CKAT", ds, ckg, seed=args.seed, ckat_config=ckat_cfg, graph=graph
            )
            cfg = default_fit_config("CKAT", epochs=args.epochs, seed=args.seed)
            with profiled() as report:
                model.fit(ds.split.train, cfg)
        walls[backend] = report.wall_seconds
        print(
            f"\n=== backend={backend} attention_mode={args.attention_mode} "
            f"epochs={args.epochs} ==="
        )
        print(report.table(top=args.top))
    if len(walls) == 2:
        oracle_s, fused_s = walls[backends[0]], walls[backends[1]]
        print(
            f"\nfused ({backends[1]}) vs oracle: {oracle_s:.3f}s -> {fused_s:.3f}s "
            f"({oracle_s / fused_s:.2f}x)"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    handler = {
        "analyze": _cmd_analyze,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "train": _cmd_train,
        "recommend": _cmd_recommend,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "cache": _cmd_cache,
        "lint": _cmd_lint,
        "sanitize-run": _cmd_sanitize_run,
        "profile": _cmd_profile,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
