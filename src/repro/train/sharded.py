"""Data-parallel training over partitioned embedding tables.

:class:`ShardedExecutor` runs the engine's epoch as a sequence of
*shard-synchronous rounds*.  The sampler's contiguous user shards are
assigned to workers in contiguous blocks (so each worker owns one contiguous
user-row range); per round, every worker draws the next batch from each of
its live shards, backpropagates locally, and the resulting sparse row
gradients are reconciled deterministically:

- **Row-partitioned parameters** (the per-user tables a model declares via
  ``row_partitioned_parameters``): every gradient row belongs to exactly one
  shard, hence one worker.  The owning worker applies lazy Adam locally
  through a slice-view parameter whose ``step_count`` is synced to the
  global step, so the arithmetic is bit-identical to a master-side update —
  no row ever has two writers.
- **Shared parameters** (item/entity/relation tables): each worker coalesces
  its own gradient, the master merges worker gradients in ascending rank
  order via :meth:`SparseRowGrad.merge_`, coalesces once, and applies a
  single Adam step.  The two-level reduction (within-worker, then
  across-workers in rank order) is deterministic for a fixed worker count;
  across *different* worker counts the grouping of the summation changes,
  which reassociates floating-point addition — that is exactly why
  cross-worker-count parity is tolerance-bounded rather than bit-exact
  (DESIGN §14).

Process model: ``parallel=True`` forks long-lived workers that inherit the
parameter tables as mmap'd shared segments (:class:`repro.store.SegmentArena`)
plus preallocated gradient slabs; rounds are coordinated with semaphores
(crash-detecting timeouts — a dead or failed worker aborts the epoch
*before* the in-flight round is applied, so no gradient batch is ever
double- or partially applied to shared state; recovery is resume-from-
checkpoint).  ``parallel=False`` runs the identical two-level arithmetic
in-process — the reference used by the gradient-agreement harness, parity
tests, and single-core machines; fork and inline modes are bit-identical
for the same worker count.

Batch schedules depend only on ``(seed, epoch, shard)`` — never on the
worker count or which process draws them — so runs with different
``--workers`` consume identical batches and differ only by summation
reassociation.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Parameter, no_grad
from repro.autograd.optim import Adam, assemble_row_sharded_state
from repro.autograd.sparse import SparseRowGrad
from repro.parallel.executor import chunk_indices
from repro.store import SegmentArena
from repro.train.engine import FitConfig, StepExecutor, make_step_fn
from repro.utils.rng import ensure_rng

__all__ = ["ShardedExecutor"]

#: Safety factor for gradient-slab sizing: no supported model gathers more
#: than this many rows of one parameter per training example.
_ROWS_PER_EXAMPLE_BOUND = 6

#: Seconds between liveness checks while waiting on round semaphores.
_POLL_SECONDS = 0.25


def shard_stream_rng(seed: int, epoch: int, shard: int) -> np.random.Generator:
    """The deterministic RNG for one (epoch, shard) batch stream.

    Keyed only by seed/epoch/shard — any process that owns the shard
    produces identical batches, which is what makes the schedule invariant
    under the worker count.
    """
    return ensure_rng(
        np.random.SeedSequence(entropy=int(seed), spawn_key=(int(epoch), int(shard)))
    )


class _RankState:
    """One worker's compute state: owned shards, slice params, local Adam.

    Used identically by fork-mode children (each inherits its own instance)
    and by inline mode (the master iterates the instances in rank order).
    """

    def __init__(
        self,
        rank: int,
        model,
        sampler,
        config: FitConfig,
        shards: Sequence[int],
        partitioned: Sequence[int],
    ):
        self.rank = rank
        self.model = model
        self.sampler = sampler
        self.config = config
        self.shards = list(shards)
        self.partitioned = list(partitioned)
        self.params = model.parameters()
        if self.shards and self.partitioned:
            self.row_lo = sampler.shard_users(self.shards[0])[0]
            self.row_hi = sampler.shard_users(self.shards[-1])[1]
        else:
            self.row_lo = self.row_hi = 0
        self.local_params: List[Parameter] = []
        for i in self.partitioned:
            base = self.params[i]
            view = base.data[self.row_lo : self.row_hi]
            self.local_params.append(
                Parameter(view, name=f"{base.name or f'param{i}'}@rank{rank}")
            )
        self.local_adam: Optional[Adam] = (
            Adam(self.local_params, lr=config.lr)
            if self.local_params and self.row_hi > self.row_lo
            else None
        )
        self._streams: Dict[int, tuple] = {}

    # ------------------------------------------------------------- epoch API
    def start_epoch(self, epoch: int) -> None:
        self._streams = {}
        for s in self.shards:
            rng = shard_stream_rng(self.config.seed, epoch, s)
            gen = self.sampler.shard_epoch_batches(s, self.config.batch_size, rng)
            self._streams[s] = (gen, rng)

    def compute_round(self, t: int, apply_local: bool = True):
        """Run one round; returns ``(loss_sum, n_batches, grads_by_index)``.

        ``t`` is the global optimizer step this round becomes.  Gradients
        for row-partitioned parameters are applied locally (their rows are
        exclusively owned); shared-parameter gradients are coalesced and
        returned for the master's rank-ordered merge.  With
        ``apply_local=False`` (the gradient-agreement harness) partitioned
        grads are returned instead of applied.
        """
        for p in self.params:
            p.grad = None
        loss_sum, n_batches = 0.0, 0
        for s in self.shards:
            gen, rng = self._streams[s]
            batch = next(gen, None)
            if batch is None:
                continue
            a, b, c = batch
            loss = self.model.batch_loss(a, b, c, rng)
            loss.backward()
            loss_sum += float(loss.item())
            n_batches += 1
        grads: Dict[int, object] = {}
        partitioned = set(self.partitioned)
        for i, lp in zip(self.partitioned, self.local_params):
            base = self.params[i]
            g = base.grad
            base.grad = None
            lp.grad = None
            if g is None:
                continue
            if not apply_local:
                grads[i] = g.coalesce() if isinstance(g, SparseRowGrad) else g
                continue
            if isinstance(g, SparseRowGrad):
                g = g.coalesce()
                idx = g.indices
                if idx.size and (idx[0] < self.row_lo or idx[-1] >= self.row_hi):
                    raise RuntimeError(
                        f"rank {self.rank} received gradient rows outside its owned "
                        f"range [{self.row_lo}, {self.row_hi}) for parameter {i} — "
                        "row-partitioned parameters must be indexed by the sampler's "
                        "shard users only"
                    )
                lp.grad = SparseRowGrad(
                    lp.data.shape, idx - self.row_lo, g.values, coalesced=True
                )
            else:
                lp.grad = np.asarray(g)[self.row_lo : self.row_hi]
        if apply_local and self.local_adam is not None:
            # Sync to the global step so lazy-Adam decay exponents match a
            # master-side update exactly, even across rounds this worker
            # contributed nothing to.
            self.local_adam.step_count = t - 1
            self.local_adam.step()
        for i, p in enumerate(self.params):
            if i in partitioned:
                continue
            g = p.grad
            p.grad = None
            if g is None:
                continue
            grads[i] = g.coalesce() if isinstance(g, SparseRowGrad) else g
        return loss_sum, n_batches, grads

    # -------------------------------------------------- optimizer state I/O
    def collect_shard_state(self) -> List[Tuple[int, int, int, dict]]:
        """Per-row-shard Adam views: ``(param_index, lo, hi, view)`` tuples."""
        out: List[Tuple[int, int, int, dict]] = []
        if self.local_adam is None:
            return out
        for i, lp in zip(self.partitioned, self.local_params):
            out.append((i, self.row_lo, self.row_hi, self.local_adam.export_row_shard(lp)))
        return out

    def install_shard_state(self, views: Dict[int, dict], step_count: int) -> None:
        """Install this rank's slices of checkpointed optimizer state."""
        if self.local_adam is None:
            return
        for i, lp in zip(self.partitioned, self.local_params):
            view = views.get(i)
            if view is None:
                raise ValueError(
                    f"checkpoint optimizer state is missing rows "
                    f"[{self.row_lo}, {self.row_hi}) of parameter {i}"
                )
            self.local_adam.install_row_shard(lp, view)
        self.local_adam.step_count = int(step_count)


class ShardedExecutor(StepExecutor):
    """Data-parallel :class:`StepExecutor` over partitioned embedding tables.

    Parameters
    ----------
    num_workers:
        Worker (rank) count.  Shards are assigned to ranks in contiguous
        blocks via :func:`repro.parallel.executor.chunk_indices`.
    users_per_shard:
        Shard granularity handed to the default
        :class:`~repro.data.sampling.ShardedBPRSampler`; ``None`` sizes
        shards so each worker owns two.  Ignored when ``fit`` receives an
        explicit sampler (the sampler's own layout wins).
    parallel:
        ``True`` forks worker processes over mmap'd shared segments;
        ``False`` runs the identical round arithmetic in-process
        (bit-identical results, no speedup — the reference mode).
    barrier_timeout:
        Seconds a round waits for worker results before declaring the epoch
        dead (liveness is checked every fraction of a second regardless, so
        a SIGKILLed worker is detected fast; the timeout bounds pathological
        stalls).

    Requirements: the model's ``batch_loss`` must be deterministic given the
    batch and RNG, with no private generators (``extra_rng_state() is None``)
    — auxiliary phases still run serially on the master via the engine's
    step funnel, so CKE-style alternating schedules work unchanged.
    """

    kind = "sharded"

    def __init__(
        self,
        num_workers: int,
        users_per_shard: Optional[int] = None,
        *,
        parallel: bool = True,
        barrier_timeout: float = 120.0,
        _fail_at: Optional[Tuple[int, int]] = None,
        _max_rounds: Optional[int] = None,
    ):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if users_per_shard is not None and users_per_shard <= 0:
            raise ValueError(f"users_per_shard must be positive, got {users_per_shard}")
        self.num_workers = int(num_workers)
        self.users_per_shard = users_per_shard
        self.parallel = bool(parallel)
        self.barrier_timeout = float(barrier_timeout)
        self._fail_at = _fail_at  # test hook: (rank, round) raises in-worker
        self._max_rounds = _max_rounds  # test hook: truncate every epoch
        self._bound = False
        self._closed = False
        self._states: List[_RankState] = []
        self._events: List[dict] = []
        self._arena: Optional[SegmentArena] = None
        self._originals: Optional[List[np.ndarray]] = None
        self._procs: List = []
        self._pipes: List = []
        self._fingerprint: Optional[dict] = None

    # -------------------------------------------------------------- binding
    def default_sampler(self, train):
        from repro.data.sampling import ShardedBPRSampler  # deferred: layering

        ups = self.users_per_shard
        if ups is None:
            ups = max(1, -(-train.num_users // (2 * self.num_workers)))
        return ShardedBPRSampler(train, users_per_shard=ups)

    def fingerprint(self) -> dict:
        if self._fingerprint is None:
            raise RuntimeError("ShardedExecutor.fingerprint() requires bind() first")
        return dict(self._fingerprint)

    def bind(self, model, train, config: FitConfig, sampler, optimizer) -> None:
        if self._bound:
            raise RuntimeError("ShardedExecutor instances bind to exactly one fit()")
        for attr in ("num_shards", "shard_num_batches", "shard_epoch_batches"):
            if not hasattr(sampler, attr):
                raise ValueError(
                    f"ShardedExecutor needs a shard-addressable sampler exposing "
                    f"{attr!r} (e.g. data.ShardedBPRSampler); got {type(sampler).__name__}"
                )
        if model.extra_rng_state() is not None:
            raise NotImplementedError(
                f"{type(model).__name__} owns private RNG state (dropout generators); "
                "its batch loss is not replicable across worker processes — train it "
                "with the serial executor"
            )
        if not isinstance(optimizer, Adam):
            raise NotImplementedError(
                "ShardedExecutor implements the lazy-Adam reconciliation only; got "
                f"{type(optimizer).__name__}"
            )
        self.model = model
        self.config = config
        self.sampler = sampler
        self.params = model.parameters()
        hook = getattr(model, "row_partitioned_parameters", None)
        part_params = list(hook()) if hook is not None else []
        index_of = {id(p): i for i, p in enumerate(self.params)}
        self.partitioned = sorted(index_of[id(p)] for p in part_params)
        if self.partitioned and not hasattr(sampler, "shard_users"):
            raise ValueError(
                "row-partitioned parameters need a sampler that maps shards to row "
                "ranges (shard_users); got " + type(sampler).__name__
            )
        num_rows = sampler.shard_users(sampler.num_shards - 1)[1] if self.partitioned else None
        for i in self.partitioned:
            p = self.params[i]
            if p.data.shape[0] != num_rows:
                raise ValueError(
                    f"row-partitioned parameter {i} has {p.data.shape[0]} rows but the "
                    f"sampler's shards cover {num_rows}"
                )
        num_shards = sampler.num_shards
        chunks = chunk_indices(num_shards, self.num_workers)
        assignments: List[List[int]] = [list(c) for c in chunks]
        while len(assignments) < self.num_workers:
            assignments.append([])
        rows_per_shard = getattr(sampler, "users_per_shard", None) or getattr(
            sampler, "rows_per_shard", None
        )
        self._fingerprint = {
            "kind": self.kind,
            "workers": self.num_workers,
            "num_shards": int(num_shards),
            "rows_per_shard": int(rows_per_shard) if rows_per_shard else None,
        }
        self._shared = [i for i in range(len(self.params)) if i not in set(self.partitioned)]
        if self.parallel:
            self._setup_fork(assignments)
        else:
            self._states = [
                _RankState(w, model, sampler, config, shards, self.partitioned)
                for w, shards in enumerate(assignments)
            ]
        self._bound = True

    def _setup_fork(self, assignments: List[List[int]]) -> None:
        ctx = multiprocessing.get_context("fork")
        self._arena = SegmentArena()
        # Swap parameter buffers into shared segments *before* building the
        # rank states (their slice views must alias the segments) and before
        # forking (children inherit the mappings).
        self._originals = [p.data for p in self.params]
        with no_grad():
            for i, p in enumerate(self.params):
                p.data = self._arena.create(f"param.{i}", p.data)
        self._states = [
            _RankState(w, self.model, self.sampler, self.config, shards, self.partitioned)
            for w, shards in enumerate(assignments)
        ]
        W = self.num_workers
        self._count_slab = self._arena.create_empty(
            "grad.counts", (W, max(1, len(self._shared))), np.int64
        )
        self._loss_slab = self._arena.create_empty("loss", (W, 2), np.float64)
        self._idx_slabs: List[List[Optional[np.ndarray]]] = []
        self._val_slabs: List[List[Optional[np.ndarray]]] = []
        batch = self.config.batch_size
        for w in range(W):
            per_round = max(1, len(assignments[w]))
            idx_row: List[Optional[np.ndarray]] = []
            val_row: List[Optional[np.ndarray]] = []
            for j, i in enumerate(self._shared):
                p = self.params[i]
                cap = int(min(p.data.shape[0], _ROWS_PER_EXAMPLE_BOUND * batch * per_round))
                idx_row.append(self._arena.create_empty(f"grad.idx.{w}.{j}", (cap,), np.int64))
                val_row.append(
                    self._arena.create_empty(
                        f"grad.val.{w}.{j}", (cap,) + p.data.shape[1:], p.data.dtype
                    )
                )
            self._idx_slabs.append(idx_row)
            self._val_slabs.append(val_row)
        self._done = ctx.Semaphore(0)
        self._gos = [ctx.Semaphore(0) for _ in range(W)]
        self._abort = ctx.Value("i", 0)
        self._parent_pid = os.getpid()
        self._pipes = []
        self._child_pipes = []
        for _ in range(W):
            parent_end, child_end = ctx.Pipe()
            self._pipes.append(parent_end)
            self._child_pipes.append(child_end)
        self._procs = [
            ctx.Process(target=self._worker_loop, args=(w,), daemon=True) for w in range(W)
        ]
        for proc in self._procs:
            proc.start()
        for child_end in self._child_pipes:
            child_end.close()  # parent keeps only its ends

    # ------------------------------------------------------------ worker side
    def _worker_loop(self, rank: int) -> None:
        state = self._states[rank]
        pipe = self._child_pipes[rank]
        try:
            while True:
                cmd = pipe.recv()
                kind = cmd[0]
                if kind == "stop":
                    return
                if kind == "collect":
                    pipe.send(("shard_state", state.collect_shard_state()))
                elif kind == "install":
                    _, views, step_count = cmd
                    state.install_shard_state(views, step_count)
                    pipe.send(("installed",))
                elif kind == "epoch":
                    _, epoch, t0, rounds = cmd
                    self._worker_epoch(state, pipe, epoch, t0, rounds)
        except (EOFError, BrokenPipeError, KeyboardInterrupt):
            return

    def _worker_epoch(self, state: _RankState, pipe, epoch: int, t0: int, rounds: int) -> None:
        start = time.perf_counter()
        state.start_epoch(epoch)
        loss_total, batches_total = 0.0, 0
        for r in range(rounds):
            try:
                if self._fail_at is not None and self._fail_at == (state.rank, r):
                    raise RuntimeError(
                        f"injected worker failure (rank {state.rank}, round {r})"
                    )
                loss_sum, n_batches, grads = state.compute_round(t0 + r + 1)
                self._write_slabs(state.rank, loss_sum, n_batches, grads)
            except BaseException:
                # Report first, then release the round token so the master
                # unblocks, sees the error, and aborts WITHOUT applying the
                # round — the failed round's gradients never reach the
                # shared tables.
                pipe.send(("error", traceback.format_exc()))
                self._done.release()
                return
            self._done.release()
            if not self._wait_go(state.rank):
                return  # master aborted the epoch
            loss_total += loss_sum
            batches_total += n_batches
        pipe.send(
            (
                "epoch_done",
                [
                    {
                        "event": "worker_epoch",
                        "ts": time.time(),
                        "worker": state.rank,
                        "epoch": epoch + 1,
                        "shards": len(state.shards),
                        "rounds": rounds,
                        "batches": batches_total,
                        "loss_sum": loss_total,
                        "seconds": time.perf_counter() - start,
                    }
                ],
            )
        )

    def _wait_go(self, rank: int) -> bool:
        go = self._gos[rank]
        while True:
            if go.acquire(timeout=_POLL_SECONDS):
                return True
            if self._abort.value:
                return False
            if os.getppid() != self._parent_pid:
                return False  # master died; orphaned worker exits

    def _write_slabs(self, rank: int, loss_sum: float, n_batches: int, grads: Dict[int, object]):
        self._loss_slab[rank, 0] = loss_sum
        self._loss_slab[rank, 1] = float(n_batches)
        for j, i in enumerate(self._shared):
            g = grads.get(i)
            if g is None:
                self._count_slab[rank, j] = 0
                continue
            if not isinstance(g, SparseRowGrad):
                raise RuntimeError(
                    f"parameter {i} produced a dense gradient; fork-mode sharded "
                    "training ships sparse row grads only (run with parallel=False "
                    "or make the model emit sparse grads)"
                )
            n = int(g.indices.shape[0])
            cap = self._idx_slabs[rank][j].shape[0]
            if n > cap:
                raise RuntimeError(
                    f"gradient slab overflow for parameter {i}: {n} rows > capacity "
                    f"{cap} — the model gathers more rows per example than the "
                    f"sizing bound ({_ROWS_PER_EXAMPLE_BOUND})"
                )
            self._idx_slabs[rank][j][:n] = g.indices
            self._val_slabs[rank][j][:n] = g.values
            self._count_slab[rank, j] = n

    # ------------------------------------------------------------ master side
    def run_epoch(self, epoch: int, optimizer, rng: np.random.Generator):
        config = self.config
        extra = self.model.extra_epoch_step(make_step_fn(optimizer), rng, config)
        t0 = int(optimizer.step_count)
        num_shards = self.sampler.num_shards
        rounds = max(
            (
                self.sampler.shard_num_batches(s, config.batch_size)
                for s in range(num_shards)
            ),
            default=0,
        )
        if self._max_rounds is not None:
            rounds = min(rounds, self._max_rounds)
        if self.parallel:
            loss_total, batches_total = self._fork_epoch(epoch, t0, rounds, optimizer)
        else:
            loss_total, batches_total = self._inline_epoch(epoch, t0, rounds, optimizer)
        return loss_total / max(batches_total, 1), extra

    def _inline_epoch(self, epoch: int, t0: int, rounds: int, optimizer):
        start = time.perf_counter()
        for state in self._states:
            state.start_epoch(epoch)
        loss_total, batches_total = 0.0, 0
        per_rank = [[0.0, 0] for _ in self._states]
        for r in range(rounds):
            outs = []
            for state in self._states:
                if self._fail_at is not None and self._fail_at == (state.rank, r):
                    raise RuntimeError(
                        f"injected worker failure (rank {state.rank}, round {r})"
                    )
                outs.append(state.compute_round(t0 + r + 1))
            self._apply_round(optimizer, outs)
            for w, (loss_sum, n_batches, _) in enumerate(outs):
                loss_total += loss_sum
                batches_total += n_batches
                per_rank[w][0] += loss_sum
                per_rank[w][1] += n_batches
        seconds = time.perf_counter() - start
        now = time.time()
        for state, (loss_sum, n_batches) in zip(self._states, per_rank):
            self._events.append(
                {
                    "event": "worker_epoch",
                    "ts": now,
                    "worker": state.rank,
                    "epoch": epoch + 1,
                    "shards": len(state.shards),
                    "rounds": rounds,
                    "batches": n_batches,
                    "loss_sum": loss_sum,
                    "seconds": seconds,
                    "inline": True,
                }
            )
        return loss_total, batches_total

    def _fork_epoch(self, epoch: int, t0: int, rounds: int, optimizer):
        for pipe in self._pipes:
            pipe.send(("epoch", epoch, t0, rounds))
        loss_total, batches_total = 0.0, 0
        for r in range(rounds):
            t = t0 + r + 1
            self._await_round(t)
            outs = self._read_slabs()
            self._apply_round(optimizer, outs)
            for loss_sum, n_batches, _ in outs:
                loss_total += loss_sum
                batches_total += n_batches
            for go in self._gos:
                go.release()
        for w, pipe in enumerate(self._pipes):
            msg = self._recv_worker(w, pipe)
            if msg[0] == "error":
                self._abort_workers()
                raise RuntimeError(
                    f"training worker {w} failed at end of epoch {epoch}:\n{msg[1]}"
                )
            self._events.extend(msg[1])
        return loss_total, batches_total

    def _await_round(self, t: int) -> None:
        """Wait for every worker's round token, watching for death/failure."""
        acquired = 0
        waited = 0.0
        while acquired < self.num_workers:
            if self._done.acquire(timeout=_POLL_SECONDS):
                acquired += 1
                continue
            waited += _POLL_SECONDS
            for w, proc in enumerate(self._procs):
                if not proc.is_alive():
                    self._abort_workers()
                    raise RuntimeError(
                        f"training worker {w} (pid {proc.pid}) died before optimizer "
                        f"step {t}; the in-flight gradient batch was NOT applied — "
                        "resume from the last checkpoint"
                    )
            if waited >= self.barrier_timeout:
                self._abort_workers()
                raise RuntimeError(
                    f"training round timed out after {self.barrier_timeout:.0f}s "
                    f"before optimizer step {t}; no gradient was applied"
                )
        errors = []
        for w, pipe in enumerate(self._pipes):
            while pipe.poll():
                msg = pipe.recv()
                if msg[0] == "error":
                    errors.append((w, msg[1]))
        if errors:
            self._abort_workers()
            w, tb = errors[0]
            raise RuntimeError(
                f"training worker {w} failed before optimizer step {t}; the round's "
                f"gradients were NOT applied to shared parameters — resume from the "
                f"last checkpoint.\nworker traceback:\n{tb}"
            )

    def _read_slabs(self):
        outs = []
        for w in range(self.num_workers):
            grads: Dict[int, SparseRowGrad] = {}
            for j, i in enumerate(self._shared):
                n = int(self._count_slab[w, j])
                if n == 0:
                    continue
                p = self.params[i]
                # Slab slices are consumed (merged + coalesced + applied)
                # before this round's go tokens release the writers, so
                # aliasing the mmap here is safe.
                grads[i] = SparseRowGrad(
                    p.data.shape,
                    self._idx_slabs[w][j][:n],
                    self._val_slabs[w][j][:n],
                    coalesced=True,
                )
            outs.append((float(self._loss_slab[w, 0]), int(self._loss_slab[w, 1]), grads))
        return outs

    def _apply_round(self, optimizer, outs) -> None:
        """Merge worker gradients in rank order and apply one global step."""
        merged: Dict[int, object] = {}
        for _, _, grads in outs:  # outs is rank-ordered
            for i, g in grads.items():
                cur = merged.get(i)
                if cur is None:
                    merged[i] = g
                elif isinstance(cur, SparseRowGrad) and isinstance(g, SparseRowGrad):
                    cur.merge_(g)
                else:
                    dense_cur = cur.to_dense() if isinstance(cur, SparseRowGrad) else cur
                    dense_g = g.to_dense() if isinstance(g, SparseRowGrad) else g
                    merged[i] = dense_cur + dense_g
        for i, g in merged.items():
            self.params[i].grad = g
        optimizer.step()
        optimizer.zero_grad()

    def _abort_workers(self) -> None:
        if self._abort is not None:
            self._abort.value = 1

    # --------------------------------------------------------- state gather
    def _recv_worker(self, rank: int, pipe, timeout: float = None):
        deadline = self.barrier_timeout if timeout is None else timeout
        waited = 0.0
        while not pipe.poll(_POLL_SECONDS):
            waited += _POLL_SECONDS
            proc = self._procs[rank]
            if not proc.is_alive():
                raise RuntimeError(
                    f"training worker {rank} (pid {proc.pid}) died while the master "
                    "awaited its reply — resume from the last checkpoint"
                )
            if waited >= deadline:
                raise RuntimeError(f"training worker {rank} did not reply in {deadline:.0f}s")
        return pipe.recv()

    def optimizer_state(self, optimizer) -> dict:
        state = optimizer.state_dict()
        if not self.partitioned:
            return state
        shards_by_param: Dict[int, List[Tuple[int, int, dict]]] = {i: [] for i in self.partitioned}
        if self.parallel:
            for w, pipe in enumerate(self._pipes):
                pipe.send(("collect",))
            for w, pipe in enumerate(self._pipes):
                msg = self._recv_worker(w, pipe)
                if msg[0] != "shard_state":
                    raise RuntimeError(f"unexpected worker reply {msg[0]!r} during collect")
                for i, lo, hi, view in msg[1]:
                    shards_by_param[i].append((lo, hi, view))
        else:
            for st in self._states:
                for i, lo, hi, view in st.collect_shard_state():
                    shards_by_param[i].append((lo, hi, view))
        for i, shards in shards_by_param.items():
            assemble_row_sharded_state(state, i, shards)
        return state

    def load_optimizer_state(self, optimizer, state: dict) -> None:
        optimizer.load_state_dict(state)
        if not self.partitioned:
            return
        slots = state.get("slots", {})
        row_steps = state.get("row_steps", {})

        def _slot(buf: dict, i: int):
            if i in buf:
                return buf[i]
            if str(i) in buf:
                return buf[str(i)]
            raise ValueError(
                f"checkpoint optimizer state lacks sharded slot data for parameter {i}"
            )

        step_count = int(optimizer.step_count)
        for w in range(self.num_workers):
            state_w = self._states[w]
            if state_w.row_hi <= state_w.row_lo:
                continue
            lo, hi = state_w.row_lo, state_w.row_hi
            views: Dict[int, dict] = {}
            for i in self.partitioned:
                m_full = np.asarray(_slot(slots.get("m", {}), i))
                v_full = np.asarray(_slot(slots.get("v", {}), i))
                last_full = np.asarray(_slot(row_steps, i), dtype=np.int64)
                views[i] = {
                    "m": m_full[lo:hi],
                    "v": v_full[lo:hi],
                    "row_steps": last_full[lo:hi],
                }
            if self.parallel:
                self._pipes[w].send(("install", views, step_count))
            else:
                state_w.install_shard_state(views, step_count)
        if self.parallel:
            for w in range(self.num_workers):
                if self._states[w].row_hi <= self._states[w].row_lo:
                    continue
                msg = self._recv_worker(w, self._pipes[w])
                if msg[0] != "installed":
                    raise RuntimeError(f"unexpected worker reply {msg[0]!r} during install")

    # -------------------------------------------------------------- teardown
    def drain_worker_events(self) -> List[dict]:
        events, self._events = self._events, []
        return events

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._procs:
            self._abort_workers()
            for pipe in self._pipes:
                try:
                    pipe.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5)
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
            for pipe in self._pipes:
                pipe.close()
            self._procs = []
            self._pipes = []
        if self._originals is not None:
            # Copy the trained values out of the shared segments and rebind
            # the parameters to ordinary in-memory buffers before the arena
            # (and its files) go away.
            with no_grad():
                for p, orig in zip(self.params, self._originals):
                    orig[...] = p.data
                    p.data = orig
            self._originals = None
        if self._arena is not None:
            self._arena.cleanup()
            self._arena = None
