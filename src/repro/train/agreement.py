"""Distributed-vs-serial gradient-agreement harness.

The convergence argument for :class:`~repro.train.sharded.ShardedExecutor`
is that its two-level reduction (worker-local coalesce, then rank-ordered
merge) computes *the same mathematical gradient* as a serial pass over the
same batches — the only divergence is floating-point summation
reassociation, bounded near machine epsilon.  This module measures that
divergence directly, in the style of the distributed-vs-serial adjoint
tests used by distributed-tensor frameworks (dfno/DistDL): run one round
through both reductions on identically-initialized models and report the
elementwise difference per parameter.

The report is both a test fixture (``tests/test_train_sharded.py`` asserts
``within_tolerance``) and a benchmark artifact
(``benchmarks/test_bench_parallel.py`` embeds it in ``BENCH_parallel.json``
so the documented tolerance ships with the measured speedups).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.autograd.sparse import SparseRowGrad
from repro.io.checkpoints import parameter_keys
from repro.parallel.executor import chunk_indices
from repro.train.engine import FitConfig
from repro.train.sharded import _RankState, shard_stream_rng

__all__ = ["gradient_agreement_report", "DEFAULT_TOLERANCE"]

#: Two-level vs flat summation of a few thousand float64 terms reassociates
#: addition; the worst-case relative drift observed across the supported
#: models is orders of magnitude below this (see DESIGN §14).
DEFAULT_TOLERANCE = 1e-9


def _densify(grad) -> np.ndarray:
    return grad.to_dense() if isinstance(grad, SparseRowGrad) else np.asarray(grad)


def gradient_agreement_report(
    model_factory,
    sampler,
    config: FitConfig,
    *,
    workers: int = 2,
    epoch: int = 0,
    tolerance: Optional[float] = None,
) -> dict:
    """Compare one round's gradient: sharded two-level vs serial reduction.

    ``model_factory`` must build identically-initialized models on every
    call (fixed construction seed) — one instance runs the distributed
    reduction, a fresh one the serial reference, and any initialization
    drift would masquerade as gradient disagreement.  ``sampler`` is a
    shard-addressable sampler (``ShardedBPRSampler`` /
    :class:`~repro.train.objectives.TripleShardSampler`); both sides draw
    the *same* batches from the same per-(epoch, shard) RNG streams, so the
    comparison isolates the reduction order.

    Returns a JSON-ready report::

        {"workers": W, "epoch": e, "tolerance": tol, "within_tolerance": bool,
         "max_abs_diff": float, "max_rel_diff": float,
         "params": {key: {"max_abs_diff", "max_rel_diff", "ref_scale", "rows"}}}
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    tol = DEFAULT_TOLERANCE if tolerance is None else float(tolerance)

    # --- distributed side: worker-local accumulate+coalesce, rank-ordered merge
    model_d = model_factory()
    params_d = model_d.parameters()
    hook = getattr(model_d, "row_partitioned_parameters", None)
    part_params = list(hook()) if hook is not None else []
    index_of = {id(p): i for i, p in enumerate(params_d)}
    partitioned = sorted(index_of[id(p)] for p in part_params)
    chunks = [list(c) for c in chunk_indices(sampler.num_shards, workers)]
    while len(chunks) < workers:
        chunks.append([])
    states = [
        _RankState(w, model_d, sampler, config, shards, partitioned)
        for w, shards in enumerate(chunks)
    ]
    merged: Dict[int, object] = {}
    for state in states:  # ascending rank order — the executor's merge order
        state.start_epoch(epoch)
        _, _, grads = state.compute_round(t=1, apply_local=False)
        for i, g in grads.items():
            cur = merged.get(i)
            if cur is None:
                merged[i] = g
            elif isinstance(cur, SparseRowGrad) and isinstance(g, SparseRowGrad):
                cur.merge_(g)
            else:
                merged[i] = _densify(cur) + _densify(g)
    merged = {
        i: g.coalesce() if isinstance(g, SparseRowGrad) else g for i, g in merged.items()
    }

    # --- serial side: one flat accumulation over the identical batches
    model_s = model_factory()
    params_s = model_s.parameters()
    for p in params_s:
        p.grad = None
    for shard in range(sampler.num_shards):
        rng = shard_stream_rng(config.seed, epoch, shard)
        batch = next(sampler.shard_epoch_batches(shard, config.batch_size, rng), None)
        if batch is None:
            continue
        a, b, c = batch
        model_s.batch_loss(a, b, c, rng).backward()

    keys = parameter_keys(params_d)
    per_param: Dict[str, dict] = {}
    max_abs = 0.0
    max_rel = 0.0
    for i, (key, p) in enumerate(zip(keys, params_s)):
        g_serial = p.grad
        g_sharded = merged.get(i)
        if g_serial is None and g_sharded is None:
            continue
        dense_serial = (
            _densify(g_serial) if g_serial is not None else np.zeros(p.data.shape)
        )
        dense_sharded = (
            _densify(g_sharded) if g_sharded is not None else np.zeros(p.data.shape)
        )
        abs_diff = float(np.max(np.abs(dense_sharded - dense_serial)))
        ref_scale = float(np.max(np.abs(dense_serial)))
        rel_diff = abs_diff / ref_scale if ref_scale > 0 else abs_diff
        per_param[key] = {
            "max_abs_diff": abs_diff,
            "max_rel_diff": rel_diff,
            "ref_scale": ref_scale,
            "rows": int(p.data.shape[0]),
        }
        max_abs = max(max_abs, abs_diff)
        max_rel = max(max_rel, rel_diff)
    return {
        "workers": int(workers),
        "epoch": int(epoch),
        "tolerance": tol,
        "within_tolerance": bool(max_rel <= tol),
        "max_abs_diff": max_abs,
        "max_rel_diff": max_rel,
        "params": per_param,
    }
