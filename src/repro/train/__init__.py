"""Training engine: the epoch loop, extracted from ``Recommender.fit``.

This package owns *how* training steps execute; models own *what* a step
computes.  The split is:

- :class:`~repro.train.engine.TrainEngine` — config validation, sampler and
  optimizer construction, resume/restore, telemetry, evaluation and
  best-epoch snapshots, periodic checkpoints.  One engine drives any model
  implementing the :class:`~repro.models.base.Recommender` hooks.
- :class:`~repro.train.engine.StepExecutor` — the pluggable strategy that
  actually runs one epoch of optimization steps.
  :class:`~repro.train.engine.SerialExecutor` reproduces the historical
  in-process loop bit-for-bit;
  :class:`~repro.train.sharded.ShardedExecutor` runs data-parallel workers
  over mmap'd shared parameter segments with deterministic gradient
  reconciliation.

Optimizer calls funnel through this package (reprolint RPL015): model code
never invokes ``Optimizer.step`` directly — auxiliary phases receive an
engine-provided step callable instead.
"""

from repro.train.agreement import gradient_agreement_report
from repro.train.engine import (
    FitConfig,
    FitResult,
    SerialExecutor,
    StepExecutor,
    TrainEngine,
    make_step_fn,
)
from repro.train.objectives import TransRObjective, TripleShardSampler
from repro.train.sharded import ShardedExecutor

__all__ = [
    "FitConfig",
    "FitResult",
    "SerialExecutor",
    "ShardedExecutor",
    "StepExecutor",
    "TrainEngine",
    "TransRObjective",
    "TripleShardSampler",
    "gradient_agreement_report",
    "make_step_fn",
]
