"""Standalone KG training objectives for the engine.

The engine is model-agnostic: anything exposing the ``Recommender`` training
hooks trains under any executor.  :class:`TransRObjective` wraps the
:class:`~repro.models.embeddings.TransR` module in exactly those hooks so
the knowledge-graph loss trains as a first-class objective — serially or
data-parallel — instead of only as CKE/CKAT's auxiliary phase, and
:class:`TripleShardSampler` gives it a shard-addressable batch source over
a fixed triple array (the analogue of
:class:`~repro.data.sampling.ShardedBPRSampler` for triples).

Sharding note: TransR's entity table is *not* row-partitionable — a triple
touches its head, its tail, and a uniformly corrupted entity, so every
shard's gradient can land anywhere in the table.  All three TransR tables
therefore train as shared parameters under the two-level sparse reduction;
``row_partitioned_parameters`` is empty.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.autograd import Parameter, Tensor
from repro.models.embeddings import TransR

__all__ = ["TransRObjective", "TripleShardSampler"]


class TripleShardSampler:
    """Shard-addressable epoch batches over fixed (head, rel, tail) arrays.

    Triples are split into contiguous shards of ``rows_per_shard``; each
    shard's epoch contribution is a fresh permutation of its own triples.
    Exposes the executor's shard-batch interface (``num_shards``,
    ``shard_num_batches``, ``shard_epoch_batches``) plus the serial
    ``epoch_batches`` so the same sampler drives both executors.
    """

    def __init__(
        self,
        heads: np.ndarray,
        rels: np.ndarray,
        tails: np.ndarray,
        rows_per_shard: int = 8192,
    ):
        heads = np.asarray(heads, dtype=np.int64)
        rels = np.asarray(rels, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        if not (heads.shape == rels.shape == tails.shape) or heads.ndim != 1:
            raise ValueError(
                f"heads/rels/tails must be equal-length 1-D arrays, got shapes "
                f"{heads.shape}/{rels.shape}/{tails.shape}"
            )
        if heads.size == 0:
            raise ValueError("cannot sample from an empty triple set")
        if rows_per_shard <= 0:
            raise ValueError(f"rows_per_shard must be positive, got {rows_per_shard}")
        self.heads = heads
        self.rels = rels
        self.tails = tails
        self.rows_per_shard = int(rows_per_shard)
        self.num_shards = -(-heads.size // self.rows_per_shard)

    def __len__(self) -> int:
        return int(self.heads.size)

    def shard_records(self, shard: int) -> Tuple[int, int]:
        """The triple index range ``[lo, hi)`` of one shard."""
        if not 0 <= shard < self.num_shards:
            raise IndexError(f"shard {shard} out of range [0, {self.num_shards})")
        lo = shard * self.rows_per_shard
        return lo, min(lo + self.rows_per_shard, self.heads.size)

    def shard_num_batches(self, shard: int, batch_size: int) -> int:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        lo, hi = self.shard_records(shard)
        return -(-(hi - lo) // batch_size)

    def shard_epoch_batches(
        self, shard: int, batch_size: int, rng: np.random.Generator
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """One shard's epoch batches, drawing only from ``rng``.

        Deterministic in (shard, rng) — the worker-count invariance the
        sharded executor's batch schedule relies on.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        lo, hi = self.shard_records(shard)
        if hi == lo:
            return
        order = rng.permutation(hi - lo) + lo
        for start in range(0, len(order), batch_size):
            pick = order[start : start + batch_size]
            yield self.heads[pick], self.rels[pick], self.tails[pick]

    def epoch_batches(
        self, batch_size: int, seed=0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Serial epoch: every shard's batches in ascending shard order."""
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)
        for shard in range(self.num_shards):
            yield from self.shard_epoch_batches(shard, batch_size, rng)


class TransRObjective:
    """TransR margin loss as an engine-trainable objective.

    Implements the ``Recommender`` training hooks over a wrapped
    :class:`~repro.models.embeddings.TransR`; ``batch_loss`` takes a
    (heads, rels, tails) batch — what :class:`TripleShardSampler` yields —
    and corrupts negatives from the batch RNG, so the loss is replicable
    from (batch, rng) alone and safe to compute in worker processes.
    """

    name = "TransR"

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        entity_dim: int = 64,
        relation_dim: int = 32,
        margin: float = 1.0,
        seed=0,
    ):
        self.transr = TransR(
            num_entities,
            num_relations,
            entity_dim=entity_dim,
            relation_dim=relation_dim,
            seed=seed,
            margin=margin,
        )
        self.num_entities = num_entities
        self.num_relations = num_relations

    # ------------------------------------------------------- training hooks
    def parameters(self) -> List[Parameter]:
        return self.transr.parameters()

    def batch_loss(
        self,
        heads: np.ndarray,
        rels: np.ndarray,
        tails: np.ndarray,
        rng: np.random.Generator,
    ) -> Tensor:
        return self.transr.margin_loss(heads, rels, tails, rng)

    def extra_epoch_step(self, step, rng, config) -> float:
        return 0.0

    def on_epoch_end(self) -> None:
        pass

    def extra_rng_state(self):
        return None

    def restore_extra_rng_state(self, state) -> None:
        if state is not None:
            raise ValueError("TransRObjective owns no extra RNG state")

    def row_partitioned_parameters(self) -> List[Parameter]:
        return []  # every table is shared: see the module docstring
