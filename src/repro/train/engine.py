"""The training engine: epoch loop, resume, telemetry, checkpoints.

Historically the epoch loop lived inside ``Recommender.fit``; it now lives
here, behind a pluggable :class:`StepExecutor`.  ``Recommender.fit`` is a
thin wrapper over :class:`TrainEngine`, and :class:`SerialExecutor`
reproduces the historical loop **bit-for-bit**: the same single RNG drives
sampling in the same order, the optimizer sees the same gradients in the
same sequence, and checkpoints round-trip through the unchanged
:mod:`repro.io.checkpoints` format.  The engine owns everything around the
epoch — validation, sampler/optimizer construction, resume, evaluation and
best-epoch snapshots, periodic checkpoints, JSONL telemetry — while the
executor owns the steps inside it.

Optimizer funnel (reprolint RPL015): model code does not call
``Optimizer.step`` / ``zero_grad`` itself.  Auxiliary per-epoch phases
(TransR/TransE in CKE, CFKG, CKAT) receive a *step callable* built by
:func:`make_step_fn` — ``step(loss_fn) -> float`` runs zero-grad /
forward / backward / optimizer-step and returns the loss value — so every
parameter update in the codebase flows through this module and
executors can reinterpret "one step" (e.g. run it on the master while
workers idle) without touching model code.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from typing import Callable, List, Optional, Union

import numpy as np

from repro.autograd import Adam, no_grad
from repro.io.checkpoints import (
    TrainingCheckpoint,
    check_executor_compatible,
    load_training_checkpoint,
    parameter_keys,
    save_training_checkpoint,
)
from repro.utils.rng import ensure_rng
from repro.utils.telemetry import RunLogger, merge_worker_events

__all__ = [
    "FitConfig",
    "FitResult",
    "StepExecutor",
    "SerialExecutor",
    "TrainEngine",
    "make_step_fn",
]

PathLike = Union[str, pathlib.Path]

#: An engine-provided "run one optimization step" callable handed to model
#: auxiliary phases: ``step(loss_fn)`` zeroes grads, evaluates ``loss_fn()``
#: (a scalar Tensor), backpropagates, applies the optimizer, and returns the
#: loss as a float.
StepFn = Callable[[Callable[[], object]], float]


def make_step_fn(optimizer) -> StepFn:
    """Build the step callable models use for auxiliary training phases."""

    def step(loss_fn: Callable[[], object]) -> float:
        optimizer.zero_grad()
        loss = loss_fn()
        loss.backward()
        optimizer.step()
        return float(loss.item())

    return step


@dataclasses.dataclass
class FitConfig:
    """Training hyperparameters (defaults follow Section VI-D)."""

    epochs: int = 40
    batch_size: int = 512
    lr: float = 0.01
    l2: float = 1e-5
    seed: int = 0
    verbose: bool = False
    eval_every: int = 0
    """If >0 and an evaluator callback is given to fit(), evaluate every
    this many epochs."""
    keep_best_metric: str = ""
    """When set (e.g. ``"recall@20"``) together with ``eval_every`` and an
    eval callback, parameters are snapshotted at each evaluation and the
    best-scoring snapshot is restored after the final epoch — the best-epoch
    selection protocol of the KGAT-family reference implementations."""

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.l2 < 0:
            raise ValueError("l2 must be nonnegative")
        if self.eval_every < 0:
            raise ValueError(f"eval_every must be >= 0, got {self.eval_every}")
        if self.keep_best_metric and self.eval_every <= 0:
            raise ValueError(
                "keep_best_metric requires eval_every > 0 — without evaluations no "
                "snapshot is ever taken, silently corrupting best-epoch results"
            )

    def fingerprint(self) -> dict:
        """The fields a resumed run must match for bit-identical replay."""
        return {
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "l2": self.l2,
            "seed": self.seed,
            "eval_every": self.eval_every,
            "keep_best_metric": self.keep_best_metric,
        }


@dataclasses.dataclass
class FitResult:
    """Training record: per-epoch losses and wall-clock time."""

    losses: List[float]
    extra_losses: List[float]
    seconds: float
    eval_history: List[dict]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class StepExecutor:
    """Strategy for running one epoch of optimization steps.

    The engine calls, in order: :meth:`bind` once before training begins
    (after the optimizer exists, before any resume state loads), then
    :meth:`run_epoch` once per epoch, and :meth:`close` when training ends
    (including on error).  Optimizer-state traffic for checkpoints goes
    through :meth:`optimizer_state` / :meth:`load_optimizer_state` so
    executors that scatter state across workers can gather/rescatter it
    while keeping the on-disk npz format unchanged.
    """

    kind: str = "step-executor"

    def bind(self, model, train, config: FitConfig, sampler, optimizer) -> None:
        """Attach to one training run; called exactly once per fit."""
        raise NotImplementedError

    def fingerprint(self) -> dict:
        """Layout identity recorded in checkpoints (see RPL-satellite note).

        Resuming requires an identical fingerprint: optimizer slots and
        worker-local state only load into the executor layout that produced
        them.
        """
        return {"kind": self.kind}

    def run_epoch(self, epoch: int, optimizer, rng: np.random.Generator):
        """Run one epoch; returns ``(mean_batch_loss, extra_loss)``."""
        raise NotImplementedError

    def default_sampler(self, train):
        """The sampler built when ``fit`` receives none.

        Serial execution keeps the historical default
        (:class:`~repro.data.sampling.BPRSampler`); sharded execution needs
        shard-addressable batches and overrides this.
        """
        from repro.data.sampling import BPRSampler  # deferred: keeps layering acyclic

        return BPRSampler(train)

    def optimizer_state(self, optimizer) -> dict:
        """Full optimizer state for a checkpoint (worker state gathered in)."""
        return optimizer.state_dict()

    def load_optimizer_state(self, optimizer, state: dict) -> None:
        """Restore checkpointed optimizer state (worker state scattered out)."""
        optimizer.load_state_dict(state)

    def drain_worker_events(self) -> List[dict]:
        """Per-worker telemetry events accumulated since the last drain."""
        return []

    def close(self) -> None:
        """Release executor resources; idempotent."""


class SerialExecutor(StepExecutor):
    """The reference executor: the historical in-process epoch loop.

    ``run_epoch`` performs exactly the sequence the pre-engine
    ``Recommender.fit`` ran — auxiliary phase first, then one optimizer
    step per sampler batch, all randomness drawn from the single training
    RNG in the same order — so a serial engine run is bit-identical to the
    historical code path (locked by the resume/training test suites).
    """

    kind = "serial"

    def __init__(self):
        self.model = None
        self.config: Optional[FitConfig] = None
        self.sampler = None

    def bind(self, model, train, config: FitConfig, sampler, optimizer) -> None:
        self.model = model
        self.config = config
        self.sampler = sampler

    def run_epoch(self, epoch: int, optimizer, rng: np.random.Generator):
        config = self.config
        extra = self.model.extra_epoch_step(make_step_fn(optimizer), rng, config)
        epoch_loss, n_batches = 0.0, 0
        for users, pos, neg in self.sampler.epoch_batches(config.batch_size, seed=rng):
            optimizer.zero_grad()
            loss = self.model.batch_loss(users, pos, neg, rng)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        return epoch_loss / max(n_batches, 1), extra


class TrainEngine:
    """Drives training of one model with a pluggable :class:`StepExecutor`.

    The engine is model-agnostic: anything implementing the
    :class:`~repro.models.base.Recommender` training hooks (``parameters``,
    ``batch_loss``, ``extra_epoch_step``, ``on_epoch_end``,
    ``extra_rng_state``/``restore_extra_rng_state``) trains here, including
    the standalone KG objectives in :mod:`repro.train.objectives`.
    """

    def __init__(self, model, executor: Optional[StepExecutor] = None):
        self.model = model
        self.executor = executor if executor is not None else SerialExecutor()

    # ------------------------------------------------------------ internals
    def _restore_checkpoint(
        self,
        ckpt: TrainingCheckpoint,
        config: FitConfig,
        params,
        keys: List[str],
        optimizer: Adam,
        rng: np.random.Generator,
    ) -> None:
        """Load a :class:`TrainingCheckpoint` into live training state.

        Validates that the checkpoint matches the architecture (same
        parameter keys and shapes), the replay-relevant config fields, *and*
        the executor/shard layout — resuming under a different batch size,
        learning rate, seed, or worker layout could not possibly reproduce
        the uninterrupted run, so it raises instead.
        """
        fp = config.fingerprint()
        saved = ckpt.config
        mismatched = {
            k: (saved.get(k), fp[k]) for k in fp if k != "epochs" and saved.get(k) != fp[k]
        }
        if mismatched:
            raise ValueError(
                f"cannot resume: config mismatch {mismatched} (checkpoint vs current); "
                "resume-exactness requires identical training configuration"
            )
        check_executor_compatible(saved, self.executor.fingerprint())
        if config.epochs < ckpt.epoch:
            raise ValueError(
                f"cannot resume: checkpoint has {ckpt.epoch} completed epochs but the "
                f"config only trains {config.epochs}"
            )
        if set(ckpt.params) != set(keys):
            raise ValueError(
                f"cannot resume: parameter set mismatch (checkpoint {sorted(ckpt.params)}, "
                f"model {sorted(keys)})"
            )
        with no_grad():
            for key, p in zip(keys, params):
                arr = ckpt.params[key]
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"cannot resume: shape mismatch for {key}: "
                        f"checkpoint {arr.shape} vs model {p.data.shape}"
                    )
                p.data[...] = arr
        self.executor.load_optimizer_state(optimizer, ckpt.optimizer_state)
        rng.bit_generator.state = ckpt.rng_state
        if ckpt.extra_rng_state is not None:
            self.model.restore_extra_rng_state(ckpt.extra_rng_state)
        self.model.on_epoch_end()  # rebuild derived state (e.g. CKAT attention)

    def _merge_worker_events(self, logger: Optional[RunLogger]) -> None:
        events = self.executor.drain_worker_events()
        if logger is not None and events:
            merge_worker_events(logger, events)

    # -------------------------------------------------------------- training
    def fit(
        self,
        train,
        config: Optional[FitConfig] = None,
        eval_callback: Optional[Callable[[], dict]] = None,
        *,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[PathLike] = None,
        resume_from: Optional[PathLike] = None,
        logger: Optional[RunLogger] = None,
        sampler: Optional[object] = None,
    ) -> FitResult:
        """Train ``self.model``; see ``Recommender.fit`` for the parameters.

        ``train`` may be ``None`` when an explicit ``sampler`` is supplied
        (standalone KG objectives train from a triple sampler with no
        interaction dataset).
        """
        model = self.model
        config = config or FitConfig()
        if train is None and sampler is None:
            raise ValueError("fit needs a training dataset or an explicit sampler")
        if (
            train is not None
            and hasattr(train, "num_users")
            and hasattr(model, "num_users")
            and (train.num_users != model.num_users or train.num_items != model.num_items)
        ):
            raise ValueError(
                f"dataset shape ({train.num_users}×{train.num_items}) does not match model "
                f"({model.num_users}×{model.num_items})"
            )
        if config.eval_every < 0:
            raise ValueError(f"eval_every must be >= 0, got {config.eval_every}")
        if config.keep_best_metric and (config.eval_every <= 0 or eval_callback is None):
            raise ValueError(
                "keep_best_metric requires eval_every > 0 and an eval_callback — "
                "without both no snapshot is ever taken, silently corrupting "
                "best-epoch results"
            )
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every > 0 requires checkpoint_path")
        rng = ensure_rng(config.seed)
        # An injected sampler only needs epoch_batches(batch_size, seed) —
        # e.g. data.ShardedBPRSampler, whose shard-local membership keys keep
        # million-user training sets out of the global-key memory regime.
        # (The sharded executor additionally requires the shard-batch
        # interface and builds a ShardedBPRSampler itself when none is given.)
        if sampler is None:
            sampler = self.executor.default_sampler(train)
        params = model.parameters()
        keys = parameter_keys(params)
        optimizer = Adam(params, lr=config.lr)
        losses: List[float] = []
        extra_losses: List[float] = []
        eval_history: List[dict] = []
        best_score = -np.inf
        best_snapshot: Optional[List[np.ndarray]] = None
        start_epoch = 0
        base_seconds = 0.0
        try:
            self.executor.bind(model, train, config, sampler, optimizer)
            # Executor fingerprints may depend on bind-time layout (shard
            # count), so the checkpoint config is assembled only now.
            ckpt_config = dict(config.fingerprint())
            ckpt_config["executor"] = self.executor.fingerprint()
            if resume_from is not None:
                ckpt = load_training_checkpoint(resume_from)
                self._restore_checkpoint(ckpt, config, params, keys, optimizer, rng)
                losses = list(ckpt.losses)
                extra_losses = list(ckpt.extra_losses)
                eval_history = list(ckpt.eval_history)
                best_score = ckpt.best_score
                if ckpt.best_snapshot is not None:
                    best_snapshot = [ckpt.best_snapshot[key].copy() for key in keys]
                start_epoch = ckpt.epoch
                base_seconds = ckpt.seconds
                if logger is not None:
                    logger.log("resume", epoch=start_epoch, path=str(resume_from))
            start = time.perf_counter()
            if logger is not None:
                logger.log(
                    "run_start",
                    model=model.name,
                    start_epoch=start_epoch,
                    **config.fingerprint(),
                )
            for epoch in range(start_epoch, config.epochs):
                epoch_start = time.perf_counter()
                mean_loss, extra = self.executor.run_epoch(epoch, optimizer, rng)
                extra_losses.append(extra)
                losses.append(mean_loss)
                model.on_epoch_end()
                self._merge_worker_events(logger)
                if logger is not None:
                    logger.log(
                        "epoch",
                        epoch=epoch + 1,
                        loss=losses[-1],
                        aux_loss=extra,
                        seconds=time.perf_counter() - epoch_start,
                    )
                if config.verbose:
                    msg = f"[{model.name}] epoch {epoch + 1}/{config.epochs} loss={losses[-1]:.4f}"
                    if extra:
                        msg += f" aux={extra:.4f}"
                    print(msg)
                if (
                    eval_callback is not None
                    and config.eval_every
                    and (epoch + 1) % config.eval_every == 0
                ):
                    metrics = eval_callback()
                    metrics["epoch"] = epoch + 1
                    eval_history.append(metrics)
                    if logger is not None:
                        logger.log("eval", **metrics)
                    if config.verbose:
                        print(f"[{model.name}]   eval: {metrics}")
                    if config.keep_best_metric:
                        score = metrics.get(config.keep_best_metric)
                        if score is None:
                            raise KeyError(
                                f"keep_best_metric {config.keep_best_metric!r} missing from "
                                f"eval callback result {sorted(metrics)}"
                            )
                        if score > best_score:
                            best_score = score
                            best_snapshot = [p.data.copy() for p in params]
                            if logger is not None:
                                logger.log("best_snapshot", epoch=epoch + 1, score=float(score))
                if checkpoint_every and (epoch + 1) % checkpoint_every == 0:
                    ckpt = TrainingCheckpoint(
                        epoch=epoch + 1,
                        params={key: np.array(p.data, copy=True) for key, p in zip(keys, params)},
                        optimizer_state=self.executor.optimizer_state(optimizer),
                        rng_state=rng.bit_generator.state,
                        extra_rng_state=model.extra_rng_state(),
                        losses=list(losses),
                        extra_losses=list(extra_losses),
                        eval_history=list(eval_history),
                        best_score=float(best_score),
                        best_snapshot=(
                            {key: arr.copy() for key, arr in zip(keys, best_snapshot)}
                            if best_snapshot is not None
                            else None
                        ),
                        seconds=base_seconds + (time.perf_counter() - start),
                        config=dict(ckpt_config),
                    )
                    written = save_training_checkpoint(checkpoint_path, ckpt)
                    if logger is not None:
                        logger.log("checkpoint", epoch=epoch + 1, path=str(written))
            if best_snapshot is not None:
                with no_grad():
                    for p, data in zip(params, best_snapshot):
                        p.data[...] = data
                model.on_epoch_end()  # refresh derived state (e.g. CKAT attention)
            seconds = base_seconds + (time.perf_counter() - start)
            if logger is not None:
                logger.log(
                    "run_end",
                    model=model.name,
                    epochs=config.epochs,
                    seconds=seconds,
                    final_loss=losses[-1] if losses else None,
                )
        finally:
            self.executor.close()
        return FitResult(
            losses=losses,
            extra_losses=extra_losses,
            seconds=seconds,
            eval_history=eval_history,
        )
