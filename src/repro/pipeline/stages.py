"""The staged dataset pipeline and its cache keys.

:class:`DatasetPipeline` decomposes benchmark-dataset construction into the
stages the paper's evaluation actually reuses::

    facility trace ──► interaction split ──► CKG (per source combo) ──► graph

Each stage is a pure function of ``(dataset recipe, root seed)`` plus the
stage's own knobs, so its output can be keyed by a content fingerprint and
persisted in a :class:`~repro.store.ArtifactStore`.  Stage keys form a
Merkle chain — a stage's config embeds its parent's digest — which means a
warm run can compute every key *without materializing any parent*: the
second ``repro table2`` run loads the split, CKG and prepared graph straight
from memory maps and never regenerates a trace, catalog or user population.

The catalog and population are deliberately **not** cached: they are cheap
relative to their footprint, only needed when a downstream stage actually
rebuilds, and (being object graphs, not arrays) would require pickling —
which the store forbids.  They rebuild lazily in-process on cache misses.

Stage-build accounting: every pipeline counts ``built`` / ``loaded`` /
``memo`` per stage (and a module-global aggregate sums across pipelines,
including the ones worker processes create), so tests and telemetry can
assert the warm-run invariant "zero regenerations" instead of trusting wall
clock.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.data.interactions import InteractionDataset, trace_to_interactions
from repro.data.split import TrainTestSplit, per_user_split
from repro.facility.affinity import GAGE_AFFINITY, OOI_AFFINITY, AffinityModel
from repro.facility.catalog import FacilityCatalog
from repro.facility.gage import GAGEConfig, build_gage_catalog
from repro.facility.ooi import OOIConfig, build_ooi_catalog
from repro.facility.stream import (
    TRACE_STREAM_SCHEMA,
    TraceReader,
    load_trace_stream,
    stream_config,
    stream_trace,
)
from repro.facility.trace import QueryTrace, generate_trace
from repro.facility.users import UserPopulation, build_user_population
from repro.kg.ckg import CollaborativeKnowledgeGraph, build_ckg
from repro.kg.prepared import GRAPH_SCHEMA_VERSION, PreparedGraph
from repro.kg.subgraphs import EntitySpace, KnowledgeSources
from repro.kg.triples import RelationRegistry, TripleStore
from repro.store import Artifact, ArtifactStore, canonical_json, fingerprint, resolve_cache_dir
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import check_in_choices

__all__ = [
    "DatasetPipeline",
    "DatasetRef",
    "PIPELINE_STAGES",
    "STREAM_STAGES",
    "STREAM_BLOCK_SIZE",
    "pipeline_for_ref",
    "global_stage_counters",
    "reset_global_stage_counters",
]

DATASET_NAMES = ("ooi", "gage")
PIPELINE_STAGES = ("trace", "split", "ckg", "graph")
#: Streaming stages live beside (not inside) PIPELINE_STAGES: the classic
#: chain's warm-run invariants ("every stage built exactly once") must not
#: start counting a stage that only out-of-core runs exercise.
STREAM_STAGES = ("trace_stream",)

#: Default storage block (users per artifact) for streamed traces.  Purely a
#: performance knob — the emitted records are block-size-invariant — but it
#: enters the stream fingerprint because it defines the artifact layout.
STREAM_BLOCK_SIZE = 4096

#: Per-stage payload schema versions; bump one when that stage's array
#: layout (or its builder's semantics) changes, which re-keys the stage and
#: every descendant (the invalidation rule of DESIGN.md §9).
SCHEMA_VERSIONS: Dict[str, int] = {
    "trace": 1,
    "trace_stream": TRACE_STREAM_SCHEMA,
    "split": 1,
    "ckg": 1,
    "graph": GRAPH_SCHEMA_VERSION,
}

# Population scales per dataset/scale; chosen so the CKGs land in the
# paper's Table-I size class ("full") or run in seconds ("small").
_SCALES: Dict[str, Dict[str, dict]] = {
    "ooi": {
        "full": dict(num_users=300, num_orgs=40, num_cities=40, queries=60.0),
        "small": dict(num_users=60, num_orgs=10, num_cities=10, queries=30.0),
    },
    "gage": {
        "full": dict(num_users=900, num_orgs=120, num_cities=120, queries=60.0),
        "small": dict(num_users=80, num_orgs=12, num_cities=12, queries=30.0),
    },
}

# Interaction preprocessing constants (Section VI-A); part of the split
# stage's fingerprint so changing them re-keys split/ckg/graph.
_MIN_USER_INTERACTIONS = 5
_MIN_ITEM_INTERACTIONS = 1
_TRAIN_FRACTION = 0.8

# Module-global stage counters, aggregated across every pipeline this
# process creates (worker processes each have their own).
_GLOBAL_COUNTERS: Dict[str, Dict[str, int]] = {}


def _blank_counters() -> Dict[str, Dict[str, int]]:
    return {
        stage: {"built": 0, "loaded": 0, "memo": 0}
        for stage in PIPELINE_STAGES + STREAM_STAGES
    }


def global_stage_counters() -> Dict[str, Dict[str, int]]:
    """Copy of this process's aggregate stage counters."""
    return {stage: dict(counts) for stage, counts in _GLOBAL_COUNTERS.items()}


def reset_global_stage_counters() -> None:
    """Zero the aggregate counters (test isolation / per-run accounting)."""
    _GLOBAL_COUNTERS.clear()
    _GLOBAL_COUNTERS.update(_blank_counters())


reset_global_stage_counters()


def _catalog_config(name: str, scale: str):
    if name == "ooi":
        return OOIConfig() if scale == "full" else OOIConfig(num_sites=30)
    return GAGEConfig() if scale == "full" else GAGEConfig(num_stations=120, num_cities=60)


def _default_affinity(name: str) -> AffinityModel:
    return OOI_AFFINITY if name == "ooi" else GAGE_AFFINITY


@dataclasses.dataclass(frozen=True)
class DatasetRef:
    """A lightweight, picklable handle naming one dataset build.

    This is what crosses process boundaries instead of pickled datasets:
    a worker materializes the stages it needs through a (process-cached)
    :class:`DatasetPipeline`, memory-mapping artifacts when ``cache_dir``
    is set and rebuilding deterministically when it is not.
    """

    name: str
    scale: str = "full"
    seed: int = 7
    cache_dir: Optional[str] = None
    affinity: Optional[AffinityModel] = None

    def pipeline(self) -> "DatasetPipeline":
        """The (process-cached) pipeline this ref names."""
        return pipeline_for_ref(self)


_PIPELINE_CACHE: Dict[str, "DatasetPipeline"] = {}


def pipeline_for_ref(ref: DatasetRef) -> "DatasetPipeline":
    """Process-level pipeline cache keyed by the ref's full identity.

    Evaluation shards and model cells running in the same worker process
    share one pipeline, so the split / CKG / graph materialize (or load)
    exactly once per process rather than once per shard.
    """
    key = canonical_json(
        {
            "name": ref.name,
            "scale": ref.scale,
            "seed": ref.seed,
            "cache_dir": str(ref.cache_dir) if ref.cache_dir else None,
            "affinity": ref.affinity,
        }
    )
    pipe = _PIPELINE_CACHE.get(key)
    if pipe is None:
        pipe = DatasetPipeline(
            ref.name,
            scale=ref.scale,
            seed=ref.seed,
            affinity=ref.affinity,
            cache_dir=ref.cache_dir,
        )
        _PIPELINE_CACHE[key] = pipe
    return pipe


class DatasetPipeline:
    """Stage graph for one dataset recipe, with optional artifact caching.

    Parameters
    ----------
    name, scale, seed:
        The dataset recipe (same space as ``load_dataset``).
    affinity:
        Optional override of the calibrated affinity preset; it enters the
        trace fingerprint, so ablation variants cache side by side.
    cache_dir:
        Root of the :class:`~repro.store.ArtifactStore`; resolved through
        :func:`~repro.store.resolve_cache_dir` (explicit → ``$REPRO_CACHE_DIR``
        → disabled).  Without a cache the pipeline still memoizes in-process.
    """

    def __init__(
        self,
        name: str,
        scale: str = "full",
        seed: int = 7,
        affinity: Optional[AffinityModel] = None,
        cache_dir=None,
    ):
        check_in_choices("name", name, DATASET_NAMES)
        check_in_choices("scale", scale, ("full", "small"))
        self.name = name
        self.scale = scale
        self.seed = seed
        self.affinity = affinity if affinity is not None else _default_affinity(name)
        self._explicit_affinity = affinity is not None
        root = resolve_cache_dir(cache_dir)
        self.store: Optional[ArtifactStore] = ArtifactStore(root) if root is not None else None
        self.counters = _blank_counters()
        self._memo: Dict[str, object] = {}

    # ------------------------------------------------------------ fingerprints
    def recipe(self) -> dict:
        """Fully resolved build knobs — the root of the fingerprint chain.

        Every numeric the builders consume appears here explicitly (not just
        the ``"full"``/``"small"`` label), so the fingerprint describes the
        payload even if the scale presets drift between revisions.
        """
        scales = _SCALES[self.name][self.scale]
        return {
            "dataset": self.name,
            "scale": self.scale,
            "seed": self.seed,
            "catalog": _catalog_config(self.name, self.scale),
            "population": {
                "num_users": scales["num_users"],
                "num_orgs": scales["num_orgs"],
                "num_cities": scales["num_cities"],
            },
            "queries_per_user_mean": scales["queries"],
            "affinity": self.affinity,
        }

    def stage_key(
        self,
        stage: str,
        sources: Optional[KnowledgeSources] = None,
        uug_max_neighbors: int = 25,
        block_size: int = STREAM_BLOCK_SIZE,
    ) -> str:
        """Content fingerprint of one stage (no stage is materialized).

        Keys chain: ``split`` embeds the trace digest, ``ckg`` the split
        digest, ``graph`` the CKG digest — so any upstream config change
        re-keys the whole downstream suffix.  ``trace_stream`` keys the
        streamed trace's *manifest*; its per-block artifacts extend the same
        config with a ``block_index``.
        """
        if stage == "trace":
            return fingerprint("trace", {"recipe": self.recipe()}, SCHEMA_VERSIONS["trace"])
        if stage == "trace_stream":
            return fingerprint(
                "trace_stream",
                stream_config(self.recipe(), block_size),
                SCHEMA_VERSIONS["trace_stream"],
            )
        if stage == "split":
            return fingerprint(
                "split",
                {
                    "trace": self.stage_key("trace"),
                    "min_user_interactions": _MIN_USER_INTERACTIONS,
                    "min_item_interactions": _MIN_ITEM_INTERACTIONS,
                    "train_fraction": _TRAIN_FRACTION,
                },
                SCHEMA_VERSIONS["split"],
            )
        if sources is None:
            raise ValueError(f"stage {stage!r} requires a KnowledgeSources")
        ckg_config = {
            "split": self.stage_key("split"),
            "sources": sources,
            "uug_max_neighbors": uug_max_neighbors,
            "seed": self.seed,
        }
        if stage == "ckg":
            return fingerprint("ckg", ckg_config, SCHEMA_VERSIONS["ckg"])
        if stage == "graph":
            return fingerprint(
                "graph",
                {"ckg": fingerprint("ckg", ckg_config, SCHEMA_VERSIONS["ckg"])},
                SCHEMA_VERSIONS["graph"],
            )
        raise ValueError(f"unknown stage {stage!r}; expected one of {PIPELINE_STAGES}")

    def ref(self) -> DatasetRef:
        """The picklable handle for this pipeline's recipe."""
        return DatasetRef(
            name=self.name,
            scale=self.scale,
            seed=self.seed,
            cache_dir=str(self.store.root) if self.store is not None else None,
            affinity=self.affinity if self._explicit_affinity else None,
        )

    # ------------------------------------------------------------ stage engine
    def _stage(
        self,
        stage: str,
        memo_key: str,
        config: dict,
        build: Callable[[], object],
        serialize: Callable[[object], Tuple[Dict[str, np.ndarray], dict]],
        rehydrate: Callable[[Artifact], object],
    ):
        obj = self._memo.get(memo_key)
        if obj is not None:
            self._count(stage, "memo")
            return obj
        if self.store is not None:
            artifact = self.store.get(stage, config, SCHEMA_VERSIONS[stage])
            if artifact is not None:
                obj = rehydrate(artifact)
                self._count(stage, "loaded")
            else:
                obj = build()
                arrays, meta = serialize(obj)
                self.store.put(stage, config, SCHEMA_VERSIONS[stage], arrays, meta)
                self.store.builds += 1
                self._count(stage, "built")
        else:
            obj = build()
            self._count(stage, "built")
        self._memo[memo_key] = obj
        return obj

    def _count(self, stage: str, event: str) -> None:
        self.counters[stage][event] += 1
        _GLOBAL_COUNTERS[stage][event] += 1

    def stage_counters(self) -> Dict[str, Dict[str, int]]:
        """Copy of this pipeline's per-stage build accounting."""
        return {stage: dict(counts) for stage, counts in self.counters.items()}

    # -------------------------------------------------------- facility objects
    def facility(self) -> Tuple[FacilityCatalog, UserPopulation]:
        """Catalog + population, built lazily in-process (never cached).

        Only stage *builders* and direct inspection (``repro analyze``)
        need these; a fully warm run never calls this.
        """
        memo = self._memo.get("facility")
        if memo is None:
            seeds = SeedSequenceFactory(self.seed)
            scales = _SCALES[self.name][self.scale]
            if self.name == "ooi":
                catalog = build_ooi_catalog(
                    _catalog_config("ooi", self.scale), seed=seeds.get("catalog")
                )
            else:
                catalog = build_gage_catalog(
                    _catalog_config("gage", self.scale), seed=seeds.get("catalog")
                )
            population = build_user_population(
                catalog,
                num_users=scales["num_users"],
                num_orgs=scales["num_orgs"],
                num_cities=scales["num_cities"],
                seed=seeds.get("population"),
            )
            memo = (catalog, population)
            self._memo["facility"] = memo
        return memo

    # ----------------------------------------------------------------- stages
    def trace(self) -> QueryTrace:
        """Stage 1: the synthetic facility query trace."""

        def build() -> QueryTrace:
            catalog, population = self.facility()
            return generate_trace(
                catalog,
                population,
                self.affinity,
                seed=SeedSequenceFactory(self.seed).get("trace"),
                queries_per_user_mean=_SCALES[self.name][self.scale]["queries"],
            )

        def serialize(trace: QueryTrace):
            arrays = {
                "user_ids": trace.user_ids,
                "object_ids": trace.object_ids,
                "timestamps": trace.timestamps,
            }
            return arrays, {"num_users": trace.num_users, "num_objects": trace.num_objects}

        def rehydrate(artifact: Artifact) -> QueryTrace:
            return QueryTrace(
                user_ids=artifact.array("user_ids"),
                object_ids=artifact.array("object_ids"),
                timestamps=artifact.array("timestamps"),
                num_users=int(artifact.meta["num_users"]),
                num_objects=int(artifact.meta["num_objects"]),
            )

        return self._stage(
            "trace", "trace", {"recipe": self.recipe()}, build, serialize, rehydrate
        )

    def trace_stream(self, block_size: int = STREAM_BLOCK_SIZE) -> TraceReader:
        """Streamed variant of the trace stage: blocks, never the whole log.

        Unlike the classic stages this one is *incrementally* persisted —
        each user block lands in the store as it is generated, so a crash
        loses at most one block of work and peak memory never includes the
        full trace.  The warm path verifies the manifest plus every block
        before trusting the stream; any corruption degrades to a rebuild,
        exactly like a classic stage miss.  (Not routed through
        :meth:`_stage`, which is built around single-artifact stages.)
        """
        memo_key = f"trace_stream:{int(block_size)}"
        memo = self._memo.get(memo_key)
        if memo is not None:
            self._count("trace_stream", "memo")
            return memo
        recipe = self.recipe()
        reader: Optional[TraceReader] = None
        if self.store is not None:
            reader = load_trace_stream(self.store, recipe, block_size)
            if reader is not None:
                self._count("trace_stream", "loaded")
        if reader is None:
            catalog, population = self.facility()
            reader = stream_trace(
                catalog,
                population,
                self.affinity,
                seed=self.seed,
                queries_per_user_mean=_SCALES[self.name][self.scale]["queries"],
                block_size=block_size,
                store=self.store,
                recipe=recipe if self.store is not None else None,
            )
            if self.store is not None:
                self.store.builds += 1
            self._count("trace_stream", "built")
        self._memo[memo_key] = reader
        return reader

    def split(self) -> TrainTestSplit:
        """Stage 2: the per-user 80/20 interaction split."""
        config = {
            "trace": self.stage_key("trace"),
            "min_user_interactions": _MIN_USER_INTERACTIONS,
            "min_item_interactions": _MIN_ITEM_INTERACTIONS,
            "train_fraction": _TRAIN_FRACTION,
        }

        def build() -> TrainTestSplit:
            interactions = trace_to_interactions(
                self.trace(),
                min_user_interactions=_MIN_USER_INTERACTIONS,
                min_item_interactions=_MIN_ITEM_INTERACTIONS,
            )
            return per_user_split(
                interactions,
                train_fraction=_TRAIN_FRACTION,
                seed=SeedSequenceFactory(self.seed).get("split"),
            )

        def serialize(split: TrainTestSplit):
            arrays = {
                "train_users": split.train.user_ids,
                "train_items": split.train.item_ids,
                "test_users": split.test.user_ids,
                "test_items": split.test.item_ids,
            }
            meta = {"num_users": split.train.num_users, "num_items": split.train.num_items}
            return arrays, meta

        def rehydrate(artifact: Artifact) -> TrainTestSplit:
            num_users = int(artifact.meta["num_users"])
            num_items = int(artifact.meta["num_items"])
            return TrainTestSplit(
                train=InteractionDataset(
                    artifact.array("train_users"),
                    artifact.array("train_items"),
                    num_users,
                    num_items,
                ),
                test=InteractionDataset(
                    artifact.array("test_users"),
                    artifact.array("test_items"),
                    num_users,
                    num_items,
                ),
            )

        return self._stage("split", "split", config, build, serialize, rehydrate)

    def interactions(self) -> InteractionDataset:
        """The unsplit interaction set, reassembled from the split stage.

        ``InteractionDataset`` canonically sorts its pairs, so the train/test
        union is bit-identical to the pre-split dataset — no third artifact
        needed.
        """
        memo = self._memo.get("interactions")
        if memo is None:
            split = self.split()
            memo = InteractionDataset(
                np.concatenate([split.train.user_ids, split.test.user_ids]),
                np.concatenate([split.train.item_ids, split.test.item_ids]),
                split.train.num_users,
                split.train.num_items,
            )
            self._memo["interactions"] = memo
        return memo

    def ckg(
        self,
        sources: KnowledgeSources = KnowledgeSources.best(),
        uug_max_neighbors: int = 25,
    ) -> CollaborativeKnowledgeGraph:
        """Stage 3: the collaborative knowledge graph for one source combo."""
        config = {
            "split": self.stage_key("split"),
            "sources": sources,
            "uug_max_neighbors": uug_max_neighbors,
            "seed": self.seed,
        }
        memo_key = f"ckg:{canonical_json(config)}"

        def build() -> CollaborativeKnowledgeGraph:
            catalog, population = self.facility()
            split = self.split()
            return build_ckg(
                catalog,
                population,
                split.train.user_ids,
                split.train.item_ids,
                sources=sources,
                uug_max_neighbors=uug_max_neighbors,
                seed=self.seed,
            )

        def serialize(ckg: CollaborativeKnowledgeGraph):
            arrays = {
                "store_heads": ckg.store.heads,
                "store_rels": ckg.store.rels,
                "store_tails": ckg.store.tails,
                "prop_heads": ckg.propagation_store.heads,
                "prop_rels": ckg.propagation_store.rels,
                "prop_tails": ckg.propagation_store.tails,
            }
            meta = {
                "entity_blocks": ckg.space.blocks(),
                "store_relation_names": list(ckg.store.relations.names),
                "prop_relation_names": list(ckg.propagation_store.relations.names),
                "num_users": ckg.num_users,
                "num_items": ckg.num_items,
                "sources": dataclasses.asdict(sources),
                "catalog_name": ckg.catalog_name,
            }
            return arrays, meta

        def rehydrate(artifact: Artifact) -> CollaborativeKnowledgeGraph:
            meta = artifact.meta
            space = EntitySpace()
            for block_name, size in meta["entity_blocks"]:
                space.add_block(block_name, int(size))
            store = TripleStore(
                space.num_entities, RelationRegistry(meta["store_relation_names"])
            )
            store.heads = np.asarray(artifact.array("store_heads"))
            store.rels = np.asarray(artifact.array("store_rels"))
            store.tails = np.asarray(artifact.array("store_tails"))
            prop = TripleStore(
                space.num_entities, RelationRegistry(meta["prop_relation_names"])
            )
            prop.heads = np.asarray(artifact.array("prop_heads"))
            prop.rels = np.asarray(artifact.array("prop_rels"))
            prop.tails = np.asarray(artifact.array("prop_tails"))
            return CollaborativeKnowledgeGraph(
                space=space,
                store=store,
                num_users=int(meta["num_users"]),
                num_items=int(meta["num_items"]),
                sources=KnowledgeSources(**meta["sources"]),
                catalog_name=meta["catalog_name"],
                propagation_store=prop,
            )

        return self._stage("ckg", memo_key, config, build, serialize, rehydrate)

    def graph(
        self,
        sources: KnowledgeSources = KnowledgeSources.best(),
        uug_max_neighbors: int = 25,
    ) -> PreparedGraph:
        """Stage 4: the shared :class:`~repro.kg.prepared.PreparedGraph`."""
        config = {"ckg": self.stage_key("ckg", sources, uug_max_neighbors)}
        memo_key = f"graph:{canonical_json(config)}"

        def build() -> PreparedGraph:
            return PreparedGraph.from_ckg(self.ckg(sources, uug_max_neighbors))

        def serialize(graph: PreparedGraph):
            return graph.to_arrays()

        def rehydrate(artifact: Artifact) -> PreparedGraph:
            arrays = {name: artifact.array(name) for name in artifact.array_names()}
            return PreparedGraph.from_arrays(arrays, artifact.meta)

        return self._stage("graph", memo_key, config, build, serialize, rehydrate)

    # -------------------------------------------------------------- pickling
    def __getstate__(self):
        """Pickle the recipe, not the materializations.

        Memoized stage objects can hold memory maps and multi-MB arrays;
        a worker receiving this pipeline rebuilds (or re-loads) them
        deterministically, so shipping the recipe alone is lossless.
        """
        state = self.__dict__.copy()
        state["_memo"] = {}
        return state

    # ------------------------------------------------------------- diagnostics
    def describe(self) -> str:
        cache = str(self.store.root) if self.store is not None else "disabled"
        return (
            f"DatasetPipeline({self.name}/{self.scale}, seed={self.seed}, cache={cache})"
        )

    def __repr__(self) -> str:
        return self.describe()
