"""Staged, cacheable dataset construction: trace → split → CKG → graph.

The paper's pipeline is a strict DAG (Sections III–VI): facility query
traces feed the collaborative knowledge graph, the interaction split feeds
both training and evaluation, and every KG-aware model consumes the same
derived adjacency.  :class:`~repro.pipeline.stages.DatasetPipeline` makes
that DAG explicit — each stage is a pure function of its config, keyed into
a content-addressed :class:`~repro.store.ArtifactStore` so a warm run
regenerates nothing and memory-maps everything.
"""

from repro.pipeline.stages import (
    DatasetPipeline,
    DatasetRef,
    PIPELINE_STAGES,
    global_stage_counters,
    reset_global_stage_counters,
)

__all__ = [
    "DatasetPipeline",
    "DatasetRef",
    "PIPELINE_STAGES",
    "global_stage_counters",
    "reset_global_stage_counters",
]
