"""Online recommendation serving over frozen score indexes.

The batch pipeline trains models; this package serves them (ROADMAP item 1,
the paper's interactive data-discovery story).  A trained model freezes into
a :class:`~repro.serving.index.ScoreIndex` — two dense factor matrices plus
the train-exclusion CSR, persisted content-addressed through the artifact
store — and requests flow:

    HTTP (server) → micro-batch queue → RecommendService → fused masked_topk

New users without training history enter through the fold-in path
(:mod:`repro.serving.foldin`): mean-of-item-vectors warm start refined by a
few sparse-row BPR steps against the *frozen* item table, so serving never
mutates shared state.  See DESIGN.md §11.
"""

from repro.serving.cache import LRUCache
from repro.serving.client import ServingClient
from repro.serving.foldin import FoldInConfig, FoldInEngine
from repro.serving.index import ScoreIndex
from repro.serving.server import RecommendServer
from repro.serving.service import RecommendService

__all__ = [
    "FoldInConfig",
    "FoldInEngine",
    "LRUCache",
    "RecommendServer",
    "RecommendService",
    "ScoreIndex",
    "ServingClient",
]
