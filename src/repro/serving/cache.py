"""Small LRU cache with hit/miss/eviction counters.

Backs the serving layer's user-vector cache: index factor matrices are
memory-mapped from the artifact store, so a cache hit skips both the page
fault and the row copy.  Counters are exposed through ``/stats`` so cache
behavior is observable the same way the artifact store's is.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry on overflow.

    ``get`` refreshes recency; ``put`` of an existing key refreshes and
    replaces.  Not thread-safe — the serving layer touches it only from the
    event-loop thread.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value (refreshing recency), or ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/replace ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
