"""Request-level recommendation service over a frozen :class:`ScoreIndex`.

One :meth:`RecommendService.recommend_many` call scores a whole micro-batch
of requests — known users and fold-in handles mixed freely — through a
single fused-kernel invocation per distinct ``k``.  Sub-batching by ``k``
is a correctness decision, not a convenience: selecting ``k_max`` candidates
and truncating each row to its own ``k`` is *not* tie-identical to selecting
``k`` directly (``argpartition`` may admit a different member of a tied
cohort at the wider cut), and the service promises batched responses
bit-identical to single-request scoring.

Known users resolve their vector through an LRU cache (copying the row out
of the memory-mapped index once), and their training positives are masked.
Fold-in users carry a private vector from :class:`FoldInEngine` and mask the
interactions they folded in on.  Every response row is truncated to its
real-candidate count and asserted finite — a masked id can never escape.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.cache import LRUCache
from repro.serving.foldin import FoldInConfig, FoldInEngine
from repro.serving.index import ScoreIndex

__all__ = ["RecommendService"]


class RecommendService:
    """Validates, batches, and scores recommendation requests."""

    def __init__(
        self,
        index: ScoreIndex,
        foldin_config: Optional[FoldInConfig] = None,
        cache_capacity: int = 512,
    ):
        self.index = index
        self.foldin = FoldInEngine(index, foldin_config or FoldInConfig())
        self.user_cache = LRUCache(cache_capacity)
        # handle -> (vector, observed item ids); private per-handle state,
        # never written back into the shared index.
        self._foldin_users: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self.requests_served = 0
        self.batches = 0
        self.kernel_calls = 0
        self.max_batch = 0

    # ------------------------------------------------------------ validation
    def validate_request(self, request: dict) -> None:
        """Raise ``ValueError`` for a malformed request dict.

        A request names exactly one of ``user`` (known id) or ``handle``
        (fold-in), plus a positive ``k``.  Called per request *before*
        batching so one bad request 400s alone instead of failing its batch.
        """
        has_user = request.get("user") is not None
        has_handle = request.get("handle") is not None
        if has_user == has_handle:
            raise ValueError("request must name exactly one of 'user' or 'handle'")
        if has_user:
            user = int(request["user"])
            if not 0 <= user < self.index.num_users:
                raise ValueError(
                    f"user {user} out of range [0, {self.index.num_users})"
                )
        else:
            handle = str(request["handle"])
            if handle not in self._foldin_users:
                raise ValueError(f"unknown fold-in handle {handle!r}")
        k = int(request.get("k", 0))
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")

    # --------------------------------------------------------------- fold-in
    def fold_in(self, item_ids) -> str:
        """Embed a new user from observed interactions; returns a handle.

        The handle is content-derived (seed + sorted item ids), so folding
        in the same interaction set — in any order, before or after a
        restart — yields the same handle and the same vector.  Observing
        *more* interactions mints a new handle with a refreshed embedding.
        """
        items = np.unique(np.asarray(item_ids, dtype=np.int64))
        vector = self.foldin.embed(items)  # validates ids
        key = f"{self.foldin.config.seed}:" + ",".join(str(i) for i in items.tolist())
        handle = "foldin-" + hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
        self._foldin_users[handle] = (vector, items)
        return handle

    def foldin_handles(self) -> List[str]:
        return sorted(self._foldin_users)

    # ------------------------------------------------------------- resolution
    def _user_vector(self, user: int) -> np.ndarray:
        cached = self.user_cache.get(user)
        if cached is not None:
            return cached
        vector = np.array(self.index.user_vecs[user], dtype=np.float64)
        self.user_cache.put(user, vector)
        return vector

    def _resolve(self, request: dict) -> Tuple[np.ndarray, np.ndarray]:
        """(vector, exclusion item ids) for one validated request."""
        if request.get("user") is not None:
            user = int(request["user"])
            return self._user_vector(user), self.index.seen_items(user)
        vector, observed = self._foldin_users[str(request["handle"])]
        return vector, observed

    # ---------------------------------------------------------------- scoring
    def recommend_many(self, requests: List[dict]) -> List[dict]:
        """Score a micro-batch; responses align with ``requests``.

        Each response carries the request identity, the effective ``k``, and
        parallel ``items``/``scores`` lists truncated to real candidates.
        """
        for request in requests:
            self.validate_request(request)
        responses: List[Optional[dict]] = [None] * len(requests)
        by_k: Dict[int, List[int]] = {}
        for i, request in enumerate(requests):
            k = min(int(request["k"]), self.index.num_items)
            by_k.setdefault(k, []).append(i)
        for k, members in by_k.items():
            vecs = np.empty((len(members), self.index.dim), dtype=np.float64)
            excludes = []
            for row, i in enumerate(members):
                vector, seen = self._resolve(requests[i])
                vecs[row] = vector
                excludes.append(np.asarray(seen, dtype=np.int64))
            indptr = np.zeros(len(members) + 1, dtype=np.int64)
            np.cumsum([e.size for e in excludes], out=indptr[1:])
            indices = (
                np.concatenate(excludes) if indptr[-1] else np.empty(0, dtype=np.int64)
            )
            ids, scores, valid = self.index.topk_vectors(vecs, k, indptr, indices)
            self.kernel_calls += 1
            for row, i in enumerate(members):
                n = int(valid[row])
                row_scores = scores[row, :n]
                if not np.isfinite(row_scores).all():
                    raise AssertionError(
                        "masked (-inf) candidate survived into a response row — "
                        "valid-count truncation contract violated"
                    )
                response = {
                    "k": k,
                    "items": ids[row, :n].tolist(),
                    "scores": row_scores.tolist(),
                }
                if requests[i].get("user") is not None:
                    response["user"] = int(requests[i]["user"])
                else:
                    response["handle"] = str(requests[i]["handle"])
                responses[i] = response
        self.requests_served += len(requests)
        self.batches += 1
        self.max_batch = max(self.max_batch, len(requests))
        return responses  # type: ignore[return-value]

    def recommend_one(self, request: dict) -> dict:
        """Single-request path; by construction identical to batch member."""
        return self.recommend_many([request])[0]

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "batches": self.batches,
            "kernel_calls": self.kernel_calls,
            "max_batch": self.max_batch,
            "foldin_users": len(self._foldin_users),
            "user_cache": self.user_cache.stats(),
            "index": {
                "num_users": self.index.num_users,
                "num_items": self.index.num_items,
                "dim": self.index.dim,
            },
        }
