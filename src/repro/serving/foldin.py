"""Fold-in: embed a brand-new user against the frozen item table.

A facility user with no training history sends their first few interactions;
retraining the model for them is off the table at serving time.  Instead the
engine places them in the *existing* embedding space:

1. **Warm start** — the mean of the observed items' frozen vectors, i.e. the
   centroid of what they touched.  Already a usable query point.
2. **Refinement** — a few BPR gradient steps on a one-row parameter table,
   gathered through ``take_rows`` so the update flows down the sparse-row
   optimizer path (the same machinery training uses), against *frozen* item
   vectors held as constants.

The item table stays frozen on purpose: serving-time updates to shared item
vectors would silently shift every other user's rankings and break the
bit-identity contract between the frozen index and offline evaluation.  The
new user's vector is private state; nothing global moves.

Determinism: the negative-sampling RNG is seeded from the engine seed plus a
hash of the (sorted, deduplicated) observed item ids, so folding in the same
interaction set always yields the same vector — restarts included.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.serving.index import ScoreIndex

__all__ = ["FoldInConfig", "FoldInEngine"]


@dataclasses.dataclass(frozen=True)
class FoldInConfig:
    """Refinement hyperparameters; defaults tuned for a handful of items."""

    steps: int = 15
    lr: float = 0.05
    l2: float = 1e-4
    negatives_per_pos: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.steps < 0:
            raise ValueError(f"steps must be >= 0, got {self.steps}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.l2 < 0:
            raise ValueError(f"l2 must be nonnegative, got {self.l2}")
        if self.negatives_per_pos <= 0:
            raise ValueError(
                f"negatives_per_pos must be positive, got {self.negatives_per_pos}"
            )


class FoldInEngine:
    """Embeds new users into a :class:`ScoreIndex`'s factor space."""

    def __init__(self, index: ScoreIndex, config: FoldInConfig = FoldInConfig()):
        self.index = index
        self.config = config

    def _rng(self, items: np.ndarray) -> np.random.Generator:
        key = f"{self.config.seed}:" + ",".join(str(i) for i in items.tolist())
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def _sample_negatives(
        self, rng: np.random.Generator, observed: set, count: int
    ) -> np.ndarray:
        """Rejection-sample item ids outside ``observed``."""
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = rng.integers(0, self.index.num_items, size=count - filled)
            keep = draw[[int(d) not in observed for d in draw]]
            out[filled : filled + keep.size] = keep
            filled += keep.size
        return out

    def embed(self, item_ids) -> np.ndarray:
        """Return a ``(dim,)`` user vector for the observed ``item_ids``."""
        items = np.unique(np.asarray(item_ids, dtype=np.int64))
        if items.size == 0:
            raise ValueError("fold-in requires at least one observed item")
        if items[0] < 0 or items[-1] >= self.index.num_items:
            raise ValueError(
                f"fold-in item ids outside [0, {self.index.num_items}): "
                f"{items[(items < 0) | (items >= self.index.num_items)].tolist()[:10]}"
            )
        item_table = np.asarray(self.index.item_vecs)
        warm = item_table[items].mean(axis=0)
        if self.config.steps == 0:
            return np.ascontiguousarray(warm, dtype=np.float64)
        if items.size >= self.index.num_items:
            # Every item observed: no negatives exist, BPR is undefined.
            return np.ascontiguousarray(warm, dtype=np.float64)
        rng = self._rng(items)
        observed = set(items.tolist())
        user_table = Parameter(warm[None, :].copy(), name="foldin.user")
        optimizer = Adam([user_table], lr=self.config.lr)
        reps = self.config.negatives_per_pos
        pos = np.repeat(items, reps)
        row_ids = np.zeros(pos.size, dtype=np.int64)
        for _ in range(self.config.steps):
            neg = self._sample_negatives(rng, observed, pos.size)
            # take_rows on the leaf table emits a SparseRowGrad, exercising
            # the sparse-row optimizer dispatch exactly like training does.
            u = F.take_rows(user_table, row_ids)
            pos_scores = F.sum(F.mul(u, Tensor(item_table[pos])), axis=1)
            neg_scores = F.sum(F.mul(u, Tensor(item_table[neg])), axis=1)
            loss = F.bpr_loss(pos_scores, neg_scores)
            if self.config.l2:
                loss = F.add(loss, F.mul(Tensor(self.config.l2), F.squared_norm(u)))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return np.ascontiguousarray(user_table.data[0], dtype=np.float64)
