"""Minimal asyncio HTTP/1.1 keep-alive client for the recommend server.

Exists for tests and the throughput benchmark: stdlib-only, one persistent
connection per instance, strictly sequential request/response per
connection (open several clients for concurrency).  Not a general HTTP
client — it speaks exactly the dialect :mod:`repro.serving.server` emits
(``Content-Length`` JSON bodies, no chunked encoding).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple
from urllib.parse import quote

__all__ = ["ServingClient"]


class ServingClient:
    """One keep-alive connection to a :class:`RecommendServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServingClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServingClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False

    # ------------------------------------------------------------------ verbs
    async def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """Issue one request; returns ``(status, parsed JSON body)``."""
        if self._writer is None:
            await self.connect()
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split(b" ", 2)[1])
        content_length = 0
        while True:
            header = await self._reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        raw = await self._reader.readexactly(content_length) if content_length else b""
        return status, json.loads(raw.decode("utf-8") or "{}")

    async def get(self, path: str) -> Tuple[int, dict]:
        return await self.request("GET", path)

    async def post(self, path: str, payload: dict) -> Tuple[int, dict]:
        return await self.request("POST", path, payload)

    # ------------------------------------------------------------- convenience
    async def recommend(
        self,
        user: Optional[int] = None,
        handle: Optional[str] = None,
        k: int = 10,
    ) -> Tuple[int, dict]:
        if (user is None) == (handle is None):
            raise ValueError("pass exactly one of user or handle")
        who = f"user={user}" if user is not None else f"handle={quote(str(handle))}"
        return await self.get(f"/recommend?{who}&k={k}")

    async def fold_in(self, items) -> Tuple[int, dict]:
        return await self.post("/foldin", {"items": [int(i) for i in items]})
