"""Frozen score index: a trained model compiled into two dense matrices.

A :class:`ScoreIndex` is the serving-side artifact of a training run: the
``(num_users, d)`` / ``(num_items, d)`` factor matrices a model exposes via
``scoring_factors()`` (for CKAT these are the layer-concat e* vectors after
propagation), plus the training-interaction CSR used as the exclusion mask.
Freezing happens once, at startup or offline; every request afterwards is a
block of inner products — no graph, no autograd, no model object.

Indexes persist through the content-addressed
:class:`~repro.store.artifacts.ArtifactStore` (kind ``score_index``): the
fingerprint covers the *builder config* (model/dataset/seed/epochs or
checkpoint), the arrays are uncompressed ``.npy`` served memory-mapped, and
a restarted server can reload by digest with neither the original dataset
nor the model code path present (see :meth:`ScoreIndex.by_digest`).

Retrieval routes through the fused ``masked_topk`` kernel via the dispatch
funnel — the exact score → negate → mask → top-k chain the evaluator uses,
so serving results are bit-identical to offline evaluation rankings.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels import dispatch
from repro.store import Artifact, ArtifactStore

__all__ = ["ScoreIndex"]

#: Every fused-kernel call is padded to exactly this many rows.  BLAS GEMM
#: picks different micro-kernels for different M geometries (an M=1 call
#: takes the GEMV path), and the tails differ in the final ulp — so "the
#: same user in a different batch" would score differently and break the
#: batched == single bit-identity contract.  At a *fixed* M that is a
#: multiple of the micro-kernel tile, each output row is a pure function of
#: its own input row (value- and position-independent; asserted by the
#: serving tests), so padding every call to one constant geometry makes the
#: ranking independent of how requests were coalesced.  Batches larger than
#: this are processed in padded blocks of this size.
_PAD_ROWS = 32


class ScoreIndex:
    """Precomputed user/item factor matrices plus the train-exclusion CSR.

    Scores factor as ``user_vecs[u] @ item_vecs.T``; the CSR
    (``train_indptr``/``train_indices``) lists each user's training positives,
    masked out of every response exactly as evaluation masks them.
    """

    KIND = "score_index"
    SCHEMA_VERSION = 1

    def __init__(
        self,
        user_vecs: np.ndarray,
        item_vecs: np.ndarray,
        train_indptr: np.ndarray,
        train_indices: np.ndarray,
        meta: Optional[dict] = None,
    ):
        user_vecs = np.asarray(user_vecs)
        item_vecs = np.asarray(item_vecs)
        if user_vecs.ndim != 2 or item_vecs.ndim != 2:
            raise ValueError("user_vecs and item_vecs must be 2-D factor matrices")
        if user_vecs.shape[1] != item_vecs.shape[1]:
            raise ValueError(
                f"factor dim mismatch: user {user_vecs.shape} vs item {item_vecs.shape}"
            )
        train_indptr = np.asarray(train_indptr, dtype=np.int64)
        train_indices = np.asarray(train_indices, dtype=np.int64)
        if train_indptr.shape != (user_vecs.shape[0] + 1,):
            raise ValueError(
                f"train_indptr must have num_users+1 entries, got {train_indptr.shape}"
            )
        if train_indices.size and (
            train_indices.min() < 0 or train_indices.max() >= item_vecs.shape[0]
        ):
            raise ValueError("train_indices contains item ids outside the index")
        self.user_vecs = user_vecs
        self.item_vecs = item_vecs
        self.train_indptr = train_indptr
        self.train_indices = train_indices
        self.meta = dict(meta or {})
        self._neg_buf: Optional[np.ndarray] = None
        self._valid_buf: Optional[np.ndarray] = None
        self._pad_vecs: Optional[np.ndarray] = None

    # ------------------------------------------------------------ properties
    @property
    def num_users(self) -> int:
        return self.user_vecs.shape[0]

    @property
    def num_items(self) -> int:
        return self.item_vecs.shape[0]

    @property
    def dim(self) -> int:
        return self.item_vecs.shape[1]

    def seen_items(self, user: int) -> np.ndarray:
        """Training positives of ``user`` (the ids masked from its responses)."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range [0, {self.num_users})")
        return self.train_indices[self.train_indptr[user] : self.train_indptr[user + 1]]

    # ---------------------------------------------------------------- freeze
    @classmethod
    def from_model(cls, model, train, meta: Optional[dict] = None) -> "ScoreIndex":
        """Freeze a trained :class:`~repro.models.base.Recommender`.

        Requires ``scoring_factors()`` (CKAT, BPRMF, CKE, CFKG — every model
        the evaluator fast-paths); ``train`` supplies the exclusion CSR.
        Factors are copied to contiguous float64 so the frozen index is
        independent of the live model's parameter buffers.
        """
        factors = model.scoring_factors()
        if factors is None:
            raise ValueError(
                f"{type(model).__name__} does not expose scoring_factors(); "
                "only inner-product-factorable models can be frozen into a "
                "ScoreIndex"
            )
        user_vecs, item_vecs = factors
        if train.num_users != user_vecs.shape[0] or train.num_items != item_vecs.shape[0]:
            raise ValueError(
                f"dataset shape ({train.num_users}×{train.num_items}) does not match "
                f"factors ({user_vecs.shape[0]}×{item_vecs.shape[0]})"
            )
        info = {"model": getattr(model, "name", type(model).__name__), "dim": user_vecs.shape[1]}
        info.update(meta or {})
        # np.array (not ascontiguousarray) to force a copy even when the
        # factors are already contiguous float64 — BPRMF hands back its live
        # parameter tables, and an aliased index would drift if the model
        # kept training.
        return cls(
            np.array(user_vecs, dtype=np.float64, order="C"),
            np.array(item_vecs, dtype=np.float64, order="C"),
            train.user_offsets,
            train.item_ids,
            meta=info,
        )

    # --------------------------------------------------------------- persist
    def _arrays(self) -> Dict[str, np.ndarray]:
        return {
            "user_vecs": self.user_vecs,
            "item_vecs": self.item_vecs,
            "train_indptr": self.train_indptr,
            "train_indices": self.train_indices,
        }

    def save(self, store: ArtifactStore, config: dict) -> Artifact:
        """Persist under ``config``'s content address; returns the artifact."""
        return store.put(self.KIND, config, self.SCHEMA_VERSION, self._arrays(), meta=self.meta)

    @classmethod
    def from_artifact(cls, artifact: Artifact) -> "ScoreIndex":
        """Rehydrate from a store entry; arrays stay memory-mapped."""
        return cls(
            artifact.array("user_vecs"),
            artifact.array("item_vecs"),
            artifact.array("train_indptr"),
            artifact.array("train_indices"),
            meta=artifact.meta,
        )

    @classmethod
    def load(cls, store: ArtifactStore, config: dict) -> Optional["ScoreIndex"]:
        """Load the index frozen under ``config``; ``None`` on miss."""
        artifact = store.get(cls.KIND, config, cls.SCHEMA_VERSION)
        return None if artifact is None else cls.from_artifact(artifact)

    @classmethod
    def by_digest(cls, store: ArtifactStore, digest_prefix: str) -> Optional["ScoreIndex"]:
        """Load by (a unique prefix of) the artifact digest.

        This is the kill-and-restart path: a server restarted with only the
        store and a digest reloads the exact frozen index without the
        original dataset, model code, or builder config at hand.
        """
        matches = [
            info for info in store.ls([cls.KIND]) if info.digest.startswith(digest_prefix)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise ValueError(
                f"digest prefix {digest_prefix!r} is ambiguous: "
                f"{[m.digest[:16] for m in matches]}"
            )
        artifact = store.get(cls.KIND, matches[0].config, cls.SCHEMA_VERSION)
        return None if artifact is None else cls.from_artifact(artifact)

    # -------------------------------------------------------------- retrieval
    def _buffers(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._neg_buf is None:
            self._neg_buf = np.empty((_PAD_ROWS, self.num_items), dtype=np.float64)
            self._valid_buf = np.empty(_PAD_ROWS, dtype=np.int64)
            self._pad_vecs = np.zeros((_PAD_ROWS, self.dim), dtype=np.float64)
        return self._neg_buf, self._valid_buf, self._pad_vecs

    def topk_vectors(
        self,
        vecs: np.ndarray,
        k: int,
        exclude_indptr: np.ndarray,
        exclude_indices: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rank arbitrary ``(B, d)`` user vectors against the frozen items.

        ``exclude_indptr``/``exclude_indices`` is a per-row CSR of item ids
        to mask (+inf) before selection — training positives for known users,
        observed interactions for fold-in users.  Returns ``(ids, scores,
        valid)``: ``(B, k)`` item ids best-first, their scores, and per-row
        counts of *real* (unmasked) candidates; entries past ``valid[i]`` are
        masked filler carrying ``-inf`` scores.

        Bit-identity contract: every fused-kernel call is padded to the
        fixed ``_PAD_ROWS`` geometry (larger batches go in padded blocks),
        so a row's ids *and scores* are byte-equal no matter which batch it
        rode in — the property the micro-batching front end and the offline
        parity tests both rely on.
        """
        vecs = np.ascontiguousarray(vecs, dtype=np.float64)
        exclude_indptr = np.asarray(exclude_indptr, dtype=np.int64)
        exclude_indices = np.asarray(exclude_indices, dtype=np.int64)
        rows = vecs.shape[0]
        if not 0 < k <= self.num_items:
            raise ValueError(f"k must be in [1, {self.num_items}], got {k}")
        if exclude_indptr.shape != (rows + 1,):
            raise ValueError(
                f"exclude_indptr must have rows+1 = {rows + 1} entries, "
                f"got {exclude_indptr.shape}"
            )
        ids = np.empty((rows, k), dtype=np.int64)
        scores = np.empty((rows, k), dtype=np.float64)
        valid = np.empty(rows, dtype=np.int64)
        neg_buf, valid_buf, pad_vecs = self._buffers()
        pad_indptr = np.empty(_PAD_ROWS + 1, dtype=np.int64)
        row_idx = np.arange(_PAD_ROWS, dtype=np.int64)[:, None]
        for start in range(0, rows, _PAD_ROWS):
            stop = min(start + _PAD_ROWS, rows)
            block = stop - start
            pad_vecs[:block] = vecs[start:stop]
            pad_vecs[block:] = 0.0
            base = exclude_indptr[start]
            pad_indptr[: block + 1] = exclude_indptr[start : stop + 1] - base
            pad_indptr[block + 1 :] = pad_indptr[block]  # pad rows exclude nothing
            block_ids = dispatch.masked_topk(
                pad_vecs,
                self.item_vecs,
                k,
                neg_buf,
                pad_indptr,
                exclude_indices[base : exclude_indptr[stop]],
                np.arange(_PAD_ROWS, dtype=np.int64),
                valid_out=valid_buf,
            )
            # Masked columns hold +inf in the negated buffer; negating
            # recovers true scores with -inf flagging filler entries past
            # each row's valid count.
            ids[start:stop] = block_ids[:block]
            scores[start:stop] = -neg_buf[row_idx, block_ids][:block]
            valid[start:stop] = valid_buf[:block]
        return ids, scores, valid

    def topk_users(self, users: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-``k`` for known users, training positives excluded.

        Gathers each user's vector and training-CSR row, then scores through
        :meth:`topk_vectors` — one funnel, one padding policy, so bulk
        results match per-request results bit-for-bit.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            raise ValueError(f"user ids outside [0, {self.num_users})")
        deg = self.train_indptr[users + 1] - self.train_indptr[users]
        indptr = np.zeros(users.size + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        indices = np.concatenate(
            [self.seen_items(int(u)) for u in users]
        ) if users.size else np.empty(0, dtype=np.int64)
        return self.topk_vectors(self.user_vecs[users], k, indptr, indices)
