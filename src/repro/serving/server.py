"""Stdlib-asyncio HTTP front end with request micro-batching.

Single-threaded by design: connection handlers parse HTTP/1.1 (keep-alive)
and enqueue ``(request, Future)`` pairs; one batcher task drains the queue
and scores each drained group through
:meth:`~repro.serving.service.RecommendService.recommend_many`.

Micro-batching policy — *coalesce, never wait*: the batcher blocks only for
the first request, then drains whatever else is already queued (up to
``max_batch``).  An idle server adds zero latency; under load, the requests
that arrive while one batch is scoring form the next batch automatically, so
batch size grows exactly as fast as the server falls behind.  A timer-based
window would add its delay to every request to chase batches the backlog
already creates for free.

Routes (all JSON):

- ``GET /healthz``                     — liveness probe;
- ``GET /stats``                       — service + cache + batch counters;
- ``GET /recommend?user=U&k=K``        — top-K for a known user;
- ``GET /recommend?handle=H&k=K``      — top-K for a fold-in handle;
- ``POST /foldin`` ``{"items": [...]}``— embed a new user, returns a handle.

Telemetry: every request appends one JSONL event through the (lock-guarded)
:class:`~repro.utils.telemetry.RunLogger`, plus per-batch size events —
``repro report`` summarizes a serving log like any training log.  The
logger's locked file write must never run on the event loop, so all events
go through :meth:`RecommendServer._log`, which hops to a dedicated
single-worker executor: one worker drains submissions FIFO, so the JSONL
event order is exactly the submission order handlers would have produced
writing inline.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serving.service import RecommendService
from repro.utils.telemetry import RunLogger

__all__ = ["RecommendServer"]

_MAX_BODY_BYTES = 1 << 20


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _status_line(status: int) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}
    return f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n".encode("ascii")


class RecommendServer:
    """Serves a :class:`RecommendService` over HTTP with micro-batching."""

    def __init__(
        self,
        service: RecommendService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        logger: Optional[RunLogger] = None,
    ):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.service = service
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.logger = logger
        self._queue: "asyncio.Queue[Tuple[dict, asyncio.Future]]" = asyncio.Queue()
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher: Optional[asyncio.Task] = None
        self._log_pool: Optional[ThreadPoolExecutor] = None

    # ---------------------------------------------------------------- telemetry
    async def _log(self, event: str, **fields) -> None:
        """Append one telemetry event without blocking the event loop.

        :meth:`RunLogger.log` holds a lock around a file write; a single
        worker thread keeps events in submission order while the loop stays
        free to serve other connections.
        """
        if self.logger is None:
            return
        if self._log_pool is None:
            self._log_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-telemetry"
            )
        await asyncio.get_running_loop().run_in_executor(
            self._log_pool, functools.partial(self.logger.log, event, **fields)
        )

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns ``(host, port)`` actually bound."""
        self._server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        await self._log(
            "serve_start", host=self.host, port=self.port, max_batch=self.max_batch
        )
        return self.host, self.port

    async def stop(self) -> None:
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._log("serve_stop", **self.service.stats())
        if self._log_pool is not None:
            self._log_pool.shutdown(wait=True)
            self._log_pool = None

    async def run(self) -> None:
        """Start and serve until cancelled (the ``repro serve`` entry)."""
        await self.start()
        print(f"serving on http://{self.host}:{self.port} (Ctrl-C to stop)")
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------- micro-batch
    async def _batch_loop(self) -> None:
        while True:
            request, future = await self._queue.get()
            pending: List[Tuple[dict, asyncio.Future]] = [(request, future)]
            while len(pending) < self.max_batch:
                try:
                    pending.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            live = [(req, fut) for req, fut in pending if not fut.cancelled()]
            if not live:
                continue
            try:
                responses = self.service.recommend_many([req for req, _ in live])
            except Exception as exc:  # a batch-level fault fails its members
                for _, fut in live:
                    if not fut.done():
                        fut.set_exception(
                            _HttpError(500, f"{type(exc).__name__}: {exc}")
                        )
                continue
            for (_, fut), response in zip(live, responses):
                if not fut.done():
                    fut.set_result(response)
            await self._log("batch", size=len(live))

    # ------------------------------------------------------------------- routes
    async def _route(self, method: str, target: str, body: bytes) -> dict:
        parts = urlsplit(target)
        path = parts.path
        if method == "GET" and path == "/healthz":
            return {"ok": True}
        if method == "GET" and path == "/stats":
            return self.service.stats()
        if method == "GET" and path == "/recommend":
            query = parse_qs(parts.query)
            request: dict = {}
            try:
                if "user" in query:
                    request["user"] = int(query["user"][0])
                if "handle" in query:
                    request["handle"] = query["handle"][0]
                request["k"] = int(query.get("k", ["10"])[0])
            except (TypeError, ValueError):
                raise _HttpError(400, "user and k must be integers") from None
            try:
                self.service.validate_request(request)
            except ValueError as exc:
                raise _HttpError(400, str(exc)) from None
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            await self._queue.put((request, future))
            return await future
        if method == "POST" and path == "/foldin":
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
                items = payload["items"]
            except (ValueError, KeyError, UnicodeDecodeError):
                raise _HttpError(400, "body must be JSON with an 'items' list") from None
            if not isinstance(items, list) or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in items
            ):
                raise _HttpError(400, "'items' must be a list of integer item ids")
            try:
                handle = self.service.fold_in(items)
            except ValueError as exc:
                raise _HttpError(400, str(exc)) from None
            return {"handle": handle, "observed": len(set(items))}
        raise _HttpError(404, f"no route for {method} {path}")

    # --------------------------------------------------------------- connection
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = (
                        request_line.decode("ascii").strip().split(" ", 2)
                    )
                except (UnicodeDecodeError, ValueError):
                    await self._respond(writer, 400, {"error": "malformed request line"})
                    break
                content_length = 0
                keep_alive = True
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode("latin-1").partition(":")
                    name = name.strip().lower()
                    value = value.strip()
                    if name == "content-length":
                        content_length = int(value)
                    elif name == "connection" and value.lower() == "close":
                        keep_alive = False
                if content_length > _MAX_BODY_BYTES:
                    await self._respond(writer, 400, {"error": "body too large"})
                    break
                body = await reader.readexactly(content_length) if content_length else b""
                start = time.perf_counter()
                try:
                    payload = await self._route(method, target, body)
                    status = 200
                except _HttpError as exc:
                    payload = {"error": exc.message}
                    status = exc.status
                await self._log(
                    "request",
                    method=method,
                    path=urlsplit(target).path,
                    status=status,
                    seconds=time.perf_counter() - start,
                )
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = True,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        connection = b"keep-alive" if keep_alive else b"close"
        writer.write(
            _status_line(status)
            + b"Content-Type: application/json\r\n"
            + b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
            + b"Connection: " + connection + b"\r\n\r\n"
            + body
        )
        await writer.drain()
