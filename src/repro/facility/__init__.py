"""Synthetic large-science-facility simulators.

The paper analyzes one-year proprietary query traces from two real NSF
facilities — the Ocean Observatories Initiative (OOI) and the Geodetic
Facility for the Advancement of Geoscience (GAGE).  Those traces are not
publicly available, so this subpackage builds the closest synthetic
equivalent (see DESIGN.md §2):

- :mod:`~repro.facility.geo` — coordinates, haversine distance, named regions;
- :mod:`~repro.facility.catalog` — the facility schema (sites, instrument
  classes, data types, disciplines, data objects) and the
  :class:`~repro.facility.catalog.FacilityCatalog` container;
- :mod:`~repro.facility.ooi` / :mod:`~repro.facility.gage` — parametric
  builders producing OOI-like and GAGE-like catalogs whose scale matches the
  paper's Table I;
- :mod:`~repro.facility.users` — organizations and user populations with
  geographic placement;
- :mod:`~repro.facility.affinity` — the Section-III affinity model
  (instrument locality, data-domain, user association) as an explicit,
  parameterized object;
- :mod:`~repro.facility.trace` — the query-trace generator driven by the
  affinity model, producing :class:`~repro.facility.trace.QueryTrace`.

The generators are calibrated so the statistics the paper *measures* on its
traces (Fig 3 heavy-tailed per-user query distributions, the 43.1%/36.3%
same-region and 51.6%/68.8% same-data-type query fractions, Fig 5 same-city
likelihood ratios) re-emerge when the analysis code in :mod:`repro.analysis`
is run on the synthetic traces.
"""

from repro.facility.affinity import AffinityModel
from repro.facility.catalog import (
    DataObject,
    DataType,
    FacilityCatalog,
    Instrument,
    InstrumentClass,
    Site,
)
from repro.facility.gage import GAGEConfig, build_gage_catalog
from repro.facility.geo import GeoPoint, Region, haversine_km
from repro.facility.ooi import OOIConfig, build_ooi_catalog
from repro.facility.stream import TraceBlock, TraceReader, load_trace_stream, stream_trace
from repro.facility.temporal import SessionConfig, add_session_structure
from repro.facility.trace import QueryTrace, TraceGenerator, generate_trace
from repro.facility.users import Organization, UserPopulation, build_user_population

__all__ = [
    "GeoPoint",
    "Region",
    "haversine_km",
    "DataType",
    "InstrumentClass",
    "Site",
    "Instrument",
    "DataObject",
    "FacilityCatalog",
    "OOIConfig",
    "build_ooi_catalog",
    "GAGEConfig",
    "build_gage_catalog",
    "Organization",
    "UserPopulation",
    "build_user_population",
    "AffinityModel",
    "QueryTrace",
    "TraceGenerator",
    "generate_trace",
    "TraceBlock",
    "TraceReader",
    "stream_trace",
    "load_trace_stream",
    "SessionConfig",
    "add_session_structure",
]
