"""Synthetic user population for facility query traces.

The paper identifies users by public IP and geolocates them to city
granularity; users from the same institution share a subnet (Section III-B).
We model this directly: a population of *organizations* (research groups at
universities/institutes), each placed in a city, with member users.  Users
inherit their organization's city, and each organization carries a research
*focus* — a home region and home discipline/data-type distribution — which is
what makes same-organization (and, because organizations dominate cities,
same-city) users query alike.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.utils.rng import ensure_rng

__all__ = ["Organization", "UserPopulation", "build_user_population"]


@dataclasses.dataclass(frozen=True)
class Organization:
    """A research group: city-located, with a facility-research focus.

    ``focus_region`` / ``focus_site`` / ``focus_dtype`` index into the
    facility catalog's regions, sites and data types; they parameterize the
    affinity model.  The focus site lies within the focus region (a group
    studying the Axial Seamount watches specific moorings there).
    """

    org_id: int
    name: str
    city_id: int
    focus_region: int
    focus_site: int
    focus_dtype: int
    weight: float  # relative user-count weight (Zipf-like across orgs)


class UserPopulation:
    """The ``U`` of Section IV, with organization and city structure.

    Attributes (all integer-coded NumPy arrays of length ``num_users``):

    - ``user_org`` — organization id per user;
    - ``user_city`` — city id per user (inherited from the organization);
    - ``user_focus_region`` / ``user_focus_dtype`` — per-user focus, equal to
      the organization's focus for most users with a small fraction of
      individual deviation (not every member works on the group's main
      project).
    """

    def __init__(
        self,
        organizations: Sequence[Organization],
        user_org: np.ndarray,
        user_focus_region: np.ndarray,
        user_focus_dtype: np.ndarray,
        city_names: Sequence[str],
        user_focus_site: Optional[np.ndarray] = None,
    ):
        self.organizations = list(organizations)
        self.user_org = np.asarray(user_org, dtype=np.int64)
        self.user_focus_region = np.asarray(user_focus_region, dtype=np.int64)
        self.user_focus_dtype = np.asarray(user_focus_dtype, dtype=np.int64)
        if self.user_org.size and (
            self.user_org.min() < 0 or self.user_org.max() >= len(self.organizations)
        ):
            raise ValueError("user_org references unknown organization")
        if user_focus_site is None:
            org_site = np.array([o.focus_site for o in self.organizations], dtype=np.int64)
            user_focus_site = org_site[self.user_org]
        self.user_focus_site = np.asarray(user_focus_site, dtype=np.int64)
        self.city_names = list(city_names)
        org_city = np.array([o.city_id for o in self.organizations], dtype=np.int64)
        self.user_city = org_city[self.user_org]
        if not (
            len(self.user_org)
            == len(self.user_focus_region)
            == len(self.user_focus_dtype)
            == len(self.user_focus_site)
        ):
            raise ValueError("user attribute arrays must have equal length")
        if self.user_org.size and self.user_org.max() >= len(self.organizations):
            raise ValueError("user_org references unknown organization")

    @property
    def num_users(self) -> int:
        return len(self.user_org)

    @property
    def num_orgs(self) -> int:
        return len(self.organizations)

    @property
    def num_cities(self) -> int:
        return len(self.city_names)

    def users_of_org(self, org_id: int) -> np.ndarray:
        """Indices of the users belonging to ``org_id``."""
        return np.flatnonzero(self.user_org == org_id)

    def users_of_city(self, city_id: int) -> np.ndarray:
        """Indices of the users located in ``city_id``."""
        return np.flatnonzero(self.user_city == city_id)

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"{self.num_users} users in {self.num_orgs} organizations "
            f"across {self.num_cities} cities"
        )


def build_user_population(
    catalog: FacilityCatalog,
    num_users: int,
    num_orgs: int,
    seed=0,
    num_cities: Optional[int] = None,
    org_zipf_exponent: float = 1.1,
    individual_deviation: float = 0.15,
    city_shared_focus: bool = True,
    focus_popularity_power: float = 0.5,
) -> UserPopulation:
    """Generate a user population for ``catalog``.

    Parameters
    ----------
    catalog:
        The facility whose regions/data types organizations focus on.
    num_users, num_orgs:
        Population scale.  Organization sizes follow a Zipf-like law with
        exponent ``org_zipf_exponent`` (a few large groups, many small ones),
        matching the heavy-tailed per-user query counts of Fig 3.
    num_cities:
        Number of distinct user cities; defaults to ``max(num_orgs // 2, 1)``
        so that most cities host 1–3 organizations (the paper's same-city
        signal is driven by institutional co-location).
    individual_deviation:
        Probability that a user's personal focus differs from the
        organization's (resampled uniformly).
    city_shared_focus:
        When True (default) every organization in a city shares the city's
        research focus — institutional co-location correlates with research
        topic (the mechanism behind the paper's Fig-5 same-city likelihood
        ratios).  When False each organization draws its own focus.
    focus_popularity_power:
        Exponent tempering the popularity weighting of focus draws; 1.0
        follows object counts, 0.0 is uniform.  Lower values diversify
        focuses across the population, lowering the random-pair match
        probability in the Fig-5 study.
    """
    if num_orgs <= 0 or num_users <= 0:
        raise ValueError("num_users and num_orgs must be positive")
    if num_users < num_orgs:
        raise ValueError(f"num_users={num_users} must be >= num_orgs={num_orgs}")
    if not 0.0 <= individual_deviation <= 1.0:
        raise ValueError(f"individual_deviation must be in [0,1], got {individual_deviation}")
    rng = ensure_rng(seed)
    n_cities = num_cities if num_cities is not None else max(num_orgs // 2, 1)

    # Region focus is weighted by (tempered) data-object counts per region
    # (groups study where the data is); data-type focus likewise.
    region_weights = _count_weights(
        catalog.object_region, catalog.num_regions, focus_popularity_power
    )
    dtype_weights = _count_weights(
        catalog.object_dtype, catalog.num_data_types, focus_popularity_power
    )

    def draw_focus() -> tuple:
        region = int(rng.choice(catalog.num_regions, p=region_weights))
        region_sites = np.flatnonzero(catalog.site_region == region)
        if region_sites.size == 0:
            region_sites = np.arange(catalog.num_sites)
        site = int(rng.choice(region_sites))
        dtype = int(rng.choice(catalog.num_data_types, p=dtype_weights))
        return region, site, dtype

    city_focus = [draw_focus() for _ in range(n_cities)]
    city_of_org = rng.integers(0, n_cities, size=num_orgs)
    organizations: List[Organization] = []
    ranks = np.arange(1, num_orgs + 1, dtype=np.float64)
    weights = ranks**-org_zipf_exponent
    weights /= weights.sum()
    for org_id in range(num_orgs):
        city = int(city_of_org[org_id])
        focus_region, focus_site, focus_dtype = (
            city_focus[city] if city_shared_focus else draw_focus()
        )
        organizations.append(
            Organization(
                org_id=org_id,
                name=f"Org{org_id:03d}",
                city_id=city,
                focus_region=focus_region,
                focus_site=focus_site,
                focus_dtype=focus_dtype,
                weight=float(weights[org_id]),
            )
        )

    # Assign users: one guaranteed member per org, the rest multinomial by
    # org weight.
    extra = rng.multinomial(num_users - num_orgs, weights)
    user_org = np.repeat(np.arange(num_orgs), 1 + extra)
    rng.shuffle(user_org)

    org_focus_region = np.array([o.focus_region for o in organizations])
    org_focus_site = np.array([o.focus_site for o in organizations])
    org_focus_dtype = np.array([o.focus_dtype for o in organizations])
    user_focus_region = org_focus_region[user_org].copy()
    user_focus_site = org_focus_site[user_org].copy()
    user_focus_dtype = org_focus_dtype[user_org].copy()
    deviants = rng.random(num_users) < individual_deviation
    n_dev = int(deviants.sum())
    if n_dev:
        dev_regions = rng.choice(catalog.num_regions, size=n_dev, p=region_weights)
        user_focus_region[deviants] = dev_regions
        dev_idx = np.flatnonzero(deviants)
        for di, region in zip(dev_idx, dev_regions):
            region_sites = np.flatnonzero(catalog.site_region == region)
            if region_sites.size == 0:
                region_sites = np.arange(catalog.num_sites)
            user_focus_site[di] = int(rng.choice(region_sites))
        user_focus_dtype[deviants] = rng.choice(catalog.num_data_types, size=n_dev, p=dtype_weights)

    city_names = [f"{catalog.name} User City {c}" for c in range(n_cities)]
    return UserPopulation(
        organizations,
        user_org,
        user_focus_region,
        user_focus_dtype,
        city_names,
        user_focus_site=user_focus_site,
    )


def _count_weights(codes: np.ndarray, num_codes: int, power: float = 1.0) -> np.ndarray:
    if power < 0:
        raise ValueError(f"power must be nonnegative, got {power}")
    counts = np.bincount(codes, minlength=num_codes).astype(np.float64)
    counts += 1.0  # smooth so empty categories stay possible
    counts = counts**power
    return counts / counts.sum()
