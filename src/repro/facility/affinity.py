"""The Section-III affinity model, as an explicit parameterized object.

The paper measures three affinities in the real traces:

1. **Instrument locality** — on average 43.1% (OOI) / 36.3% (GAGE) of a
   user's queries target data objects from instruments in one region;
2. **Data-domain affinity** — 51.6% (OOI) / 68.8% of a user's queries target
   one data type;
3. **User association** — users from the same organization/city have highly
   similar query patterns (Fig 4 t-SNE clusters; Fig 5 likelihood ratios).

:class:`AffinityModel` turns those three numbers into a per-user categorical
distribution over data objects.  A query first (independently) decides
whether to respect the user's focus region and focus data type, then samples
an item uniformly from the matching set weighted by global item popularity.
Because focus is shared within organizations (see
:mod:`repro.facility.users`), affinity 3 emerges from 1+2 without extra
machinery — exactly the mechanism the paper hypothesizes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.facility.catalog import FacilityCatalog
from repro.facility.users import UserPopulation
from repro.utils.validation import check_probability

__all__ = ["AffinityModel", "OOI_AFFINITY", "GAGE_AFFINITY"]


@dataclasses.dataclass(frozen=True)
class AffinityModel:
    """Per-query affinity strengths.

    Parameters
    ----------
    p_region:
        Probability a query is confined to the user's focus region
        (calibrates the paper's same-region query fraction).
    p_dtype:
        Probability a query is confined to the user's focus data type.
    popularity_exponent:
        Items within the admissible set are drawn proportionally to
        ``(1 + popularity_rank)^-popularity_exponent``; 0 gives uniform.
        Heavy-tailed item popularity is what produces the Fig-3 curves.
    """

    p_region: float
    p_dtype: float
    popularity_exponent: float = 0.8
    site_concentration: float = 8.0
    """Within a region-gated query, the focus *site*'s objects are this many
    times likelier than the region's other sites — research groups watch
    specific moorings/stations, which is what makes instrument locality a
    fine-grained signal (Fig 5 measures it at site granularity)."""

    def __post_init__(self):
        check_probability("p_region", self.p_region)
        check_probability("p_dtype", self.p_dtype)
        if self.popularity_exponent < 0:
            raise ValueError(f"popularity_exponent must be >= 0, got {self.popularity_exponent}")
        if self.site_concentration < 1.0:
            raise ValueError(f"site_concentration must be >= 1, got {self.site_concentration}")

    def item_distribution(
        self,
        catalog: FacilityCatalog,
        focus_region: int,
        focus_dtype: int,
        rng: np.random.Generator,
        base_popularity: Optional[np.ndarray] = None,
        focus_site: Optional[int] = None,
    ) -> np.ndarray:
        """Categorical distribution over data objects for one query decision.

        The region/data-type gates are sampled *per call*, so repeated calls
        for the same user yield the mixture the affinity probabilities
        describe.  ``base_popularity`` (unnormalized, length ``num_objects``)
        lets callers share one popularity vector across users.
        """
        n = catalog.num_objects
        if n == 0:
            raise ValueError("catalog has no data objects")
        pop = base_popularity if base_popularity is not None else self.popularity_weights(n, rng)
        weights = pop.astype(np.float64).copy()
        if rng.random() < self.p_region:
            mask = catalog.object_region == focus_region
            if mask.any():
                weights = np.where(mask, weights, 0.0)
                if focus_site is not None:
                    weights = weights * self._site_boost(catalog, focus_site)
        if rng.random() < self.p_dtype:
            mask = catalog.object_dtype == focus_dtype
            if mask.any() and (weights * mask).sum() > 0:
                weights = np.where(mask, weights, 0.0)
        total = weights.sum()
        if total <= 0:
            weights = pop.astype(np.float64).copy()
            total = weights.sum()
        return weights / total

    def _site_boost(self, catalog: FacilityCatalog, focus_site: int) -> np.ndarray:
        """Multiplicative weight favoring the focus site's objects."""
        boost = np.ones(catalog.num_objects, dtype=np.float64)
        boost[catalog.object_site == focus_site] = self.site_concentration
        return boost

    def mixture_distribution(
        self,
        catalog: FacilityCatalog,
        focus_region: int,
        focus_dtype: int,
        base_popularity: Optional[np.ndarray] = None,
        focus_site: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """The *expected* per-query item distribution for a user (closed form).

        Mixing the four gate outcomes analytically lets the trace generator
        draw all of a user's queries in one vectorized multinomial instead of
        gating per query — orders of magnitude faster and statistically
        identical (queries are i.i.d. given the user).  Callers either share
        a precomputed ``base_popularity`` vector or pass the ``rng`` that
        draws the popularity permutation.
        """
        n = catalog.num_objects
        if base_popularity is None:
            if rng is None:
                raise ValueError("mixture_distribution needs rng when base_popularity is not given")
            base_popularity = self.popularity_weights(n, rng)
        pop = base_popularity.astype(np.float64)
        region_mask = (catalog.object_region == focus_region).astype(np.float64)
        if focus_site is not None:
            region_mask = region_mask * self._site_boost(catalog, focus_site)
        dtype_mask = (catalog.object_dtype == focus_dtype).astype(np.float64)

        # Fallbacks mirror item_distribution's gate semantics exactly: an
        # empty region gate is skipped; a dtype gate that would empty the
        # result is skipped (keeping whatever the region gate produced).
        free = pop / pop.sum()

        def norm_or(w: np.ndarray, fallback: np.ndarray) -> np.ndarray:
            s = w.sum()
            return w / s if s > 0 else fallback

        pr, pd = self.p_region, self.p_dtype
        region_only = norm_or(pop * region_mask, free)
        dtype_only = norm_or(pop * dtype_mask, free)
        if (pop * region_mask).sum() > 0:
            both = norm_or(pop * region_mask * dtype_mask, region_only)
        else:
            both = dtype_only
        return (
            pr * pd * both
            + pr * (1 - pd) * region_only
            + (1 - pr) * pd * dtype_only
            + (1 - pr) * (1 - pd) * free
        )

    def popularity_weights(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        """Zipf-like unnormalized popularity over object ids.

        Ranks are assigned by a pseudorandom permutation of object ids drawn
        from the caller's ``rng`` — one draw per trace, shared across every
        user (see :meth:`user_mixtures`), so popularity ranks are consistent
        within a generated trace while remaining a function of the caller's
        seed.  The permutation matters: object ids are emitted
        instrument-by-instrument, so rank-by-id would place all the most
        popular objects on one instrument/site and popularity would
        masquerade as locality.
        """
        ranks = np.arange(1, num_objects + 1, dtype=np.float64)
        weights = ranks**-self.popularity_exponent
        perm = rng.permutation(num_objects)
        return weights[perm]

    def unique_user_mixtures(
        self, catalog: FacilityCatalog, population: UserPopulation, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Deduplicated mixture rows plus the per-user row index.

        Users sharing (focus_site, focus_dtype) share a distribution; the
        site determines the region, so each distinct combination is computed
        once.  Returns ``(rows, inverse)`` with ``rows`` of shape (K, N) and
        ``inverse`` of length M such that user ``u``'s distribution is
        ``rows[inverse[u]]``.  K is bounded by sites×dtypes regardless of the
        population size, which is what keeps million-user trace generation
        out of the M×N memory regime.  ``rng`` draws the shared popularity
        permutation (one draw, same as :meth:`user_mixtures`).
        """
        pop = self.popularity_weights(catalog.num_objects, rng)
        nd = catalog.num_data_types
        keys = population.user_focus_site * nd + population.user_focus_dtype
        uniq, inverse = np.unique(keys, return_inverse=True)
        site_region = catalog.site_region
        rows = np.empty((len(uniq), catalog.num_objects), dtype=np.float64)
        for k, key in enumerate(uniq):
            site = int(key // nd)
            dtype = int(key % nd)
            rows[k] = self.mixture_distribution(
                catalog, int(site_region[site]), dtype, base_popularity=pop, focus_site=site
            )
        return rows, inverse

    def user_mixtures(
        self, catalog: FacilityCatalog, population: UserPopulation, rng: np.random.Generator
    ) -> np.ndarray:
        """Stack of per-user expected item distributions, shape (M, N).

        ``rng`` draws the popularity permutation once, shared by every user
        row.  Memory: M×N float64 — for the default scales (≤2k users × ≤2.5k
        items) this is ≤40 MB, well worth it for fully vectorized trace
        generation.  At larger M use :meth:`unique_user_mixtures`, which
        returns the deduplicated rows without fanning them out.
        """
        rows, inverse = self.unique_user_mixtures(catalog, population, rng)
        return rows[inverse]


# Calibrated presets: chosen so the *measured* same-region / same-data-type
# query fractions (repro.analysis.locality.query_concentration) land near the
# paper's Section III-B2 numbers (OOI 43.1% region / 51.6% data type; GAGE
# 36.3% / 68.8%).  The gate probabilities sit below the targets because
# ungated queries also land in the user's focus region/type by chance, which
# the measurement counts.
OOI_AFFINITY = AffinityModel(p_region=0.36, p_dtype=0.53, popularity_exponent=0.8, site_concentration=20.0)
GAGE_AFFINITY = AffinityModel(p_region=0.25, p_dtype=0.67, popularity_exponent=0.8, site_concentration=20.0)
