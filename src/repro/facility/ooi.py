"""OOI-like facility builder.

The Ocean Observatories Initiative deploys instruments across 8 research
arrays and ~55 sites; the paper's trace involves 36 instrument classes
(Section III-B).  This module builds a synthetic catalog with that shape:
regions are the real OOI arrays (public information), sites are jittered
around array centers, instrument classes carry plausible oceanographic data
types across five disciplines, and data objects are instrument×data-type
products with delivery-method and processing-level metadata.

Scale knobs live on :class:`OOIConfig`; the defaults are calibrated so the
resulting collaborative knowledge graph approaches the paper's Table I
(≈1.3k entities, 8 relations, ≈5.5k KG triples).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.facility.catalog import (
    DataObject,
    DataType,
    FacilityCatalog,
    Instrument,
    InstrumentClass,
    Site,
)
from repro.facility.geo import GeoPoint, Region, jitter_around
from repro.utils.rng import ensure_rng

__all__ = ["OOIConfig", "build_ooi_catalog", "OOI_ARRAYS", "OOI_DISCIPLINES"]

# The eight OOI research arrays with approximate center coordinates
# (oceanobservatories.org; public metadata).
OOI_ARRAYS: Tuple[Tuple[str, float, float, float], ...] = (
    ("Cabled Axial Seamount", 45.95, -130.00, 120.0),
    ("Cabled Continental Margin", 44.57, -125.39, 150.0),
    ("Coastal Endurance", 44.64, -124.30, 220.0),
    ("Coastal Pioneer", 40.10, -70.88, 250.0),
    ("Global Argentine Basin", -42.98, -42.50, 300.0),
    ("Global Irminger Sea", 59.97, -39.47, 300.0),
    ("Global Southern Ocean", -54.47, -89.28, 300.0),
    ("Global Station Papa", 50.07, -144.80, 300.0),
)

OOI_DISCIPLINES: Tuple[str, ...] = (
    "Physical",
    "Chemical",
    "Biological",
    "Geological",
    "Engineering",
)

# (data type name, discipline) — oceanographic measurement vocabulary.
_OOI_DATA_TYPES: Tuple[Tuple[str, str], ...] = (
    ("Pressure", "Physical"),
    ("Temperature", "Physical"),
    ("Conductivity", "Physical"),
    ("Density", "Physical"),
    ("Salinity", "Physical"),
    ("Depth", "Physical"),
    ("Velocity", "Physical"),
    ("Wave Height", "Physical"),
    ("Irradiance", "Physical"),
    ("Oxygen", "Chemical"),
    ("pH", "Chemical"),
    ("pCO2", "Chemical"),
    ("Nitrate", "Chemical"),
    ("Phosphate", "Chemical"),
    ("Silicate", "Chemical"),
    ("Chlorophyll", "Biological"),
    ("CDOM", "Biological"),
    ("Bioacoustics", "Biological"),
    ("Zooplankton Counts", "Biological"),
    ("Turbidity", "Geological"),
    ("Seismic", "Geological"),
    ("Tilt", "Geological"),
    ("Hydrothermal Vent Chemistry", "Geological"),
    ("Battery Voltage", "Engineering"),
    ("System Status", "Engineering"),
)

# (instrument class name, group, data type names it measures)
_OOI_INSTRUMENT_CLASSES: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    ("CTD", "Water Column", ("Conductivity", "Temperature", "Depth", "Salinity", "Density")),
    ("BOTPT", "Seafloor", ("Pressure", "Tilt", "Seismic")),
    ("ADCP", "Water Column", ("Velocity", "Depth")),
    ("VELPT", "Water Column", ("Velocity",)),
    ("VEL3D", "Water Column", ("Velocity", "Turbidity")),
    ("DOSTA", "Water Column", ("Oxygen", "Temperature")),
    ("PHSEN", "Water Column", ("pH",)),
    ("PCO2W", "Water Column", ("pCO2",)),
    ("PCO2A", "Surface", ("pCO2",)),
    ("NUTNR", "Water Column", ("Nitrate",)),
    ("SPKIR", "Surface", ("Irradiance",)),
    ("PARAD", "Water Column", ("Irradiance",)),
    ("FLORT", "Water Column", ("Chlorophyll", "CDOM", "Turbidity")),
    ("FLORD", "Water Column", ("Chlorophyll", "CDOM")),
    ("OPTAA", "Water Column", ("Chlorophyll", "CDOM")),
    ("ZPLSC", "Water Column", ("Bioacoustics", "Zooplankton Counts")),
    ("ZPLSG", "Water Column", ("Bioacoustics",)),
    ("HYDBB", "Seafloor", ("Bioacoustics", "Seismic")),
    ("HYDLF", "Seafloor", ("Seismic",)),
    ("OBSBB", "Seafloor", ("Seismic",)),
    ("OBSSP", "Seafloor", ("Seismic", "Tilt")),
    ("PRESF", "Seafloor", ("Pressure", "Wave Height")),
    ("TMPSF", "Seafloor", ("Temperature",)),
    ("THSPH", "Seafloor", ("Hydrothermal Vent Chemistry", "Temperature")),
    ("TRHPH", "Seafloor", ("Hydrothermal Vent Chemistry", "Turbidity")),
    ("RASFL", "Seafloor", ("Hydrothermal Vent Chemistry",)),
    ("CAMDS", "Seafloor", ("System Status",)),
    ("CAMHD", "Seafloor", ("System Status", "Bioacoustics")),
    ("MOPAK", "Surface", ("Wave Height", "Velocity")),
    ("WAVSS", "Surface", ("Wave Height",)),
    ("METBK", "Surface", ("Temperature", "Irradiance", "Wave Height")),
    ("FDCHP", "Surface", ("pCO2", "Temperature")),
    ("ENG000", "Platform", ("Battery Voltage", "System Status")),
    ("STCENG", "Platform", ("Battery Voltage", "System Status")),
    ("DCLENG", "Platform", ("System Status",)),
    ("PPSDN", "Water Column", ("Zooplankton Counts", "Chlorophyll")),
)

_OOI_DELIVERY = ("Streamed", "Telemetered", "Recovered")
_OOI_LEVELS = ("L0 Raw", "L1 Calibrated", "L2 Derived")


@dataclasses.dataclass(frozen=True)
class OOIConfig:
    """Scale parameters for the OOI-like catalog.

    Defaults reproduce the shape reported in Section III-B: 36 instrument
    classes at 55 sites across 8 research arrays.
    """

    num_sites: int = 55
    instruments_per_site_mean: float = 4.5
    object_fraction: float = 0.62
    """Fraction of (instrument, data type) products actually published —
    real facilities do not serve every theoretical product, and this knob
    calibrates the CKG triple count toward Table I."""
    seed_sites_per_array_min: int = 3

    def __post_init__(self):
        if self.num_sites < len(OOI_ARRAYS) * self.seed_sites_per_array_min:
            raise ValueError(
                f"num_sites={self.num_sites} too small for "
                f"{len(OOI_ARRAYS)} arrays × {self.seed_sites_per_array_min} minimum sites"
            )
        if not 0.0 < self.object_fraction <= 1.0:
            raise ValueError(f"object_fraction must be in (0, 1], got {self.object_fraction}")


def build_ooi_catalog(config: OOIConfig = OOIConfig(), seed=0) -> FacilityCatalog:
    """Build an OOI-like :class:`FacilityCatalog`.

    Parameters
    ----------
    config:
        Scale parameters.
    seed:
        Integer seed or :class:`numpy.random.Generator`.
    """
    rng = ensure_rng(seed)

    regions = [
        Region(region_id=i, name=name, center=GeoPoint(lat, lon), radius_km=radius)
        for i, (name, lat, lon, radius) in enumerate(OOI_ARRAYS)
    ]

    data_types = [DataType(i, name, disc) for i, (name, disc) in enumerate(_OOI_DATA_TYPES)]
    dtype_by_name = {d.name: d.dtype_id for d in data_types}

    classes = [
        InstrumentClass(
            class_id=i,
            name=name,
            dtype_ids=tuple(dtype_by_name[t] for t in dtypes),
            group=group,
        )
        for i, (name, group, dtypes) in enumerate(_OOI_INSTRUMENT_CLASSES)
    ]

    # Distribute sites across arrays: each array gets a minimum, the rest
    # proportional to array radius (bigger arrays host more moorings).
    sites = _build_sites(regions, config, rng)

    # Deploy instruments: each site receives a Poisson-distributed number of
    # distinct instrument classes; cabled arrays skew toward seafloor
    # instrumentation, global arrays toward surface/water-column packages.
    instruments: List[Instrument] = []
    group_names = sorted({c.group for c in classes})
    for site in sites:
        k = max(1, int(rng.poisson(config.instruments_per_site_mean)))
        k = min(k, len(classes))
        weights = _class_weights_for_region(regions[site.region_id], classes, group_names)
        chosen = rng.choice(len(classes), size=k, replace=False, p=weights)
        for class_id in np.sort(chosen):
            instruments.append(
                Instrument(
                    instrument_id=len(instruments),
                    class_id=int(class_id),
                    site_id=site.site_id,
                    name=f"{classes[class_id].name}@{site.name}",
                )
            )

    # Publish data objects: every (instrument, measured data type, delivery
    # method) triple is a candidate product — the real OOI serves the same
    # measurement as separate streamed/telemetered/recovered products.  Keep
    # a calibrated fraction, each tagged with a processing level.
    objects: List[DataObject] = []
    for inst in instruments:
        for dtype_id in classes[inst.class_id].dtype_ids:
            for delivery in _OOI_DELIVERY:
                if rng.random() > config.object_fraction:
                    continue
                level = _OOI_LEVELS[int(rng.integers(len(_OOI_LEVELS)))]
                objects.append(
                    DataObject(
                        object_id=len(objects),
                        instrument_id=inst.instrument_id,
                        dtype_id=dtype_id,
                        delivery_method=delivery,
                        processing_level=level,
                    )
                )

    return FacilityCatalog(
        name="OOI-like",
        regions=regions,
        sites=sites,
        instrument_classes=classes,
        instruments=instruments,
        data_types=data_types,
        objects=objects,
        delivery_methods=list(_OOI_DELIVERY),
    )


def _build_sites(regions: Sequence[Region], config: OOIConfig, rng: np.random.Generator) -> List[Site]:
    n_arrays = len(regions)
    base = config.seed_sites_per_array_min
    remaining = config.num_sites - base * n_arrays
    radii = np.array([r.radius_km for r in regions], dtype=np.float64)
    probs = radii / radii.sum()
    extra = rng.multinomial(remaining, probs)
    sites: List[Site] = []
    for region, n_extra in zip(regions, extra):
        count = base + int(n_extra)
        lats, lons = jitter_around(region.center, region.radius_km, rng, n=count)
        for j in range(count):
            sites.append(
                Site(
                    site_id=len(sites),
                    name=f"{_array_code(region.name)}{j + 1:02d}",
                    region_id=region.region_id,
                    location=GeoPoint(float(lats[j]), float(lons[j])),
                )
            )
    return sites


def _array_code(name: str) -> str:
    return "".join(word[0] for word in name.split())


def _class_weights_for_region(
    region: Region, classes: Sequence[InstrumentClass], group_names: Sequence[str]
) -> np.ndarray:
    """Instrument-class sampling weights biased by array type.

    Cabled arrays (seafloor observatories) favor Seafloor instruments;
    Global arrays (open-ocean moorings) favor Surface and Platform packages;
    Coastal arrays are balanced.  This gives each region a distinctive
    instrument mix, which is what makes instrument locality informative.
    """
    if region.name.startswith("Cabled"):
        group_bias = {"Seafloor": 3.0, "Water Column": 1.0, "Surface": 0.3, "Platform": 0.7}
    elif region.name.startswith("Global"):
        group_bias = {"Seafloor": 0.3, "Water Column": 1.2, "Surface": 2.0, "Platform": 1.2}
    else:  # Coastal
        group_bias = {"Seafloor": 0.8, "Water Column": 1.5, "Surface": 1.2, "Platform": 0.8}
    weights = np.array([group_bias.get(c.group, 1.0) for c in classes], dtype=np.float64)
    return weights / weights.sum()

# OOI relation/metadata vocabulary re-exported for KG construction.
OOI_DELIVERY_METHODS = _OOI_DELIVERY
OOI_PROCESSING_LEVELS = _OOI_LEVELS
