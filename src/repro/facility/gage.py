"""GAGE-like facility builder.

The Geodetic Facility for the Advancement of Geoscience operates permanent
GPS/GNSS stations; the paper's trace covers 2,106 US stations across 338
cities and 48 states serving 12 data types (Section III-B).  This module
builds a synthetic catalog with the same shape at a configurable scale: GNSS
stations are the instruments, cities/states are the location hierarchy, and
data objects are station × data-product pairs.

In catalog terms each *station* is both a :class:`~repro.facility.catalog.Site`
(it has a location, member of a state-level region) and an
:class:`~repro.facility.catalog.Instrument` (one GNSS receiver per station);
networks (PBO, COCONet, …) play the role of instrument groups and form the MD
noise source of Table III.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro.facility.catalog import (
    DataObject,
    DataType,
    FacilityCatalog,
    Instrument,
    InstrumentClass,
    Site,
)
from repro.facility.geo import GeoPoint, Region, jitter_around
from repro.utils.rng import ensure_rng

__all__ = ["GAGEConfig", "build_gage_catalog", "GAGE_DATA_TYPES", "US_STATES"]

# (data type, discipline) — the 12 GAGE/UNAVCO product families.
GAGE_DATA_TYPES: Tuple[Tuple[str, str], ...] = (
    ("RINEX Observations", "GNSS"),
    ("RINEX Navigation", "GNSS"),
    ("High-rate GNSS", "GNSS"),
    ("Real-time Streams", "GNSS"),
    ("Position Time Series", "Geodesy"),
    ("Station Velocities", "Geodesy"),
    ("Strain Data", "Geophysics"),
    ("Seismic Data", "Geophysics"),
    ("Tilt Data", "Geophysics"),
    ("Meteorological Data", "Atmosphere"),
    ("Tropospheric Products", "Atmosphere"),
    ("Hydrological Loading", "Atmosphere"),
)

_GAGE_NETWORKS = (
    "PBO",
    "COCONet",
    "TLALOCNet",
    "SCIGN",
    "BARD",
    "PANGA",
    "CORS-Partner",
    "UNAVCO-Campaign",
    "NOTA-Core",
    "NOTA-Borehole",
    "GeoNet-Partner",
    "Polar-Net",
)

_GAGE_DELIVERY = ("FTP Archive", "Real-time")

# The 48 contiguous US states with approximate centroid coordinates, used as
# the region layer.  Station counts are weighted toward the seismically
# active west (as in the real GAGE network).
US_STATES: Tuple[Tuple[str, float, float, float], ...] = (
    ("California", 37.2, -119.3, 8.0),
    ("Oregon", 43.9, -120.6, 4.0),
    ("Washington", 47.4, -120.5, 4.0),
    ("Rhode Island", 41.7, -71.5, 0.2),
    ("Nevada", 39.3, -116.6, 3.0),
    ("Utah", 39.3, -111.7, 2.0),
    ("Arizona", 34.3, -111.7, 2.0),
    ("Idaho", 44.4, -114.6, 1.5),
    ("Montana", 47.0, -109.6, 1.5),
    ("Wyoming", 43.0, -107.5, 1.5),
    ("Colorado", 39.0, -105.5, 2.0),
    ("New Mexico", 34.4, -106.1, 1.5),
    ("Texas", 31.5, -99.3, 1.5),
    ("Oklahoma", 35.6, -97.5, 0.8),
    ("Kansas", 38.5, -98.4, 0.5),
    ("Nebraska", 41.5, -99.8, 0.5),
    ("South Dakota", 44.4, -100.2, 0.5),
    ("North Dakota", 47.4, -100.5, 0.5),
    ("Minnesota", 46.3, -94.3, 0.5),
    ("Iowa", 42.1, -93.5, 0.4),
    ("Missouri", 38.4, -92.5, 0.6),
    ("Arkansas", 34.9, -92.4, 0.5),
    ("Louisiana", 31.1, -92.0, 0.4),
    ("Mississippi", 32.7, -89.7, 0.3),
    ("Alabama", 32.8, -86.8, 0.3),
    ("Georgia", 32.6, -83.4, 0.5),
    ("Florida", 28.6, -82.4, 0.6),
    ("South Carolina", 33.9, -80.9, 0.4),
    ("North Carolina", 35.5, -79.4, 0.5),
    ("Tennessee", 35.8, -86.4, 0.5),
    ("Kentucky", 37.5, -85.3, 0.4),
    ("Virginia", 37.5, -78.9, 0.5),
    ("West Virginia", 38.6, -80.6, 0.3),
    ("Ohio", 40.3, -82.8, 0.5),
    ("Indiana", 39.9, -86.3, 0.4),
    ("Illinois", 40.0, -89.2, 0.5),
    ("Wisconsin", 44.6, -89.7, 0.4),
    ("Michigan", 44.3, -85.4, 0.4),
    ("Pennsylvania", 40.9, -77.8, 0.5),
    ("New York", 42.9, -75.6, 0.6),
    ("Vermont", 44.1, -72.7, 0.3),
    ("New Hampshire", 43.7, -71.6, 0.3),
    ("Maine", 45.4, -69.2, 0.4),
    ("Massachusetts", 42.3, -71.8, 0.4),
    ("Connecticut", 41.6, -72.7, 0.3),
    ("New Jersey", 40.2, -74.7, 0.3),
    ("Maryland", 39.0, -76.8, 0.3),
    ("Delaware", 39.0, -75.5, 0.2),
)


@dataclasses.dataclass(frozen=True)
class GAGEConfig:
    """Scale parameters for the GAGE-like catalog.

    The real facility has 2,106 US stations; ``num_stations`` defaults to a
    ~3.5× scale-down so the full pipeline (KG + all models) runs in minutes
    on one core while keeping the CKG in the Table-I size class.
    """

    num_stations: int = 600
    num_cities: int = 200
    dtypes_per_station_mean: float = 3.4
    networks_per_station_mean: float = 1.5
    city_radius_km: float = 35.0

    def __post_init__(self):
        if self.num_stations < self.num_cities:
            raise ValueError(
                f"num_stations={self.num_stations} must be >= num_cities={self.num_cities}"
            )
        if self.num_cities < len(US_STATES):
            raise ValueError(
                f"num_cities={self.num_cities} must be >= number of states {len(US_STATES)}"
            )


def build_gage_catalog(config: GAGEConfig = GAGEConfig(), seed=0) -> FacilityCatalog:
    """Build a GAGE-like :class:`FacilityCatalog`.

    The returned catalog uses one region per US state; each
    :class:`~repro.facility.catalog.Site` is a station location with its
    ``city``/``state`` fields filled in (the KG builder turns these into the
    locatedAt → city → state hierarchy).
    """
    rng = ensure_rng(seed)

    regions = [
        Region(region_id=i, name=name, center=GeoPoint(lat, lon), radius_km=300.0)
        for i, (name, lat, lon, _w) in enumerate(US_STATES)
    ]
    weights = np.array([w for (_n, _a, _o, w) in US_STATES], dtype=np.float64)
    weights /= weights.sum()

    data_types = [DataType(i, name, disc) for i, (name, disc) in enumerate(GAGE_DATA_TYPES)]

    # One instrument class per network: a GNSS receiver package whose group
    # is the network name (the MD noise source).  All classes can measure
    # all 12 data types — what a station serves is decided per station.
    all_dtypes = tuple(range(len(data_types)))
    classes = [
        InstrumentClass(class_id=i, name=f"GNSS-{net}", dtype_ids=all_dtypes, group=net)
        for i, net in enumerate(_GAGE_NETWORKS)
    ]

    # Cities: each state gets at least one city; remaining cities follow the
    # station-count weighting so California has many, Delaware few.
    n_states = len(regions)
    city_state = np.concatenate(
        [np.arange(n_states), rng.choice(n_states, size=config.num_cities - n_states, p=weights)]
    )
    city_names: List[str] = []
    city_lat = np.empty(config.num_cities)
    city_lon = np.empty(config.num_cities)
    per_state_counter = np.zeros(n_states, dtype=np.int64)
    for c in range(config.num_cities):
        s = int(city_state[c])
        per_state_counter[s] += 1
        city_names.append(f"{US_STATES[s][0]} City {per_state_counter[s]}")
        lats, lons = jitter_around(regions[s].center, 250.0, rng, n=1)
        city_lat[c], city_lon[c] = lats[0], lons[0]

    # Stations: at least one per city, the rest weighted by state weights
    # applied through the city layer.
    city_weights = weights[city_state]
    city_weights = city_weights / city_weights.sum()
    station_city = np.concatenate(
        [
            np.arange(config.num_cities),
            rng.choice(config.num_cities, size=config.num_stations - config.num_cities, p=city_weights),
        ]
    )
    sites: List[Site] = []
    instruments: List[Instrument] = []
    for st in range(config.num_stations):
        c = int(station_city[st])
        s = int(city_state[c])
        lats, lons = jitter_around(
            GeoPoint(float(city_lat[c]), float(city_lon[c])), config.city_radius_km, rng, n=1
        )
        code = f"P{st:04d}"
        sites.append(
            Site(
                site_id=st,
                name=code,
                region_id=s,
                location=GeoPoint(float(lats[0]), float(lons[0])),
                city=city_names[c],
                state=US_STATES[s][0],
            )
        )
        # Station's primary network membership decides its instrument class.
        class_id = int(rng.integers(len(classes)))
        instruments.append(
            Instrument(instrument_id=st, class_id=class_id, site_id=st, name=f"GNSS@{code}")
        )

    # Data objects: each station serves a Poisson-sized subset of the 12
    # products.  RINEX observations are near-universal; specialist products
    # (strain, seismic) are rarer, mirroring the real archive.
    dtype_popularity = np.array(
        [5.0, 3.0, 1.5, 1.0, 2.5, 2.0, 0.6, 0.6, 0.5, 1.2, 0.8, 0.4], dtype=np.float64
    )
    dtype_popularity /= dtype_popularity.sum()
    objects: List[DataObject] = []
    for st in range(config.num_stations):
        k = int(np.clip(rng.poisson(config.dtypes_per_station_mean), 1, len(data_types)))
        chosen = rng.choice(len(data_types), size=k, replace=False, p=dtype_popularity)
        for dtype_id in np.sort(chosen):
            delivery = _GAGE_DELIVERY[int(rng.integers(len(_GAGE_DELIVERY)))]
            objects.append(
                DataObject(
                    object_id=len(objects),
                    instrument_id=st,
                    dtype_id=int(dtype_id),
                    delivery_method=delivery,
                )
            )

    return FacilityCatalog(
        name="GAGE-like",
        regions=regions,
        sites=sites,
        instrument_classes=classes,
        instruments=instruments,
        data_types=data_types,
        objects=objects,
        delivery_methods=list(_GAGE_DELIVERY),
    )
