"""Facility schema: the structured metadata a facility publishes.

The paper's Fig. 1 shows the attribute vocabulary of a data object:
``generatedBy`` (instrument), ``locatedAt`` (site), ``dataType``,
``dataDiscipline``, ``deliveryMethod``.  This module defines those entities
as dataclasses and a :class:`FacilityCatalog` container that also exposes
*integer-coded attribute arrays* for vectorized analysis and KG construction
(guides: structure-of-arrays beats object traversal in hot paths).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.facility.geo import GeoPoint, Region

__all__ = [
    "DataType",
    "InstrumentClass",
    "Site",
    "Instrument",
    "DataObject",
    "FacilityCatalog",
]


@dataclasses.dataclass(frozen=True)
class DataType:
    """A kind of measurement a facility serves (e.g. Pressure, RINEX obs)."""

    dtype_id: int
    name: str
    discipline: str


@dataclasses.dataclass(frozen=True)
class InstrumentClass:
    """A class of deployable instrument (e.g. CTD, BOTPT, GNSS receiver).

    ``group`` is free metadata (the MD noise source in Table III);
    ``dtype_ids`` lists the data types this class can measure.
    """

    class_id: int
    name: str
    dtype_ids: Tuple[int, ...]
    group: str


@dataclasses.dataclass(frozen=True)
class Site:
    """A fixed deployment location, member of exactly one region/array."""

    site_id: int
    name: str
    region_id: int
    location: GeoPoint
    city: Optional[str] = None
    state: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class Instrument:
    """A concrete instrument: an instrument class deployed at a site."""

    instrument_id: int
    class_id: int
    site_id: int
    name: str


@dataclasses.dataclass(frozen=True)
class DataObject:
    """A recommendable item: one data product of one instrument.

    This is the ``v ∈ V`` of Section IV — what users query and what the
    recommender ranks.  ``processing_level`` is optional extra metadata
    (used by the OOI-like facility; part of the MD noise source).
    """

    object_id: int
    instrument_id: int
    dtype_id: int
    delivery_method: str
    processing_level: Optional[str] = None


class FacilityCatalog:
    """All published metadata of one facility plus vectorized views.

    Parameters
    ----------
    name:
        Facility name ("OOI-like", "GAGE-like").
    regions, sites, instrument_classes, instruments, data_types, objects:
        Entity lists; each entity's id must equal its list index.
    delivery_methods:
        The vocabulary of delivery methods used by ``objects``.
    """

    def __init__(
        self,
        name: str,
        regions: Sequence[Region],
        sites: Sequence[Site],
        instrument_classes: Sequence[InstrumentClass],
        instruments: Sequence[Instrument],
        data_types: Sequence[DataType],
        objects: Sequence[DataObject],
        delivery_methods: Sequence[str],
    ):
        self.name = name
        self.regions = list(regions)
        self.sites = list(sites)
        self.instrument_classes = list(instrument_classes)
        self.instruments = list(instruments)
        self.data_types = list(data_types)
        self.objects = list(objects)
        self.delivery_methods = list(delivery_methods)
        self._validate()
        self._build_arrays()

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        for label, seq, attr in (
            ("region", self.regions, "region_id"),
            ("site", self.sites, "site_id"),
            ("instrument class", self.instrument_classes, "class_id"),
            ("instrument", self.instruments, "instrument_id"),
            ("data type", self.data_types, "dtype_id"),
            ("data object", self.objects, "object_id"),
        ):
            for i, entity in enumerate(seq):
                if getattr(entity, attr) != i:
                    raise ValueError(f"{label} at index {i} has id {getattr(entity, attr)}")
        n_regions = len(self.regions)
        for site in self.sites:
            if not 0 <= site.region_id < n_regions:
                raise ValueError(f"site {site.site_id} references unknown region {site.region_id}")
        for inst in self.instruments:
            if not 0 <= inst.class_id < len(self.instrument_classes):
                raise ValueError(f"instrument {inst.instrument_id} references unknown class {inst.class_id}")
            if not 0 <= inst.site_id < len(self.sites):
                raise ValueError(f"instrument {inst.instrument_id} references unknown site {inst.site_id}")
        delivery_set = set(self.delivery_methods)
        for obj in self.objects:
            if not 0 <= obj.instrument_id < len(self.instruments):
                raise ValueError(f"object {obj.object_id} references unknown instrument {obj.instrument_id}")
            if not 0 <= obj.dtype_id < len(self.data_types):
                raise ValueError(f"object {obj.object_id} references unknown data type {obj.dtype_id}")
            inst = self.instruments[obj.instrument_id]
            klass = self.instrument_classes[inst.class_id]
            if obj.dtype_id not in klass.dtype_ids:
                raise ValueError(
                    f"object {obj.object_id} has data type {obj.dtype_id} not measured by "
                    f"instrument class {klass.name}"
                )
            if obj.delivery_method not in delivery_set:
                raise ValueError(f"object {obj.object_id} has unknown delivery method {obj.delivery_method!r}")

    # --------------------------------------------------------- coded arrays
    def _build_arrays(self) -> None:
        n = len(self.objects)
        self.object_instrument = np.array([o.instrument_id for o in self.objects], dtype=np.int64)
        self.object_dtype = np.array([o.dtype_id for o in self.objects], dtype=np.int64)
        inst_site = np.array([i.site_id for i in self.instruments], dtype=np.int64)
        inst_class = np.array([i.class_id for i in self.instruments], dtype=np.int64)
        site_region = np.array([s.region_id for s in self.sites], dtype=np.int64)
        self.object_site = inst_site[self.object_instrument] if n else np.zeros(0, dtype=np.int64)
        self.object_class = inst_class[self.object_instrument] if n else np.zeros(0, dtype=np.int64)
        self.object_region = site_region[self.object_site] if n else np.zeros(0, dtype=np.int64)
        discipline_names = sorted({d.discipline for d in self.data_types})
        self.discipline_names: List[str] = discipline_names
        discipline_code: Dict[str, int] = {d: i for i, d in enumerate(discipline_names)}
        dtype_discipline = np.array(
            [discipline_code[d.discipline] for d in self.data_types], dtype=np.int64
        )
        self.dtype_discipline = dtype_discipline
        self.object_discipline = dtype_discipline[self.object_dtype] if n else np.zeros(0, dtype=np.int64)
        delivery_code = {m: i for i, m in enumerate(self.delivery_methods)}
        self.object_delivery = np.array(
            [delivery_code[o.delivery_method] for o in self.objects], dtype=np.int64
        )
        # Processing levels are optional; code -1 for "absent".
        level_names = sorted({o.processing_level for o in self.objects if o.processing_level})
        self.processing_level_names: List[str] = level_names
        level_code = {name: i for i, name in enumerate(level_names)}
        self.object_level = np.array(
            [level_code.get(o.processing_level, -1) for o in self.objects], dtype=np.int64
        )
        self.site_region = site_region
        self.instrument_site = inst_site
        self.instrument_class = inst_class
        self.site_lat = np.array([s.location.lat for s in self.sites], dtype=np.float64)
        self.site_lon = np.array([s.location.lon for s in self.sites], dtype=np.float64)

    # ---------------------------------------------------------------- sizes
    @property
    def num_objects(self) -> int:
        return len(self.objects)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def num_data_types(self) -> int:
        return len(self.data_types)

    @property
    def num_disciplines(self) -> int:
        return len(self.discipline_names)

    @property
    def num_instrument_classes(self) -> int:
        return len(self.instrument_classes)

    @property
    def num_instruments(self) -> int:
        return len(self.instruments)

    def describe(self) -> str:
        """One-line structural summary used by examples and benches."""
        return (
            f"{self.name}: {self.num_objects} data objects, "
            f"{self.num_instruments} instruments ({self.num_instrument_classes} classes), "
            f"{self.num_sites} sites in {self.num_regions} regions, "
            f"{self.num_data_types} data types in {self.num_disciplines} disciplines"
        )

    def __repr__(self) -> str:
        return f"FacilityCatalog({self.describe()})"
