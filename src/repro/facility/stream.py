"""Out-of-core query-trace generation in fixed-size user blocks.

:func:`generate_trace` materializes a whole year of queries at once, which
tops out around 10⁴ users: the per-user mixture fan-out alone is M×N float64.
This module generates the same *distribution* of traces block by block and
writes each block incrementally into a content-addressed
:class:`~repro.store.ArtifactStore`, so peak memory is bounded by a block —
the path to the paper's 10⁶-user / 10⁷-record corpus sizes.

Two deliberate contracts:

- **Block size is a pure performance knob.**  Generation is internally
  chunked at the fixed :data:`GEN_CHUNK` user granularity with one child
  generator per chunk (``SeedSequence(entropy=(seed, tag), spawn_key=(kind,
  chunk))``), and chunks are re-sliced onto storage blocks afterwards.  The
  emitted records are therefore a pure function of ``(recipe, seed)`` and
  bit-identical across block sizes (locked by tests at {1, 7, 10⁴}).
- **User-major layout.**  Blocks partition the user id space in ascending
  order and timestamps ascend within each user, unlike the time-major
  :class:`~repro.facility.trace.QueryTrace`.  Downstream interaction dedup
  only consumes (user, object) pairs, for which user-major order is exactly
  what the chunked builders need; time-ordered analyses should keep using
  the monolithic generator.

Every byte that reaches disk goes through the store's ``put``/``get`` funnel
(atomic writes, sha256 verification, mmap'd loads) — the blocks are ordinary
artifacts keyed by ``(recipe, block_size, block_index)`` plus a manifest
keyed by ``(recipe, block_size)``, so a warm run re-opens the stream without
touching the facility builders at all.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.facility.affinity import AffinityModel
from repro.facility.catalog import FacilityCatalog
from repro.facility.trace import SECONDS_PER_YEAR, QueryTrace
from repro.facility.users import UserPopulation
from repro.store import ArtifactStore

__all__ = [
    "GEN_CHUNK",
    "TRACE_BLOCK_KIND",
    "TRACE_STREAM_KIND",
    "TRACE_STREAM_SCHEMA",
    "TraceBlock",
    "TraceReader",
    "stream_trace",
    "load_trace_stream",
    "stream_config",
]

#: Internal generation granularity in users.  Not a tuning knob: changing it
#: changes which child RNG draws which user's queries, i.e. the trace bits —
#: which is why it is baked into every stream fingerprint below.
GEN_CHUNK = 4096

TRACE_BLOCK_KIND = "trace_block"
TRACE_STREAM_KIND = "trace_stream"
TRACE_STREAM_SCHEMA = 1

#: Extra entropy word mixed into every stream SeedSequence, so stream RNG
#: streams can never collide with other consumers of the same integer seed.
_ENTROPY_TAG = 0x74726163  # "trac"
_KIND_MIXTURE = 0
_KIND_CHUNK = 1


def _stream_rng(seed: int, kind: int, index: int) -> np.random.Generator:
    ss = np.random.SeedSequence(entropy=(int(seed), _ENTROPY_TAG), spawn_key=(kind, index))
    return np.random.default_rng(ss)


def stream_config(recipe: dict, block_size: int) -> dict:
    """Fingerprint config of a stream manifest (blocks add ``block_index``)."""
    return {"recipe": recipe, "block_size": int(block_size), "gen_chunk": GEN_CHUNK}


def _block_config(recipe: dict, block_size: int, index: int) -> dict:
    config = stream_config(recipe, block_size)
    config["block_index"] = int(index)
    return config


def _segment_positions(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s+l)`` ranges, vectorized."""
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    shift = np.concatenate(([np.int64(0)], np.cumsum(lens)[:-1]))
    return np.repeat(starts - shift, lens) + np.arange(total, dtype=np.int64)


@dataclasses.dataclass(frozen=True)
class TraceBlock:
    """One user block of a streamed trace (users ``[user_lo, user_hi)``)."""

    index: int
    user_lo: int
    user_hi: int
    user_ids: np.ndarray
    object_ids: np.ndarray
    timestamps: np.ndarray

    def __len__(self) -> int:
        return len(self.user_ids)


class _BlockGenerator:
    """Draws trace records chunk by chunk, one child RNG per chunk.

    Per-user query counts follow the same lognormal as
    :class:`~repro.facility.trace.TraceGenerator`; objects are drawn by
    inverse-CDF sampling from the deduplicated mixture rows
    (:meth:`AffinityModel.unique_user_mixtures`), so memory is K×N for the
    K distinct (site, dtype) combinations — never M×N.
    """

    def __init__(
        self,
        catalog: FacilityCatalog,
        population: UserPopulation,
        affinity: AffinityModel,
        seed: int,
        queries_per_user_mean: float,
        lognormal_sigma: float,
    ):
        if queries_per_user_mean <= 0:
            raise ValueError("queries_per_user_mean must be positive")
        if lognormal_sigma < 0:
            raise ValueError("lognormal_sigma must be nonnegative")
        if population.num_users <= 0:
            raise ValueError("population has no users")
        if catalog.num_objects <= 0:
            raise ValueError("catalog has no data objects")
        self.seed = int(seed)
        self.num_users = population.num_users
        self.num_objects = catalog.num_objects
        self._sigma = float(lognormal_sigma)
        self._mu = float(np.log(queries_per_user_mean) - 0.5 * self._sigma**2)
        rows, inverse = affinity.unique_user_mixtures(
            catalog, population, _stream_rng(self.seed, _KIND_MIXTURE, 0)
        )
        self._cdfs = np.cumsum(rows, axis=1)
        self._row_of_user = np.asarray(inverse, dtype=np.int64)

    @property
    def num_chunks(self) -> int:
        return math.ceil(self.num_users / GEN_CHUNK)

    def chunk(self, index: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate users ``[index*GEN_CHUNK, ...)`` of the trace."""
        lo = index * GEN_CHUNK
        hi = min(lo + GEN_CHUNK, self.num_users)
        rng = _stream_rng(self.seed, _KIND_CHUNK, index)
        n = hi - lo
        counts = np.maximum(
            np.ceil(rng.lognormal(self._mu, self._sigma, size=n)).astype(np.int64), 1
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        user_ids = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
        object_ids = np.empty(total, dtype=np.int64)
        rows = self._row_of_user[lo:hi]
        for r in np.unique(rows):
            sel = np.flatnonzero(rows == r)
            pos = _segment_positions(offsets[sel], counts[sel])
            cdf = self._cdfs[r]
            draws = rng.random(len(pos)) * cdf[-1]
            object_ids[pos] = np.minimum(
                np.searchsorted(cdf, draws, side="right"), self.num_objects - 1
            )
        timestamps = rng.uniform(0.0, SECONDS_PER_YEAR, size=total)
        # user_ids is nondecreasing, so this permutation only reorders each
        # user's segment: timestamps ascend within every user while the
        # (i.i.d.) object draws keep generation order.
        order = np.lexsort((timestamps, user_ids))
        return user_ids, object_ids, timestamps[order]


class TraceReader:
    """Block iterator over a streamed trace; never holds the full trace.

    Blocks come either from an :class:`~repro.store.ArtifactStore` (mmap'd
    per access, so resident memory is only the pages a consumer touches) or
    from an in-memory list when the stream was generated without a store.
    """

    def __init__(
        self,
        num_users: int,
        num_objects: int,
        block_size: int,
        records_per_block: np.ndarray,
        store: Optional[ArtifactStore] = None,
        recipe: Optional[dict] = None,
        blocks: Optional[List[TraceBlock]] = None,
    ):
        if (blocks is None) == (store is None):
            raise ValueError("TraceReader needs exactly one of (store+recipe, blocks)")
        if store is not None and recipe is None:
            raise ValueError("store-backed TraceReader needs the recipe that keyed it")
        self.num_users = int(num_users)
        self.num_objects = int(num_objects)
        self.block_size = int(block_size)
        self.records_per_block = np.asarray(records_per_block, dtype=np.int64)
        self._store = store
        self._recipe = recipe
        self._blocks = blocks

    @property
    def num_blocks(self) -> int:
        return len(self.records_per_block)

    @property
    def num_records(self) -> int:
        return int(self.records_per_block.sum())

    def block_users(self, index: int) -> Tuple[int, int]:
        """The user id range ``[lo, hi)`` block ``index`` covers."""
        lo = index * self.block_size
        return lo, min(lo + self.block_size, self.num_users)

    def block(self, index: int) -> TraceBlock:
        if not 0 <= index < self.num_blocks:
            raise IndexError(f"block index {index} out of range [0, {self.num_blocks})")
        if self._blocks is not None:
            return self._blocks[index]
        assert self._store is not None and self._recipe is not None
        artifact = self._store.get(
            TRACE_BLOCK_KIND,
            _block_config(self._recipe, self.block_size, index),
            TRACE_STREAM_SCHEMA,
        )
        if artifact is None:
            raise RuntimeError(
                f"trace block {index} missing or corrupt in the artifact store; "
                "regenerate the stream with stream_trace()"
            )
        lo, hi = self.block_users(index)
        return TraceBlock(
            index=index,
            user_lo=lo,
            user_hi=hi,
            user_ids=artifact.array("user_ids"),
            object_ids=artifact.array("object_ids"),
            timestamps=artifact.array("timestamps"),
        )

    def iter_blocks(self) -> Iterator[TraceBlock]:
        for index in range(self.num_blocks):
            yield self.block(index)

    def pair_chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """(user_ids, object_ids) per block — what the chunked builders eat.

        Timestamp arrays are never touched, so their pages are never even
        faulted in on the store-backed path.
        """
        for block in self.iter_blocks():
            yield block.user_ids, block.object_ids

    def materialize(self) -> QueryTrace:
        """Concatenate every block into a :class:`QueryTrace` (test scale).

        The result is user-major (see module docstring), not time-major like
        the monolithic generator's output.
        """
        users = np.concatenate([b.user_ids for b in self.iter_blocks()])
        objects = np.concatenate([b.object_ids for b in self.iter_blocks()])
        stamps = np.concatenate([b.timestamps for b in self.iter_blocks()])
        return QueryTrace(users, objects, stamps, self.num_users, self.num_objects)


def stream_trace(
    catalog: FacilityCatalog,
    population: UserPopulation,
    affinity: AffinityModel,
    seed: int = 0,
    queries_per_user_mean: float = 60.0,
    lognormal_sigma: float = 1.2,
    block_size: int = GEN_CHUNK,
    store: Optional[ArtifactStore] = None,
    recipe: Optional[dict] = None,
) -> TraceReader:
    """Generate a trace in user blocks, writing each block as it completes.

    With a ``store``, blocks are persisted incrementally (peak memory stays
    around ``max(block_size, GEN_CHUNK)`` users of records) and ``recipe``
    must carry the full build identity — it keys every block artifact.
    Without a store the blocks are kept in memory (test scale only).
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if store is not None and recipe is None:
        raise ValueError("stream_trace with a store needs a recipe to fingerprint blocks")
    if recipe is None:
        recipe = {}
    gen = _BlockGenerator(
        catalog, population, affinity, seed, queries_per_user_mean, lognormal_sigma
    )
    num_users = gen.num_users
    num_blocks = math.ceil(num_users / block_size)
    records = np.zeros(num_blocks, dtype=np.int64)
    mem_blocks: Optional[List[TraceBlock]] = [] if store is None else None
    pending: Dict[int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}

    def flush(index: int) -> None:
        parts = pending.pop(index, [])
        users = np.concatenate([p[0] for p in parts]) if parts else np.zeros(0, np.int64)
        objects = np.concatenate([p[1] for p in parts]) if parts else np.zeros(0, np.int64)
        stamps = np.concatenate([p[2] for p in parts]) if parts else np.zeros(0, np.float64)
        records[index] = len(users)
        lo = index * block_size
        hi = min(lo + block_size, num_users)
        if store is None:
            assert mem_blocks is not None
            mem_blocks.append(TraceBlock(index, lo, hi, users, objects, stamps))
        else:
            store.put(
                TRACE_BLOCK_KIND,
                _block_config(recipe, block_size, index),
                TRACE_STREAM_SCHEMA,
                {"user_ids": users, "object_ids": objects, "timestamps": stamps},
                {"user_lo": lo, "user_hi": hi},
            )

    next_flush = 0
    for chunk_index in range(gen.num_chunks):
        users, objects, stamps = gen.chunk(chunk_index)
        block_of = users // block_size
        if len(users):
            bounds = np.flatnonzero(np.diff(block_of)) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [len(users)]))
            for s, e in zip(starts, ends):
                pending.setdefault(int(block_of[s]), []).append(
                    (users[s:e], objects[s:e], stamps[s:e])
                )
        generated_users = min((chunk_index + 1) * GEN_CHUNK, num_users)
        # A block is complete once every one of its users has been generated;
        # chunks ascend through the user space, so completion is a frontier.
        while next_flush < num_blocks and (next_flush + 1) * block_size <= generated_users:
            flush(next_flush)
            next_flush += 1
    while next_flush < num_blocks:
        flush(next_flush)
        next_flush += 1

    if store is not None:
        store.put(
            TRACE_STREAM_KIND,
            stream_config(recipe, block_size),
            TRACE_STREAM_SCHEMA,
            {"records_per_block": records},
            {
                "num_users": num_users,
                "num_objects": gen.num_objects,
                "block_size": int(block_size),
                "num_blocks": num_blocks,
                "total_records": int(records.sum()),
            },
        )
    return TraceReader(
        num_users=num_users,
        num_objects=gen.num_objects,
        block_size=block_size,
        records_per_block=records,
        store=store,
        recipe=recipe if store is not None else None,
        blocks=mem_blocks,
    )


def load_trace_stream(
    store: ArtifactStore, recipe: dict, block_size: int
) -> Optional[TraceReader]:
    """Re-open a previously streamed trace; ``None`` if any piece is missing.

    The manifest and every block are verified up front (the store checks
    sha256 on ``get``), so a reader returned here will not fail mid-iteration
    on a corrupt block — corruption surfaces as a plain warm-miss and the
    caller regenerates.
    """
    manifest = store.get(TRACE_STREAM_KIND, stream_config(recipe, block_size), TRACE_STREAM_SCHEMA)
    if manifest is None:
        return None
    records = np.asarray(manifest.array("records_per_block"), dtype=np.int64)
    for index in range(len(records)):
        block = store.get(
            TRACE_BLOCK_KIND, _block_config(recipe, block_size, index), TRACE_STREAM_SCHEMA
        )
        if block is None:
            return None
    return TraceReader(
        num_users=int(manifest.meta["num_users"]),
        num_objects=int(manifest.meta["num_objects"]),
        block_size=int(manifest.meta["block_size"]),
        records_per_block=records,
        store=store,
        recipe=recipe,
    )
