"""Geographic primitives for the facility simulators.

Facilities deploy instruments at geo-referenced sites grouped into *regions*
(OOI calls them research arrays; GAGE groups stations by state).  User
organizations also live at coordinates; the Section-III locality affinity is
expressed through these.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple, Union

import numpy as np

EARTH_RADIUS_KM = 6371.0088

__all__ = ["GeoPoint", "Region", "haversine_km", "pairwise_haversine_km", "jitter_around"]


@dataclasses.dataclass(frozen=True)
class GeoPoint:
    """A (latitude, longitude) pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self):
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometers."""
        return float(haversine_km(self.lat, self.lon, other.lat, other.lon))


@dataclasses.dataclass(frozen=True)
class Region:
    """A named geographic region with a center and characteristic radius.

    For OOI this models a research array (e.g. "Cabled Axial Seamount");
    for GAGE, a state-level grouping of GNSS stations.
    """

    region_id: int
    name: str
    center: GeoPoint
    radius_km: float

    def __post_init__(self):
        if self.radius_km <= 0:
            raise ValueError(f"radius_km must be positive, got {self.radius_km}")

    def contains(self, point: GeoPoint) -> bool:
        """Whether ``point`` falls within the characteristic radius."""
        return self.center.distance_km(point) <= self.radius_km


def haversine_km(
    lat1: Union[float, np.ndarray],
    lon1: Union[float, np.ndarray],
    lat2: Union[float, np.ndarray],
    lon2: Union[float, np.ndarray],
) -> Union[float, np.ndarray]:
    """Vectorized great-circle distance in km between (lat1,lon1) and (lat2,lon2).

    Accepts scalars or broadcastable arrays of degrees.
    """
    lat1, lon1, lat2, lon2 = (np.radians(np.asarray(x, dtype=np.float64)) for x in (lat1, lon1, lat2, lon2))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def pairwise_haversine_km(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Full pairwise distance matrix (n×n) for n points, vectorized."""
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    return haversine_km(lats[:, None], lons[:, None], lats[None, :], lons[None, :])


def jitter_around(
    center: GeoPoint, radius_km: float, rng: np.random.Generator, n: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` points uniformly within ``radius_km`` of ``center``.

    Returns (lats, lons) arrays.  Uses the small-angle planar approximation
    (adequate at facility scales, ≤ a few hundred km) with longitude scaled
    by cos(latitude), then clips to valid ranges.
    """
    if radius_km <= 0:
        raise ValueError(f"radius_km must be positive, got {radius_km}")
    r = radius_km * np.sqrt(rng.random(n))
    theta = rng.uniform(0.0, 2.0 * math.pi, n)
    dlat = (r * np.sin(theta)) / 111.32  # km per degree latitude
    coslat = max(math.cos(math.radians(center.lat)), 1e-6)
    dlon = (r * np.cos(theta)) / (111.32 * coslat)
    lats = np.clip(center.lat + dlat, -90.0, 90.0)
    lons = ((center.lon + dlon + 180.0) % 360.0) - 180.0
    return lats, lons
