"""Query-trace generation.

A :class:`QueryTrace` is the synthetic stand-in for the paper's one-year
activity logs: a flat structure-of-arrays of (user, data object, timestamp)
records.  :func:`generate_trace` draws per-user query counts from a
heavy-tailed lognormal (producing the Fig-3 distribution curves) and then
samples each user's queried objects from the affinity mixture distribution in
one vectorized multinomial per user.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.facility.affinity import AffinityModel
from repro.facility.catalog import FacilityCatalog
from repro.facility.users import UserPopulation
from repro.utils.rng import ensure_rng

__all__ = ["QueryTrace", "TraceGenerator", "generate_trace"]

SECONDS_PER_YEAR = 365 * 24 * 3600


@dataclasses.dataclass
class QueryTrace:
    """A flat query log: parallel arrays of equal length.

    Attributes
    ----------
    user_ids, object_ids:
        int64 arrays; one entry per query record.
    timestamps:
        float64 seconds since trace start, sorted ascending.
    num_users, num_objects:
        Sizes of the id spaces (some users/objects may not appear).
    """

    user_ids: np.ndarray
    object_ids: np.ndarray
    timestamps: np.ndarray
    num_users: int
    num_objects: int

    def __post_init__(self):
        self.user_ids = np.asarray(self.user_ids, dtype=np.int64)
        self.object_ids = np.asarray(self.object_ids, dtype=np.int64)
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        if not (len(self.user_ids) == len(self.object_ids) == len(self.timestamps)):
            raise ValueError("trace arrays must have equal length")
        if len(self.user_ids):
            if self.user_ids.min() < 0 or self.user_ids.max() >= self.num_users:
                raise ValueError("user id out of range")
            if self.object_ids.min() < 0 or self.object_ids.max() >= self.num_objects:
                raise ValueError("object id out of range")

    def __len__(self) -> int:
        return len(self.user_ids)

    def queries_of_user(self, user_id: int) -> np.ndarray:
        """Object ids queried by ``user_id`` (with multiplicity)."""
        return self.object_ids[self.user_ids == user_id]

    def per_user_counts(self) -> np.ndarray:
        """Number of query records per user, length ``num_users``."""
        return np.bincount(self.user_ids, minlength=self.num_users)

    def unique_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Deduplicated (user, object) interaction pairs."""
        keys = self.user_ids * np.int64(self.num_objects) + self.object_ids
        uniq = np.unique(keys)
        return uniq // self.num_objects, uniq % self.num_objects

    def subset(self, mask: np.ndarray) -> "QueryTrace":
        """A new trace containing only the records selected by ``mask``."""
        return QueryTrace(
            self.user_ids[mask],
            self.object_ids[mask],
            self.timestamps[mask],
            self.num_users,
            self.num_objects,
        )


class TraceGenerator:
    """Draws :class:`QueryTrace` objects for a (catalog, population, affinity) triple.

    Parameters
    ----------
    queries_per_user_mean:
        Mean of the per-user query-count distribution.
    lognormal_sigma:
        Shape of the heavy tail; ~1.2 reproduces the several-orders-of-
        magnitude spread visible in the paper's Fig 3.
    """

    def __init__(
        self,
        catalog: FacilityCatalog,
        population: UserPopulation,
        affinity: AffinityModel,
        queries_per_user_mean: float = 60.0,
        lognormal_sigma: float = 1.2,
    ):
        if queries_per_user_mean <= 0:
            raise ValueError("queries_per_user_mean must be positive")
        if lognormal_sigma < 0:
            raise ValueError("lognormal_sigma must be nonnegative")
        self.catalog = catalog
        self.population = population
        self.affinity = affinity
        self.queries_per_user_mean = queries_per_user_mean
        self.lognormal_sigma = lognormal_sigma

    def sample_query_counts(self, rng: np.random.Generator) -> np.ndarray:
        """Heavy-tailed per-user query counts (>=1 for every user)."""
        sigma = self.lognormal_sigma
        mu = np.log(self.queries_per_user_mean) - 0.5 * sigma**2
        counts = np.ceil(rng.lognormal(mu, sigma, size=self.population.num_users))
        return np.maximum(counts.astype(np.int64), 1)

    def generate(self, seed=0) -> QueryTrace:
        """Generate a full trace.

        Queries are i.i.d. per user given the user's mixture distribution, so
        we draw all of user ``u``'s objects with one ``rng.choice`` call and
        then assign uniformly-random timestamps over the simulated year.
        """
        rng = ensure_rng(seed)
        counts = self.sample_query_counts(rng)
        mixtures = self.affinity.user_mixtures(self.catalog, self.population, rng)
        total = int(counts.sum())
        user_ids = np.repeat(np.arange(self.population.num_users, dtype=np.int64), counts)
        object_ids = np.empty(total, dtype=np.int64)
        offset = 0
        for u in range(self.population.num_users):
            c = int(counts[u])
            object_ids[offset : offset + c] = rng.choice(
                self.catalog.num_objects, size=c, p=mixtures[u]
            )
            offset += c
        timestamps = np.sort(rng.uniform(0.0, SECONDS_PER_YEAR, size=total))
        # Timestamps are sorted globally; shuffle record order to match, so
        # the trace is time-ordered like a real log.
        order = rng.permutation(total)
        user_ids, object_ids = user_ids[order], object_ids[order]
        return QueryTrace(
            user_ids=user_ids,
            object_ids=object_ids,
            timestamps=timestamps,
            num_users=self.population.num_users,
            num_objects=self.catalog.num_objects,
        )


def generate_trace(
    catalog: FacilityCatalog,
    population: UserPopulation,
    affinity: AffinityModel,
    seed=0,
    queries_per_user_mean: float = 60.0,
    lognormal_sigma: float = 1.2,
) -> QueryTrace:
    """Convenience wrapper: build a :class:`TraceGenerator` and generate once."""
    gen = TraceGenerator(
        catalog,
        population,
        affinity,
        queries_per_user_mean=queries_per_user_mean,
        lognormal_sigma=lognormal_sigma,
    )
    return gen.generate(seed=seed)
