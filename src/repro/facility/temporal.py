"""Temporal structure for query traces: sessions, diurnal and weekly cycles.

The base trace generator stamps queries uniformly over the simulated year.
Real facility logs are bursty — users work in *sessions* (clusters of
queries minutes apart), during working hours, on weekdays.  This module
re-stamps a trace with that structure, and provides the measurement
functions that verify it (inter-arrival statistics, hour-of-day profile).

This matters beyond realism: session structure is one of the trace features
our attribute-driven generative model lacks relative to the paper's real
logs (see EXPERIMENTS.md, Table II discussion), and this module is the
hook for closing that gap in future work.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.facility.trace import SECONDS_PER_YEAR, QueryTrace
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["SessionConfig", "add_session_structure", "interarrival_stats", "hour_of_day_profile"]

SECONDS_PER_DAY = 24 * 3600
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Parameters of the session process.

    Queries are grouped into sessions of geometric size (mean
    ``mean_session_length``); session start times prefer working hours
    (lognormal around ``peak_hour``) on weekdays (weekend activity damped by
    ``weekend_factor``); within a session, queries are seconds-to-minutes
    apart (exponential with mean ``intra_session_gap``).
    """

    mean_session_length: float = 6.0
    intra_session_gap: float = 90.0  # seconds
    peak_hour: float = 14.0
    hour_spread: float = 3.5
    weekend_factor: float = 0.25

    def __post_init__(self):
        check_positive("mean_session_length", self.mean_session_length)
        check_positive("intra_session_gap", self.intra_session_gap)
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError(f"peak_hour must be in [0, 24), got {self.peak_hour}")
        check_positive("hour_spread", self.hour_spread)
        if not 0.0 < self.weekend_factor <= 1.0:
            raise ValueError(f"weekend_factor must be in (0, 1], got {self.weekend_factor}")


def add_session_structure(
    trace: QueryTrace, config: SessionConfig = SessionConfig(), seed=0
) -> QueryTrace:
    """Return a copy of ``trace`` with session-structured timestamps.

    Each user's records are regrouped into sessions; record order within a
    user is preserved (queries keep their objects, only timing changes), and
    the global record order is re-sorted by the new timestamps.
    """
    rng = ensure_rng(seed)
    new_ts = np.empty(len(trace), dtype=np.float64)
    for user in range(trace.num_users):
        idx = np.flatnonzero(trace.user_ids == user)
        n = len(idx)
        if n == 0:
            continue
        # Partition the user's n queries into sessions of geometric size.
        sessions = []
        remaining = n
        while remaining > 0:
            size = min(1 + rng.geometric(1.0 / config.mean_session_length) - 1, remaining)
            size = max(size, 1)
            sessions.append(size)
            remaining -= size
        starts = _sample_session_starts(len(sessions), config, rng)
        pos = 0
        for start, size in zip(starts, sessions):
            gaps = rng.exponential(config.intra_session_gap, size=size)
            gaps[0] = 0.0
            times = start + np.cumsum(gaps)
            new_ts[idx[pos : pos + size]] = times
            pos += size
    order = np.argsort(new_ts, kind="stable")
    return QueryTrace(
        user_ids=trace.user_ids[order],
        object_ids=trace.object_ids[order],
        timestamps=np.clip(new_ts[order], 0.0, SECONDS_PER_YEAR),
        num_users=trace.num_users,
        num_objects=trace.num_objects,
    )


def _sample_session_starts(
    n_sessions: int, config: SessionConfig, rng: np.random.Generator
) -> np.ndarray:
    """Session start times over the year, biased to weekday working hours."""
    starts = np.empty(n_sessions)
    for i in range(n_sessions):
        while True:
            day = int(rng.integers(0, 365))
            weekday = day % 7  # day 0 is a Monday by convention
            if weekday >= 5 and rng.random() > config.weekend_factor:
                continue
            hour = rng.normal(config.peak_hour, config.hour_spread) % 24.0
            starts[i] = day * SECONDS_PER_DAY + hour * 3600.0
            break
    return np.sort(starts)


def interarrival_stats(trace: QueryTrace, session_gap_threshold: float = 1800.0) -> Dict[str, float]:
    """Per-user inter-arrival statistics and the burstiness signature.

    ``fraction_within_session`` is the share of consecutive same-user gaps
    below ``session_gap_threshold`` (default 30 min); bursty traces have a
    high value, uniform traces a low one.
    """
    gaps = []
    for user in range(trace.num_users):
        ts = np.sort(trace.timestamps[trace.user_ids == user])
        if len(ts) >= 2:
            gaps.append(np.diff(ts))
    if not gaps:
        return {"median_gap_seconds": float("nan"), "fraction_within_session": 0.0}
    flat = np.concatenate(gaps)
    return {
        "median_gap_seconds": float(np.median(flat)),
        "mean_gap_seconds": float(flat.mean()),
        "fraction_within_session": float((flat < session_gap_threshold).mean()),
    }


def hour_of_day_profile(trace: QueryTrace) -> np.ndarray:
    """Fraction of queries per hour of day (length 24, sums to 1)."""
    hours = ((trace.timestamps % SECONDS_PER_DAY) // 3600).astype(np.int64)
    counts = np.bincount(hours, minlength=24).astype(np.float64)
    total = counts.sum()
    return counts / total if total else counts
