"""Content-addressed artifact store: fingerprints, atomic writes, mmap reads.

Key design decisions (see DESIGN.md §9):

- **Fingerprints hash the builder config, not the array contents.**  Every
  stage output is a pure function of its configuration (seeds included), so
  hashing the canonical-JSON config is enough to identify the payload — and
  it lets a consumer decide *before building anything* whether the artifact
  exists.  Hashing contents would require producing the contents first,
  which is exactly the work the cache exists to skip.
- **Artifacts are directories** of one ``meta.json`` plus one uncompressed
  ``.npy`` file per array.  Uncompressed ``.npy`` is the only numpy
  container that memory-maps, so a warm load costs page-cache faults, not
  a parse; the zip-based ``.npz`` containers cannot mmap.
- **Writes are atomic**: the directory is populated under ``tmp/`` and
  ``os.replace``-renamed into place.  A crash mid-write leaves only a stray
  tmp directory (reaped by ``gc``); readers never observe a half-written
  artifact.  When two writers race, the loser's rename fails (the target
  exists), it discards its build and adopts the winner's — which is
  content-identical by construction.
- **Loads verify**: every file's sha256 is checked against ``meta.json``
  before any array is handed out.  A truncated, corrupted, or foreign entry
  is evicted and reported as a miss — the caller rebuilds; it never crashes
  and never silently consumes bad bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import time
import uuid
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "Artifact",
    "ArtifactStore",
    "canonical_json",
    "fingerprint",
    "resolve_cache_dir",
]

PathLike = Union[str, pathlib.Path]

_FORMAT = "repro.artifact"
_FORMAT_VERSION = 1
_META_NAME = "meta.json"
_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Directory-name prefix length of the sha256 hex digest.  20 hex chars =
#: 80 bits — collision-free for any plausible artifact population; the full
#: digest is stored in ``meta.json`` and checked on load.
_DIGEST_PREFIX = 20


def _jsonify(obj):
    """Recursively normalize ``obj`` into canonical-JSON-compatible values."""
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"config keys must be strings, got {key!r}")
            out[key] = _jsonify(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonify(dataclasses.asdict(obj))
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not np.isfinite(obj):
            raise ValueError(f"non-finite float {obj!r} cannot enter a fingerprint")
        return obj
    raise TypeError(f"config value {obj!r} ({type(obj).__name__}) is not fingerprintable")


def canonical_json(obj) -> str:
    """Serialize ``obj`` to canonical JSON (sorted keys, compact, no NaN).

    Two configs that compare equal always serialize to the same bytes, so
    the fingerprint is stable across processes, dict orderings, and
    tuple-vs-list spellings.
    """
    return json.dumps(_jsonify(obj), sort_keys=True, separators=(",", ":"), allow_nan=False)


def fingerprint(kind: str, config: dict, schema_version: int) -> str:
    """sha256 hex digest identifying one artifact.

    The digest covers the artifact ``kind``, its ``schema_version`` (bumped
    whenever the payload layout changes — the staleness/invalidation rule),
    and the canonical-JSON builder config.  Upstream-stage digests are
    embedded in downstream configs, so the key space forms a Merkle chain:
    changing any ancestor's config re-keys every descendant.
    """
    payload = canonical_json(
        {"kind": kind, "schema_version": int(schema_version), "config": config}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def resolve_cache_dir(explicit: Optional[PathLike] = None) -> Optional[pathlib.Path]:
    """Resolve the cache directory: explicit value, else ``$REPRO_CACHE_DIR``.

    Returns ``None`` when neither is set — caching is strictly opt-in; no
    command writes a cache the user did not ask for.
    """
    if explicit is not None:
        return pathlib.Path(explicit)
    env = os.environ.get(_ENV_CACHE_DIR, "").strip()
    return pathlib.Path(env) if env else None


def _sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class ArtifactInfo:
    """One ``ls`` row: identity, location and footprint of a stored artifact."""

    kind: str
    digest: str
    path: pathlib.Path
    nbytes: int
    created: float
    config: dict


class Artifact:
    """A verified artifact directory; arrays are served memory-mapped."""

    def __init__(self, path: pathlib.Path, meta: dict):
        self.path = path
        self._meta = meta

    @property
    def kind(self) -> str:
        return self._meta["kind"]

    @property
    def digest(self) -> str:
        return self._meta["digest"]

    @property
    def config(self) -> dict:
        return self._meta["config"]

    @property
    def meta(self) -> dict:
        """The builder's extra (non-array) payload."""
        return self._meta["meta"]

    def array_names(self) -> List[str]:
        return sorted(self._meta["files"])

    def array(self, name: str) -> np.ndarray:
        """Memory-map one array (read-only).

        The mapping is lazy per call; fancy indexing by any consumer copies
        out of the map, so downstream mutation can never corrupt the store.
        """
        if name not in self._meta["files"]:
            raise KeyError(f"artifact {self.kind}/{self.digest[:12]} has no array {name!r}")
        return np.load(self.path / f"{name}.npy", mmap_mode="r", allow_pickle=False)

    def __repr__(self) -> str:
        return f"Artifact({self.kind}, {self.digest[:12]}, {len(self._meta['files'])} arrays)"


class ArtifactStore:
    """Content-addressed directory of build artifacts.

    Layout::

        <root>/objects/<kind>-<digest20>/meta.json
        <root>/objects/<kind>-<digest20>/<array>.npy
        <root>/tmp/<pid>-<uuid>/            (in-flight writes; reaped by gc)

    The store never raises on corrupt entries: a failed verification evicts
    the entry and reports a miss, so the worst case is a rebuild.  Counters
    (``hits``/``misses``/``builds``/``evictions``) make cache behavior
    observable to telemetry and tests.
    """

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)
        self.objects_dir = self.root / "objects"
        self.tmp_dir = self.root / "tmp"
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0

    # ----------------------------------------------------------------- paths
    def _entry_name(self, kind: str, digest: str) -> str:
        return f"{kind}-{digest[:_DIGEST_PREFIX]}"

    def entry_path(self, kind: str, config: dict, schema_version: int) -> pathlib.Path:
        """On-disk directory an artifact with this identity would occupy."""
        digest = fingerprint(kind, config, schema_version)
        return self.objects_dir / self._entry_name(kind, digest)

    # ------------------------------------------------------------------ read
    def get(self, kind: str, config: dict, schema_version: int) -> Optional[Artifact]:
        """Load and verify an artifact; ``None`` on miss or corruption."""
        digest = fingerprint(kind, config, schema_version)
        path = self.objects_dir / self._entry_name(kind, digest)
        artifact = self._load_verified(path, expect_digest=digest)
        if artifact is None:
            self.misses += 1
        else:
            self.hits += 1
        return artifact

    def _load_verified(
        self, path: pathlib.Path, expect_digest: Optional[str] = None
    ) -> Optional[Artifact]:
        if not path.is_dir():
            return None
        try:
            meta = json.loads((path / _META_NAME).read_text(encoding="utf-8"))
            if meta.get("format") != _FORMAT or meta.get("format_version") != _FORMAT_VERSION:
                raise ValueError("foreign or incompatible artifact format")
            if expect_digest is not None and meta.get("digest") != expect_digest:
                raise ValueError("digest mismatch between directory name and meta.json")
            for name, entry in meta["files"].items():
                file_path = path / f"{name}.npy"
                if not file_path.is_file():
                    raise ValueError(f"missing array file {name}.npy")
                if file_path.stat().st_size != int(entry["bytes"]):
                    raise ValueError(f"size mismatch for {name}.npy")
                if _sha256_file(file_path) != entry["sha256"]:
                    raise ValueError(f"sha256 mismatch for {name}.npy")
            return Artifact(path, meta)
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            # Truncated, corrupted, or foreign entry: evict so the slot can
            # be rebuilt; the caller sees a plain miss, never an exception.
            self._evict(path)
            return None

    def _evict(self, path: pathlib.Path) -> None:
        shutil.rmtree(path, ignore_errors=True)
        self.evictions += 1

    # ----------------------------------------------------------------- write
    def put(
        self,
        kind: str,
        config: dict,
        schema_version: int,
        arrays: Dict[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> Artifact:
        """Atomically persist ``arrays`` + ``meta`` under the config's key."""
        digest = fingerprint(kind, config, schema_version)
        final = self.objects_dir / self._entry_name(kind, digest)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.tmp_dir / f"{os.getpid()}-{uuid.uuid4().hex}"
        tmp.mkdir()
        try:
            files: Dict[str, dict] = {}
            for name, array in arrays.items():
                if "/" in name or name in ("", _META_NAME):
                    raise ValueError(f"invalid array name {name!r}")
                array = np.ascontiguousarray(array)
                if array.dtype == object:
                    raise TypeError(f"array {name!r} has object dtype; not storable")
                file_path = tmp / f"{name}.npy"
                np.save(file_path, array, allow_pickle=False)
                files[name] = {
                    "sha256": _sha256_file(file_path),
                    "bytes": file_path.stat().st_size,
                }
            record = {
                "format": _FORMAT,
                "format_version": _FORMAT_VERSION,
                "kind": kind,
                "schema_version": int(schema_version),
                "digest": digest,
                "config": _jsonify(config),
                "created_unix": time.time(),
                "files": files,
                "meta": _jsonify(meta or {}),
            }
            (tmp / _META_NAME).write_text(
                json.dumps(record, sort_keys=True, indent=1), encoding="utf-8"
            )
            try:
                os.replace(tmp, final)
            except OSError:
                # A concurrent writer renamed first (the target directory is
                # non-empty).  Both builds are pure functions of the same
                # config, so adopt the winner's copy; if theirs turns out
                # corrupt, evict it and take one more swing.
                shutil.rmtree(tmp, ignore_errors=True)
                existing = self._load_verified(final, expect_digest=digest)
                if existing is not None:
                    return existing
                return self.put(kind, config, schema_version, arrays, meta)
            return Artifact(final, record)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def get_or_build(
        self,
        kind: str,
        config: dict,
        schema_version: int,
        builder: Callable[[], Tuple[Dict[str, np.ndarray], dict]],
    ) -> Tuple[Artifact, bool]:
        """Return the cached artifact, or build+persist it.

        ``builder`` returns ``(arrays, meta)``.  The second element of the
        result is ``True`` when the builder actually ran — the stage-build
        signal the pipeline counters aggregate.
        """
        artifact = self.get(kind, config, schema_version)
        if artifact is not None:
            return artifact, False
        arrays, meta = builder()
        self.builds += 1
        return self.put(kind, config, schema_version, arrays, meta), True

    # ------------------------------------------------------------ management
    def ls(self, kinds: Optional[Iterable[str]] = None) -> List[ArtifactInfo]:
        """Enumerate verified artifacts, newest first."""
        wanted = set(kinds) if kinds is not None else None
        rows: List[ArtifactInfo] = []
        if not self.objects_dir.is_dir():
            return rows
        for path in sorted(self.objects_dir.iterdir()):
            artifact = self._load_verified(path)
            if artifact is None:
                continue
            if wanted is not None and artifact.kind not in wanted:
                continue
            nbytes = sum(f.stat().st_size for f in path.iterdir() if f.is_file())
            rows.append(
                ArtifactInfo(
                    kind=artifact.kind,
                    digest=artifact.digest,
                    path=path,
                    nbytes=nbytes,
                    created=float(artifact._meta.get("created_unix", 0.0)),
                    config=artifact.config,
                )
            )
        rows.sort(key=lambda r: r.created, reverse=True)
        return rows

    def gc(self, kinds: Optional[Iterable[str]] = None) -> Tuple[int, int]:
        """Remove artifacts (all, or only the named kinds) and stray tmp dirs.

        Returns ``(entries_removed, bytes_reclaimed)``.  Stray tmp
        directories — abandoned by crashed writers — are always reaped.
        """
        removed = 0
        reclaimed = 0
        wanted = set(kinds) if kinds is not None else None
        if self.objects_dir.is_dir():
            for path in list(self.objects_dir.iterdir()):
                if wanted is not None:
                    artifact = self._load_verified(path)
                    if artifact is not None and artifact.kind not in wanted:
                        continue
                reclaimed += sum(f.stat().st_size for f in path.rglob("*") if f.is_file())
                shutil.rmtree(path, ignore_errors=True)
                removed += 1
        if self.tmp_dir.is_dir():
            for path in list(self.tmp_dir.iterdir()):
                reclaimed += sum(f.stat().st_size for f in path.rglob("*") if f.is_file())
                shutil.rmtree(path, ignore_errors=True)
        return removed, reclaimed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/build/eviction counters for telemetry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return f"ArtifactStore({self.root})"
