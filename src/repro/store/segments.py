"""mmap'd shared-memory array segments for cross-process training.

The data-parallel training engine (:mod:`repro.train`) shares parameter
tables and per-worker gradient slabs between the master process and its
fork-spawned workers.  Every shared array lives in one :class:`SegmentArena`
— a directory of plain ``.npy`` files opened with
``numpy.lib.format.open_memmap`` in shared (``MAP_SHARED``) mode, so a write
by any process is immediately visible to every other process mapping the
same file.

This module is part of the sanctioned persistence funnel (reprolint RPL009):
raw-numpy memmap traffic for training segments happens here and nowhere
else.  The arena owns the lifetime of its directory — segments are scratch
state for one training run, not artifacts, so ``cleanup()`` removes them
(checkpoints of the *values* go through :mod:`repro.io.checkpoints` as
usual).

Fork discipline: create every segment **before** forking workers.  Children
inherit the parent's open memory mappings, so no path exchange or reopening
is needed; processes coordinate *when* to read and write through the
training engine's round barriers, not through this module.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = ["SegmentArena"]

PathLike = Union[str, pathlib.Path]


def _segment_path(root: pathlib.Path, name: str) -> pathlib.Path:
    """Validate a segment name and return its ``.npy`` path under ``root``.

    Names become file names, so path separators (or ``..``) would silently
    escape the arena directory — reject them loudly instead.
    """
    if not name or "/" in name or "\\" in name or name.startswith(".") or ".." in name:
        raise ValueError(f"invalid segment name {name!r}")
    return root / f"{name}.npy"


class SegmentArena:
    """A directory of shared-memory ``.npy`` segments.

    Parameters
    ----------
    root:
        Directory to hold the segment files.  ``None`` creates a private
        temporary directory that :meth:`cleanup` (or context exit) removes;
        an explicit root is left in place on cleanup, only the segment
        files themselves are deleted.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self._owns_root = root is None
        if root is None:
            self.root = pathlib.Path(tempfile.mkdtemp(prefix="repro-segments-"))
        else:
            self.root = pathlib.Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
        self._segments: Dict[str, np.memmap] = {}
        self._closed = False

    # ------------------------------------------------------------- creation
    def create(self, name: str, array: np.ndarray) -> np.memmap:
        """Create a segment initialized with a copy of ``array``.

        Returns the writable shared mapping; the caller typically rebinds a
        :class:`~repro.autograd.tensor.Parameter`'s ``.data`` to it so every
        optimizer update lands in shared memory.
        """
        array = np.asarray(array)
        seg = self.create_empty(name, array.shape, array.dtype)
        seg[...] = array
        return seg

    def create_empty(self, name: str, shape: Tuple[int, ...], dtype) -> np.memmap:
        """Create a zero-filled segment of the given shape and dtype."""
        if self._closed:
            raise ValueError("SegmentArena is closed")
        if name in self._segments:
            raise ValueError(f"segment {name!r} already exists")
        path = _segment_path(self.root, name)
        seg = np.lib.format.open_memmap(path, mode="w+", dtype=np.dtype(dtype), shape=tuple(shape))
        self._segments[name] = seg
        return seg

    def get(self, name: str) -> np.memmap:
        """Return an existing segment's mapping."""
        return self._segments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def __len__(self) -> int:
        return len(self._segments)

    # -------------------------------------------------------------- teardown
    def cleanup(self) -> None:
        """Release mappings and delete the segment files (idempotent).

        Only the creating process should call this; forked workers exit and
        let the OS drop their inherited mappings.
        """
        if self._closed:
            return
        self._closed = True
        for seg in self._segments.values():
            mm = getattr(seg, "_mmap", None)
            if mm is not None:
                mm.close()
        self._segments.clear()
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)
        else:
            for path in self.root.glob("*.npy"):
                path.unlink(missing_ok=True)

    def __enter__(self) -> "SegmentArena":
        return self

    def __exit__(self, *exc) -> bool:
        self.cleanup()
        return False
