"""Content-addressed on-disk artifact store.

The build pipeline (:mod:`repro.pipeline`) is a strict DAG — query traces →
collaborative knowledge graph → train/test split → prepared graph — and every
stage output is a pure function of its builder configuration.  This package
stores those outputs on disk keyed by a sha256 fingerprint of the
canonical-JSON builder config plus a schema version, so a warm run can skip
every regeneration and memory-map the arrays instead.

Persistence discipline: all ``np.save``/``np.load`` traffic in the project
funnels through :mod:`repro.io` and this package (enforced by reprolint
RPL009), so atomicity and hash-verification audits have one place to look.
"""

from repro.store.artifacts import (
    Artifact,
    ArtifactStore,
    canonical_json,
    fingerprint,
    resolve_cache_dir,
)
from repro.store.segments import SegmentArena

__all__ = [
    "Artifact",
    "ArtifactStore",
    "SegmentArena",
    "canonical_json",
    "fingerprint",
    "resolve_cache_dir",
]
