"""Benchmark dataset bundles.

``load_dataset("ooi")`` / ``load_dataset("gage")`` reproduce the evaluation
setup of Section VI-A — catalog → users → trace → interactions → 80/20
split — at a fixed seed.  ``scale="small"`` yields a miniature variant for
unit tests and quick benches.

Since the artifact-pipeline refactor a :class:`BenchmarkDataset` is a *lazy*
view over a :class:`~repro.pipeline.DatasetPipeline`: nothing is built until
an attribute is touched, and with a ``cache_dir`` the expensive stages come
back as memory-mapped artifacts.  Laziness is what makes warm runs fast —
a table harness that only needs the split and the prepared graph never pays
for catalog, population or trace generation at all.
"""

from __future__ import annotations

from typing import Optional

from repro.data.interactions import InteractionDataset
from repro.data.split import TrainTestSplit
from repro.facility.affinity import AffinityModel
from repro.facility.catalog import FacilityCatalog
from repro.facility.trace import QueryTrace
from repro.facility.users import UserPopulation
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import KnowledgeSources
from repro.pipeline import DatasetPipeline, DatasetRef
from repro.pipeline.stages import DATASET_NAMES

__all__ = ["BenchmarkDataset", "load_dataset", "dataset_from_ref", "DATASET_NAMES"]


class BenchmarkDataset:
    """Everything one evaluation run needs, materialized on demand.

    The attribute surface matches the eager dataclass this used to be
    (``catalog``, ``population``, ``trace``, ``interactions``, ``split``,
    ``build_ckg`` …), so consumers are unchanged; each property delegates to
    the underlying pipeline, which memoizes in-process and optionally in the
    artifact store.
    """

    def __init__(self, pipeline: DatasetPipeline):
        self._pipeline = pipeline

    # ------------------------------------------------------------- identity
    @property
    def pipeline(self) -> DatasetPipeline:
        return self._pipeline

    @property
    def name(self) -> str:
        return self._pipeline.name

    @property
    def seed(self) -> int:
        return self._pipeline.seed

    @property
    def affinity(self) -> AffinityModel:
        return self._pipeline.affinity

    def ref(self) -> DatasetRef:
        """Picklable handle for crossing process boundaries."""
        return self._pipeline.ref()

    # ---------------------------------------------------------------- stages
    @property
    def catalog(self) -> FacilityCatalog:
        return self._pipeline.facility()[0]

    @property
    def population(self) -> UserPopulation:
        return self._pipeline.facility()[1]

    @property
    def trace(self) -> QueryTrace:
        return self._pipeline.trace()

    @property
    def interactions(self) -> InteractionDataset:
        return self._pipeline.interactions()

    @property
    def split(self) -> TrainTestSplit:
        return self._pipeline.split()

    def build_ckg(
        self, sources: KnowledgeSources = KnowledgeSources.best()
    ) -> CollaborativeKnowledgeGraph:
        """CKG over the *training* interactions with the given sources."""
        return self._pipeline.ckg(sources)

    def prepared_graph(
        self, sources: KnowledgeSources = KnowledgeSources.best()
    ) -> PreparedGraph:
        """The shared graph runtime for the given sources."""
        return self._pipeline.graph(sources)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.catalog.describe()}; {self.population.describe()}; "
            f"{len(self.trace)} query records → {len(self.interactions)} interactions "
            f"({len(self.split.train)} train / {len(self.split.test)} test)"
        )

    def __repr__(self) -> str:
        return f"BenchmarkDataset({self._pipeline.describe()})"


def load_dataset(
    name: str = "ooi",
    scale: str = "full",
    seed: int = 7,
    affinity: Optional[AffinityModel] = None,
    cache_dir=None,
) -> BenchmarkDataset:
    """Build a (lazy) benchmark dataset bundle.

    Parameters
    ----------
    name:
        ``"ooi"`` or ``"gage"``.
    scale:
        ``"full"`` (Table-I-class sizes) or ``"small"`` (test-size).
    seed:
        Root seed; all pipeline stages derive independent child generators
        from it, so the bundle is bit-for-bit reproducible.
    affinity:
        Override the calibrated affinity preset (used by ablations).
    cache_dir:
        Artifact-store root; stages persist/load content-addressed
        artifacts there.  ``None`` honors ``$REPRO_CACHE_DIR``; empty
        environment means no caching.
    """
    return BenchmarkDataset(
        DatasetPipeline(name, scale=scale, seed=seed, affinity=affinity, cache_dir=cache_dir)
    )


def dataset_from_ref(ref: DatasetRef) -> BenchmarkDataset:
    """Materialize the dataset a :class:`DatasetRef` names.

    Worker-process entry point: the underlying pipeline is process-cached,
    so shards and model cells in one worker share stage materializations.
    """
    return BenchmarkDataset(ref.pipeline())
