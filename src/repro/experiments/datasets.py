"""Benchmark dataset bundles.

``load_dataset("ooi")`` / ``load_dataset("gage")`` build the full synthetic
pipeline — catalog → users → trace → interactions → 80/20 split — at a fixed
seed, reproducing the evaluation setup of Section VI-A.  ``scale="small"``
yields a miniature variant for unit tests and quick benches.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


from repro.data.interactions import InteractionDataset, trace_to_interactions
from repro.data.split import TrainTestSplit, per_user_split
from repro.facility.affinity import GAGE_AFFINITY, OOI_AFFINITY, AffinityModel
from repro.facility.catalog import FacilityCatalog
from repro.facility.gage import GAGEConfig, build_gage_catalog
from repro.facility.ooi import OOIConfig, build_ooi_catalog
from repro.facility.trace import QueryTrace, generate_trace
from repro.facility.users import UserPopulation, build_user_population
from repro.kg.ckg import CollaborativeKnowledgeGraph, build_ckg
from repro.kg.subgraphs import KnowledgeSources
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import check_in_choices

__all__ = ["BenchmarkDataset", "load_dataset", "DATASET_NAMES"]

DATASET_NAMES = ("ooi", "gage")


@dataclasses.dataclass
class BenchmarkDataset:
    """Everything one evaluation run needs, built at a fixed seed."""

    name: str
    catalog: FacilityCatalog
    population: UserPopulation
    affinity: AffinityModel
    trace: QueryTrace
    interactions: InteractionDataset
    split: TrainTestSplit
    seed: int

    def build_ckg(
        self, sources: KnowledgeSources = KnowledgeSources.best()
    ) -> CollaborativeKnowledgeGraph:
        """CKG over the *training* interactions with the given sources."""
        return build_ckg(
            self.catalog,
            self.population,
            self.split.train.user_ids,
            self.split.train.item_ids,
            sources=sources,
            seed=self.seed,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.catalog.describe()}; {self.population.describe()}; "
            f"{len(self.trace)} query records → {len(self.interactions)} interactions "
            f"({len(self.split.train)} train / {len(self.split.test)} test)"
        )


# Population scales per dataset/scale; chosen so the CKGs land in the
# paper's Table-I size class ("full") or run in seconds ("small").
_SCALES: Dict[str, Dict[str, dict]] = {
    "ooi": {
        "full": dict(num_users=300, num_orgs=40, num_cities=40, queries=60.0),
        "small": dict(num_users=60, num_orgs=10, num_cities=10, queries=30.0),
    },
    "gage": {
        "full": dict(num_users=900, num_orgs=120, num_cities=120, queries=60.0),
        "small": dict(num_users=80, num_orgs=12, num_cities=12, queries=30.0),
    },
}


def load_dataset(
    name: str = "ooi",
    scale: str = "full",
    seed: int = 7,
    affinity: Optional[AffinityModel] = None,
) -> BenchmarkDataset:
    """Build a benchmark dataset bundle.

    Parameters
    ----------
    name:
        ``"ooi"`` or ``"gage"``.
    scale:
        ``"full"`` (Table-I-class sizes) or ``"small"`` (test-size).
    seed:
        Root seed; all pipeline stages derive independent child generators
        from it, so the bundle is bit-for-bit reproducible.
    affinity:
        Override the calibrated affinity preset (used by ablations).
    """
    check_in_choices("name", name, DATASET_NAMES)
    check_in_choices("scale", scale, ("full", "small"))
    cfg = _SCALES[name][scale]
    seeds = SeedSequenceFactory(seed)

    if name == "ooi":
        catalog = build_ooi_catalog(
            OOIConfig() if scale == "full" else OOIConfig(num_sites=30),
            seed=seeds.get("catalog"),
        )
        aff = affinity if affinity is not None else OOI_AFFINITY
    else:
        catalog = build_gage_catalog(
            GAGEConfig()
            if scale == "full"
            else GAGEConfig(num_stations=120, num_cities=60),
            seed=seeds.get("catalog"),
        )
        aff = affinity if affinity is not None else GAGE_AFFINITY

    population = build_user_population(
        catalog,
        num_users=cfg["num_users"],
        num_orgs=cfg["num_orgs"],
        num_cities=cfg["num_cities"],
        seed=seeds.get("population"),
    )
    trace = generate_trace(
        catalog,
        population,
        aff,
        seed=seeds.get("trace"),
        queries_per_user_mean=cfg["queries"],
    )
    interactions = trace_to_interactions(trace)
    split = per_user_split(interactions, train_fraction=0.8, seed=seeds.get("split"))
    return BenchmarkDataset(
        name=name,
        catalog=catalog,
        population=population,
        affinity=aff,
        trace=trace,
        interactions=interactions,
        split=split,
        seed=seed,
    )
