"""Cold-start analysis: where the knowledge graph earns its keep.

The literature the paper builds on (Section II-B) motivates knowledge graphs
as a remedy for cold-start and data sparsity.  This harness slices the test
users by training-history length and evaluates each slice separately: the
expected shape is that KG-aware models (CKAT) hold up much better than pure
collaborative filtering (BPRMF) on the coldest slice, and the gap narrows
for warm users.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.data.split import TrainTestSplit
from repro.eval.evaluator import EvaluationResult, RankingEvaluator
from repro.utils.tables import TextTable

__all__ = ["ColdStartSlices", "cold_start_report", "slice_users_by_history"]

DEFAULT_BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("cold (≤4)", 0, 4),
    ("medium (5-14)", 5, 14),
    ("warm (15+)", 15, 10**9),
)


@dataclasses.dataclass(frozen=True)
class ColdStartSlices:
    """Per-bucket evaluation results for one model."""

    model: str
    buckets: Dict[str, EvaluationResult]


def slice_users_by_history(
    split: TrainTestSplit, buckets: Sequence[Tuple[str, int, int]] = DEFAULT_BUCKETS
) -> Dict[str, np.ndarray]:
    """Group test-active users by their number of *training* interactions."""
    degree = split.train.user_degree()
    eligible = split.test.active_users()
    out: Dict[str, np.ndarray] = {}
    for label, lo, hi in buckets:
        members = eligible[(degree[eligible] >= lo) & (degree[eligible] <= hi)]
        if members.size:
            out[label] = members
    return out


def cold_start_report(
    models: Dict[str, Callable[[np.ndarray], np.ndarray]],
    split: TrainTestSplit,
    k: int = 20,
    buckets: Sequence[Tuple[str, int, int]] = DEFAULT_BUCKETS,
) -> Tuple[Dict[str, ColdStartSlices], str]:
    """Evaluate each model's scoring function per history bucket.

    Parameters
    ----------
    models:
        Mapping model label → ``score_users``-style callable.

    Returns
    -------
    (results, rendered_table)
    """
    if not models:
        raise ValueError("no models given")
    slices = slice_users_by_history(split, buckets)
    if not slices:
        raise ValueError("no evaluable users in any bucket")
    evaluator = RankingEvaluator(split.train, split.test, k=k)
    results: Dict[str, ColdStartSlices] = {}
    table = TextTable(
        ["model"] + [f"{label} (n={len(users)})" for label, users in slices.items()],
        title=f"Cold-start slices: recall@{k} by training-history length",
    )
    for name, score_fn in models.items():
        per_bucket: Dict[str, EvaluationResult] = {}
        row: List = [name]
        for label, users in slices.items():
            res = evaluator.evaluate(score_fn, users=users)
            per_bucket[label] = res
            row.append(res.recall)
        results[name] = ColdStartSlices(model=name, buckets=per_bucket)
        table.add_row(row)
    return results, table.render()
