"""Benchmark-result aggregation.

The benchmark suite writes each rendered table to
``benchmarks/results/<name>.txt``; :func:`collect_results` gathers them into
one report (the basis of EXPERIMENTS.md's measured numbers), and
:func:`results_index` lists what has been produced so far — useful while a
long suite is still running.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Union

__all__ = ["results_index", "collect_results", "EXPECTED_RESULTS"]

PathLike = Union[str, pathlib.Path]

# Every artifact the full suite produces, in paper order.
EXPECTED_RESULTS: tuple = (
    "table1_ckg_stats",
    "table2_overall",
    "table2_shape",
    "table3_knowledge_sources",
    "table3_shape",
    "table4_attention",
    "table4_shape",
    "table5_depth",
    "table5_shape",
    "fig3_distributions",
    "fig4_tsne",
    "fig5_locality",
    "ablation_training",
    "ablation_partitioning",
)


def results_index(results_dir: PathLike) -> Dict[str, bool]:
    """Presence map of expected result files (True = produced)."""
    root = pathlib.Path(results_dir)
    return {name: (root / f"{name}.txt").exists() for name in EXPECTED_RESULTS}


def collect_results(results_dir: PathLike, strict: bool = False) -> str:
    """Concatenate all produced result tables into one report string.

    ``strict=True`` raises if any expected artifact is missing (useful as a
    completeness check after a full suite run); otherwise missing artifacts
    are listed at the end of the report.
    """
    root = pathlib.Path(results_dir)
    produced: List[str] = []
    missing: List[str] = []
    for name in EXPECTED_RESULTS:
        path = root / f"{name}.txt"
        if path.exists():
            produced.append(f"## {name}\n\n{path.read_text().rstrip()}")
        else:
            missing.append(name)
    if strict and missing:
        raise FileNotFoundError(f"missing benchmark artifacts: {missing}")
    report = "\n\n".join(produced)
    if missing:
        report += "\n\n## missing artifacts\n\n" + "\n".join(f"- {m}" for m in missing)
    return report
