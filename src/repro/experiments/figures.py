"""Harnesses regenerating the paper's Figures 3–5.

Figures are reported as data series plus ASCII renderings (this repository
is plotting-library-free); each harness returns the series the paper plots
and prints the summary statistics that determine the figure's qualitative
shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.distributions import UserQueryDistributions, compute_distributions
from repro.analysis.locality import PairStudyResult, pair_similarity_study, query_concentration
from repro.analysis.tsne import UserQueryEmbedding, tsne_embed_user_queries
from repro.experiments.datasets import BenchmarkDataset, load_dataset
from repro.utils.tables import TextTable

__all__ = [
    "PAPER_CONCENTRATION",
    "PAPER_FIG5_RATIOS",
    "figure3",
    "figure4",
    "figure5",
    "ascii_curve",
]

# Section III-B2 published statistics.
PAPER_CONCENTRATION = {
    "ooi": {"same_region_fraction": 0.431, "same_dtype_fraction": 0.516},
    "gage": {"same_region_fraction": 0.363, "same_dtype_fraction": 0.688},
}
PAPER_FIG5_RATIOS = {
    "ooi": {"region_ratio": 79.8, "dtype_ratio": 29.8},
    "gage": {"region_ratio": 22.87, "dtype_ratio": 2.21},
}


def ascii_curve(values: np.ndarray, width: int = 60, height: int = 10, log_y: bool = True) -> str:
    """Render a monotone curve as ASCII art (used for the Fig-3 series)."""
    values = np.asarray(values, dtype=np.float64)
    values = values[values > 0] if log_y else values
    if values.size == 0:
        return "(empty)"
    # Downsample to `width` columns.
    idx = np.linspace(0, len(values) - 1, num=min(width, len(values))).astype(int)
    ys = values[idx]
    if log_y:
        ys = np.log10(ys + 1)
    lo, hi = ys.min(), ys.max()
    span = max(hi - lo, 1e-9)
    rows = []
    levels = np.round((ys - lo) / span * (height - 1)).astype(int)
    for level in range(height - 1, -1, -1):
        rows.append("".join("#" if lv >= level else " " for lv in levels))
    axis = "-" * len(levels)
    return "\n".join(rows + [axis])


def figure3(
    datasets: Optional[List[BenchmarkDataset]] = None,
) -> Tuple[Dict[str, UserQueryDistributions], str]:
    """Figure 3: per-user query-distribution curves for both facilities."""
    datasets = datasets or [load_dataset("ooi"), load_dataset("gage")]
    dists: Dict[str, UserQueryDistributions] = {}
    blocks = []
    for ds in datasets:
        d = compute_distributions(ds.trace, ds.catalog)
        dists[ds.name] = d
        s = d.summary()
        blocks.append(
            f"Figure 3 [{ds.name}] — per-user distinct counts (sorted by activity)\n"
            f"data objects (max {s['max_objects']}, median {s['median_objects']:.0f}):\n"
            f"{ascii_curve(d.objects)}\n"
            f"locations (max {s['max_locations']}), data types (max {s['max_data_types']}); "
            f"query Gini {s['query_gini']:.3f}, top-10% share {s['objects_tail_ratio']:.2f}"
        )
    return dists, "\n\n".join(blocks)


def figure4(
    dataset: Optional[BenchmarkDataset] = None,
    num_heavy_users: int = 8,
    seed: int = 0,
) -> Tuple[Dict[str, UserQueryEmbedding], str]:
    """Figure 4: t-SNE of heavy same-organization users' queried objects.

    Reports the user-separability contrast: same-org users' point clouds
    should overlap (score ≈ 0) while users drawn from different
    organizations should separate (score ≫ same-org score) — the paper's
    evidence that research groups share query patterns.
    """
    ds = dataset or load_dataset("ooi")
    counts = ds.trace.per_user_counts()
    org_totals = np.bincount(
        ds.population.user_org, weights=counts, minlength=ds.population.num_orgs
    )
    heavy_org = int(np.argmax(org_totals))
    members = ds.population.users_of_org(heavy_org)
    top = members[np.argsort(-counts[members])][:num_heavy_users]
    same_org = tsne_embed_user_queries(ds.trace, ds.catalog, top, seed=seed)

    rng = np.random.default_rng(seed)
    # One heavy user from each of `num_heavy_users` distinct organizations.
    orgs = np.argsort(-org_totals)[:num_heavy_users]
    cross = np.array(
        [ds.population.users_of_org(int(o))[0] for o in orgs], dtype=np.int64
    )
    cross_org = tsne_embed_user_queries(ds.trace, ds.catalog, cross, seed=seed)

    text = (
        f"Figure 4 [{ds.name}] — t-SNE of top-{num_heavy_users} users' queried objects\n"
        f"same-organization user separability:   {same_org.user_separability():.3f}  "
        f"(≈0 → overlapping clouds, as in the paper)\n"
        f"cross-organization user separability:  {cross_org.user_separability():.3f}  "
        f"(larger → distinct clouds)\n"
        f"points: {len(same_org.points)} same-org / {len(cross_org.points)} cross-org"
    )
    return {"same_org": same_org, "cross_org": cross_org}, text


def figure5(
    datasets: Optional[List[BenchmarkDataset]] = None,
    num_pairs: int = 10_000,
    seed: int = 0,
) -> Tuple[Dict[str, PairStudyResult], str]:
    """Figure 5: same-city vs random user-pair query-pattern probability."""
    datasets = datasets or [load_dataset("ooi"), load_dataset("gage")]
    results: Dict[str, PairStudyResult] = {}
    table = TextTable(
        [
            "dataset",
            "P(same site | same city)",
            "P(same site | random)",
            "ratio",
            "paper ratio",
            "P(same dtype | same city)",
            "P(same dtype | random)",
            "ratio ",
            "paper ratio ",
        ],
        title="Figure 5: same-city vs random pair query-pattern probability",
    )
    for ds in datasets:
        r = pair_similarity_study(
            ds.trace, ds.catalog, ds.population, num_pairs=num_pairs, seed=seed
        )
        results[ds.name] = r
        table.add_row(
            [
                ds.name,
                r.p_region_same_city,
                r.p_region_random,
                f"{r.region_ratio:.1f}x",
                f"{PAPER_FIG5_RATIOS[ds.name]['region_ratio']:.1f}x",
                r.p_dtype_same_city,
                r.p_dtype_random,
                f"{r.dtype_ratio:.1f}x",
                f"{PAPER_FIG5_RATIOS[ds.name]['dtype_ratio']:.2f}x",
            ]
        )
    # Also report the Section III-B2 concentration statistics.
    lines = [table.render(), "", "Query concentration (Section III-B2):"]
    for ds in datasets:
        c = query_concentration(ds.trace, ds.catalog)
        p = PAPER_CONCENTRATION[ds.name]
        lines.append(
            f"  {ds.name}: same-region {c['same_region_fraction']:.3f} "
            f"(paper {p['same_region_fraction']:.3f}), same-data-type "
            f"{c['same_dtype_fraction']:.3f} (paper {p['same_dtype_fraction']:.3f})"
        )
    return results, "\n".join(lines)
