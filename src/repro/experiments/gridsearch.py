"""Hyperparameter grid search (the paper's Section VI-D protocol).

The paper tunes the learning rate over {0.05, 0.01, 0.005, 0.001}, the L2
coefficient over {1e-5 … 1e2}, and dropout over {0.0 … 0.8}.  This module
provides a small, honest grid-search harness: each configuration trains on
the training split and is scored on a *validation* split carved out of the
training data (never the test split), so tuned results remain unbiased.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Callable, Dict, List, Sequence, Tuple


from repro.data.interactions import InteractionDataset
from repro.data.split import per_user_split
from repro.eval.evaluator import RankingEvaluator
from repro.models.base import FitConfig, Recommender

__all__ = ["GridPoint", "GridSearchResult", "grid_search", "PAPER_LR_GRID", "PAPER_L2_GRID"]

PAPER_LR_GRID: Tuple[float, ...] = (0.05, 0.01, 0.005, 0.001)
PAPER_L2_GRID: Tuple[float, ...] = tuple(10.0**e for e in range(-5, 3))


@dataclasses.dataclass(frozen=True)
class GridPoint:
    """One evaluated configuration."""

    params: Dict[str, float]
    recall: float
    ndcg: float
    seconds: float


@dataclasses.dataclass(frozen=True)
class GridSearchResult:
    """All evaluated points plus the winner by validation recall."""

    points: List[GridPoint]
    metric: str

    @property
    def best(self) -> GridPoint:
        return max(self.points, key=lambda p: p.recall)

    def ranking(self) -> List[GridPoint]:
        """Points sorted best-first."""
        return sorted(self.points, key=lambda p: -p.recall)


def grid_search(
    model_factory: Callable[[Dict[str, float]], Recommender],
    train: InteractionDataset,
    grid: Dict[str, Sequence[float]],
    epochs: int = 20,
    batch_size: int = 512,
    validation_fraction: float = 0.125,
    k: int = 20,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive search over the cartesian product of ``grid``.

    Parameters
    ----------
    model_factory:
        Callable receiving the configuration dict (one value per grid key)
        and returning a fresh model.  Keys ``lr`` and ``l2`` are consumed by
        the trainer; every other key is the factory's business.
    train:
        The training split; a validation split of ``validation_fraction`` of
        each user's interactions is held out internally.
    """
    if not grid:
        raise ValueError("empty grid")
    inner = per_user_split(train, train_fraction=1.0 - validation_fraction, seed=seed)
    evaluator = RankingEvaluator(inner.train, inner.test, k=k)
    keys = sorted(grid)
    points: List[GridPoint] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        params = dict(zip(keys, combo))
        model = model_factory(params)
        cfg = FitConfig(
            epochs=epochs,
            batch_size=batch_size,
            lr=float(params.get("lr", 0.005)),
            l2=float(params.get("l2", 1e-5)),
            seed=seed,
        )
        start = time.perf_counter()
        model.fit(inner.train, cfg)
        result = evaluator.evaluate_model(model)
        points.append(
            GridPoint(
                params=params,
                recall=result.recall,
                ndcg=result.ndcg,
                seconds=time.perf_counter() - start,
            )
        )
    return GridSearchResult(points=points, metric=f"recall@{k}")
